#!/usr/bin/env python3
"""rr-lint: repo-specific determinism & concurrency lint for roadrunner.

The framework's reproducibility contract (DESIGN.md §4, §10) rests on
conventions no compiler enforces: every random draw flows through a named
``util::Rng`` fork, no simulation-visible path reads wall-clock time or
iterates an unordered container, and all threading goes through
``util::ThreadPool``. This tool turns those conventions into machine-checked
rules using regexes plus lightweight C++ token scanning — no libclang, no
compile step, runs in milliseconds as a ctest target and a CI gate.

Usage:
  rr_lint.py                       # lint src/ and examples/ under --root
  rr_lint.py FILE [FILE...]        # lint specific files (fixture testing)
  rr_lint.py --list-rules          # print the rule table
  rr_lint.py --explain RULE        # rationale + how to fix a violation

Suppression: append ``// rr-lint: allow(<rule>)`` to the offending line
(comma-separate several rule ids). Suppressions are deliberate, reviewable
markers — e.g. a dynamically built metric name that is known newline-free.

Exit status: 0 = clean, 1 = violations found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Rule table. Each rule: id, summary, rationale/fix text (--explain), and a
# scope note. Detection logic lives in the check_* functions below; this
# table is the single source of truth for ids and documentation, and is
# unit-tested against golden fixtures in tests/rr_lint/.
# --------------------------------------------------------------------------

RULES = {
    "raw-random": {
        "summary": "std::rand/srand/random_device/raw mt19937 outside util/rng",
        "scope": "src/ and examples/, except src/util/rng.*",
        "explain": """\
Every stochastic draw must come from a named util::Rng fork
(`rng.fork("tag")`), seeded from the experiment's master seed. Raw engines
break the paired-seed comparison contract: std::rand and std::mt19937 are
stdlib-specific (libstdc++ vs libc++ streams differ), and
std::random_device is nondeterministic by design, so a single call anywhere
on a simulation-visible path makes same-seed runs diverge. src/workload/ is
the sharpest case: the stream generator must synthesize bit-identical
telemetry whatever the worker count, so every draw comes from its forked
"workload" stream.

Fix: take a util::Rng (or fork one from the component's parent stream).
For genuinely non-simulation randomness (none known today), suppress with
`// rr-lint: allow(raw-random)` and justify in a comment.""",
    },
    "wall-clock": {
        "summary": "wall-clock reads outside telemetry/ and util/",
        "scope": "src/ and examples/, except src/telemetry/ and src/util/",
        "explain": """\
Simulated time comes from the event queue (`Simulator::now()`); host time
is an observability concern that belongs to telemetry/ (spans) and util/
(Stopwatch). A system_clock/steady_clock/time() read anywhere else is
either dead code or a determinism leak waiting to be aggregated into a
metric — wall-clock values must never reach the metrics Registry or a
checkpoint (DESIGN.md §8: aggregates are byte-compared across reruns).

Fix: use util::Stopwatch for wall timing that stays in reports, RR_TSPAN
for profiling, or Simulator::now() for simulated time. If a new layer
legitimately needs a clock read, suppress with
`// rr-lint: allow(wall-clock)` and keep the value out of metrics.""",
    },
    "unordered-iter": {
        "summary": "iteration over unordered containers in order-sensitive dirs",
        "scope": "src/checkpoint/, src/metrics/, src/core/, src/fault/, "
                 "src/adversary/, src/workload/, src/traffic/",
        "explain": """\
checkpoint/, metrics/, core/, fault/, adversary/, workload/ and traffic/
feed serialization and metric export, where emission order is part of the
byte-identical contract (adversary/ additionally snapshots its RNG and
attack state into checkpoints; workload/ synthesizes the telemetry
stream and traffic/ the queue-shaped fleet + signal/platoon timeline,
both of which must be bit-identical across --workers counts).
Iterating a std::unordered_map/set there makes output depend on
hash-bucket layout — stable on one build, silently different on another
stdlib or after a rehash, which breaks checkpoint round-trips and
same-seed CSV comparison.

Fix: use std::map/std::set, keep a parallel sorted index, or copy keys
out and sort before emitting. If iteration order provably cannot reach
any output (e.g. accumulating into a commutative sum), suppress with
`// rr-lint: allow(unordered-iter)` and say why in a comment.""",
    },
    "raw-thread": {
        "summary": "raw threading outside util/thread_pool, or raw socket "
                   "syscalls outside util/socket",
        "scope": "src/ and examples/, except src/util/thread_pool.* "
                 "(threads) and src/util/socket.* (sockets)",
        "explain": """\
All parallelism goes through util::ThreadPool: it reduces in deterministic
index order, owns the only std::thread objects, and is where the
thread-safety annotations and the TSan lane concentrate. Ad-hoc
std::thread/std::async use bypasses the pool's shutdown ordering, and a
detached thread can outlive the telemetry sink and the result store —
a use-after-free that only fires at exit.

The same wall applies to the network: every POSIX socket syscall
(socket/bind/listen/accept/connect/poll/select/::send/::recv/...) lives in
util/socket, which owns SIGPIPE suppression, partial-write loops, EINTR
retries, and timeout composition. The distributed campaign layer
(src/dist/) speaks util::Socket/Listener/poll_fds only, so auditing its
concurrency and I/O stays a grep.

Fix: submit work with ThreadPool::parallel_for / submit (or the global()
pool); do network I/O through util::Socket, util::Listener, and
util::poll_fds. If a new facade is truly required, build it in util/ and
suppress there with `// rr-lint: allow(raw-thread)`.""",
    },
    "metric-name": {
        "summary": "metric registration with a non-literal or newline-bearing name",
        "scope": "src/ and examples/ (Registry and telemetry scalar calls)",
        "explain": """\
Metric names are schema: the campaign store, the aggregate CSV, and the
--list-metrics surface all key on them. A name must be a string literal
(newline-free — the Registry throws on '\\n' at runtime, this rule moves
that to lint time) or a named constant/config member, so the set of
metrics is statically enumerable. Inline concatenation and conditional
expressions produce open-ended name sets that silently fork the store
schema between runs.

Fix: hoist the name into a constant or a config field. For deliberately
dynamic families (e.g. per-channel counters like transfers_<ch>_failed),
suppress with `// rr-lint: allow(metric-name)` — the suppression is the
documented registry of dynamic metric families.""",
    },
}

# Directories (as posix path fragments) with special roles.
ORDER_SENSITIVE_DIRS = ("/checkpoint/", "/metrics/", "/core/", "/fault/",
                        "/adversary/", "/workload/", "/traffic/")
WALL_CLOCK_EXEMPT = ("/telemetry/", "/util/")
RNG_HOME = "/util/rng."
THREAD_HOME = "/util/thread_pool."
SOCKET_HOME = "/util/socket."

SUPPRESS_RE = re.compile(r"//\s*rr-lint:\s*allow\(([^)]*)\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lightweight C++ source preparation: strip comments (preserving newlines so
# line numbers survive) and optionally blank out string/char literal
# contents so regexes never match inside text. Handles raw strings.
# --------------------------------------------------------------------------


def strip_comments(text: str) -> str:
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            j = _skip_literal(text, i)
            out.append(text[i:j])
            i = j
        elif c == "R" and text[i : i + 2] == 'R"':
            j = _skip_raw_string(text, i)
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def blank_strings(text: str) -> str:
    """On comment-stripped text, replace literal contents with spaces."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "R" and text[i : i + 2] == 'R"':
            j = _skip_raw_string(text, i)
            out.append('R"' + "".join(ch if ch == "\n" else " " for ch in text[i + 2 : j - 1]) + '"')
            i = j
        elif c in "\"'":
            j = _skip_literal(text, i)
            out.append(c + " " * max(0, j - i - 2) + (text[j - 1] if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _skip_literal(text: str, i: int) -> int:
    quote = text[i]
    j = i + 1
    n = len(text)
    while j < n:
        if text[j] == "\\":
            j += 2
            continue
        if text[j] == quote or text[j] == "\n":
            return j + 1
        j += 1
    return n


def _skip_raw_string(text: str, i: int) -> int:
    m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
    if not m:
        return i + 1
    close = ")" + m.group(1) + '"'
    j = text.find(close, i + m.end())
    return len(text) if j == -1 else j + len(close)


def suppressed_rules(raw_line: str) -> set:
    rules = set()
    for m in SUPPRESS_RE.finditer(raw_line):
        rules.update(r.strip() for r in m.group(1).split(",") if r.strip())
    return rules


# --------------------------------------------------------------------------
# Per-rule checks.
# --------------------------------------------------------------------------

RAW_RANDOM_RE = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(rand|srand|random_device|mt19937(?:_64)?|"
    r"minstd_rand0?|ranlux\d+(?:_base)?|default_random_engine|knuth_b)\b(?<!\w_rand)"
)

WALL_CLOCK_RE = re.compile(
    r"(?:\b(?:system_clock|steady_clock|high_resolution_clock)\b)|"
    r"(?<![\w.:>])(?:time|clock|gettimeofday|clock_gettime|localtime|gmtime)\s*\("
)

RAW_THREAD_RE = re.compile(
    r"(?:\bstd\s*::\s*(?:thread|jthread|async)\b)|(?:\.\s*detach\s*\(\s*\))"
)

# POSIX socket surface. Bare `send(`/`recv(` are NOT matched — the
# simulator's Context::send/Simulator::send are legitimate members — only
# the global-scope-qualified `::send(`/`::recv(` forms, plus calls of the
# unambiguous syscall names (member calls like `listener.accept(` are
# excluded by the lookbehind).
RAW_SOCKET_RE = re.compile(
    r"(?:(?<![\w.:>])(?:socket|bind|listen|accept4?|connect|sendto|recvfrom|"
    r"sendmsg|recvmsg|getaddrinfo|setsockopt|getsockname|poll|ppoll|select|"
    r"epoll_\w+)\s*\()|"
    r"(?:(?<![\w.])::\s*(?:send|recv)\s*\()"
)


def posix(path: Path) -> str:
    return "/" + path.as_posix().lstrip("/")


def check_line_rules(path: Path, raw_lines, code_lines, findings):
    p = posix(path)
    scan_random = RNG_HOME not in p
    scan_clock = not any(d in p for d in WALL_CLOCK_EXEMPT)
    scan_thread = THREAD_HOME not in p
    scan_socket = SOCKET_HOME not in p

    for idx, code in enumerate(code_lines):
        lineno = idx + 1
        allowed = suppressed_rules(raw_lines[idx])
        if scan_random and "raw-random" not in allowed:
            m = RAW_RANDOM_RE.search(code)
            if m:
                findings.append(
                    Finding(path, lineno, "raw-random",
                            f"raw random source `{m.group(0).strip()}` — use a "
                            "named util::Rng fork (see --explain raw-random)"))
        if scan_clock and "wall-clock" not in allowed:
            m = WALL_CLOCK_RE.search(code)
            if m:
                findings.append(
                    Finding(path, lineno, "wall-clock",
                            f"wall-clock read `{m.group(0).strip()}` outside "
                            "telemetry/|util/ — use util::Stopwatch or RR_TSPAN"))
        if scan_thread and "raw-thread" not in allowed:
            m = RAW_THREAD_RE.search(code)
            if m:
                findings.append(
                    Finding(path, lineno, "raw-thread",
                            f"raw threading `{m.group(0).strip()}` outside "
                            "util/thread_pool — use util::ThreadPool"))
            elif scan_socket:
                m = RAW_SOCKET_RE.search(code)
                if m:
                    findings.append(
                        Finding(path, lineno, "raw-thread",
                                f"raw socket syscall `{m.group(0).strip()}` "
                                "outside util/socket — use util::Socket/"
                                "Listener/poll_fds"))


# ---- unordered-iter -------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")
USING_ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=")


def _match_angle(text: str, start: int) -> int:
    """Index just past the '>' matching the '<' at text[start]."""
    depth = 0
    i = start
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return i  # malformed / not a template argument list
        i += 1
    return n


def unordered_names(code: str) -> set:
    """Identifiers declared with an unordered container type (incl. aliases)."""
    names = set()
    aliases = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        open_angle = code.find("<", m.start())
        end = _match_angle(code, open_angle)
        # `using Foo = std::unordered_map<...>;` registers an alias.
        prefix = code[max(0, m.start() - 80) : m.start()]
        am = None
        for am in USING_ALIAS_RE.finditer(prefix):
            pass
        if am is not None and prefix[am.end():].strip() in ("", "std::", "std ::"):
            aliases.add(am.group(1))
            continue
        decl = re.match(r"\s*(?:&|\*|const\b)?\s*(\w+)\s*(?:[;={(,)]|$)", code[end:])
        if decl:
            names.add(decl.group(1))
    if aliases:
        alias_re = re.compile(r"\b(" + "|".join(map(re.escape, aliases)) + r")\b\s*(?:&|\*|const\b)?\s*(\w+)\s*[;={(]")
        for m in alias_re.finditer(code):
            names.add(m.group(2))
    return names


def check_unordered_iter(path: Path, raw_lines, code_lines, findings, extra_names):
    p = posix(path)
    if not any(d in p for d in ORDER_SENSITIVE_DIRS):
        return
    code = "\n".join(code_lines)
    names = unordered_names(code) | extra_names
    range_for = re.compile(r"\bfor\s*\([^;)]*?:\s*(?:\*|&)?\s*([A-Za-z_][\w.>\-]*)\s*\)")
    begin_call = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\(")
    inline_unordered = re.compile(r"\bfor\s*\([^;)]*?:\s*[^)]*\bunordered_(?:map|set)\b")
    for idx, line in enumerate(code_lines):
        lineno = idx + 1
        if "unordered-iter" in suppressed_rules(raw_lines[idx]):
            continue
        hit = None
        m = range_for.search(line)
        if m and m.group(1).rstrip("._") and m.group(1).split(".")[0].split("->")[0] in names:
            hit = m.group(1)
        if hit is None:
            m = begin_call.search(line)
            if m and m.group(1) in names:
                hit = m.group(1)
        if hit is None and inline_unordered.search(line):
            hit = "unordered container expression"
        if hit is not None:
            findings.append(
                Finding(path, lineno, "unordered-iter",
                        f"iteration over unordered container `{hit}` in an "
                        "order-sensitive directory — emit in sorted order"))


# ---- metric-name ----------------------------------------------------------

METRIC_CALL_RE = re.compile(
    r"(?:\.|->)\s*(add_point|increment|set_counter|counter_add|gauge_set)\s*\(")

IDENT_CHAIN_RE = re.compile(
    r"^[A-Za-z_][\w]*(?:\s*(?:::|\.|->)\s*[A-Za-z_]\w*|\s*\(\s*\)|\s*\[\s*\w+\s*\])*$")


def _extract_first_arg(code: str, open_paren: int):
    """Return (arg_text, ok) for the first argument of the call at '('."""
    depth = 0
    i = open_paren
    n = len(code)
    start = open_paren + 1
    while i < n:
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return code[start:i], True
        elif c == "," and depth == 1:
            return code[start:i], True
        elif c in "\"'":
            i = _skip_literal(code, i) - 1
        i += 1
    return "", False


STRING_LITERAL_ONLY_RE = re.compile(r'^\s*(?:"(?:[^"\\]|\\.)*"\s*)+$')


def check_metric_names(path: Path, raw_lines, code, findings):
    for m in METRIC_CALL_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        if "metric-name" in suppressed_rules(raw_lines[lineno - 1]):
            continue
        arg, ok = _extract_first_arg(code, code.find("(", m.end() - 1))
        if not ok:
            continue
        arg = arg.strip()
        if STRING_LITERAL_ONLY_RE.match(arg):
            if "\\n" in arg or "\\r" in arg:
                findings.append(
                    Finding(path, lineno, "metric-name",
                            f"{m.group(1)}: metric name literal contains a "
                            "newline escape — names must be single-line"))
            continue
        if IDENT_CHAIN_RE.match(arg):
            continue  # named constant / config member: statically enumerable
        findings.append(
            Finding(path, lineno, "metric-name",
                    f"{m.group(1)}: metric name is a computed expression "
                    f"(`{' '.join(arg.split())[:60]}`) — hoist to a constant "
                    "or suppress to register a dynamic metric family"))


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".ipp"}


def collect_files(root: Path):
    files = []
    for sub in ("src", "examples"):
        base = root / sub
        if base.is_dir():
            files.extend(p for p in sorted(base.rglob("*")) if p.suffix in CXX_SUFFIXES)
    return files


def lint_files(files):
    findings = []
    # Pre-pass: unordered-typed member names declared in headers of the
    # order-sensitive dirs, visible to their .cpp files.
    shared_names = {}
    for path in files:
        p = posix(path)
        for d in ORDER_SENSITIVE_DIRS:
            if d in p and path.suffix in (".hpp", ".h", ".hh"):
                code = strip_comments(path.read_text(encoding="utf-8", errors="replace"))
                shared_names.setdefault(d, set()).update(unordered_names(code))
    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = text.split("\n")
        code = strip_comments(text)
        nostr = blank_strings(code)
        code_lines = nostr.split("\n")
        check_line_rules(path, raw_lines, code_lines, findings)
        extra = set()
        for d in ORDER_SENSITIVE_DIRS:
            if d in posix(path):
                extra |= shared_names.get(d, set())
        check_unordered_iter(path, raw_lines, code_lines, findings, extra)
        check_metric_names(path, raw_lines, code, findings)
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="files to lint (default: src/ and examples/ under --root)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root for the default file set")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--explain", metavar="RULE")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(r) for r in RULES)
        for rule, info in RULES.items():
            print(f"{rule:<{width}}  {info['summary']}")
            print(f"{'':<{width}}  scope: {info['scope']}")
        return 0
    if args.explain:
        info = RULES.get(args.explain)
        if info is None:
            print(f"unknown rule: {args.explain} (try --list-rules)", file=sys.stderr)
            return 2
        print(f"[{args.explain}] {info['summary']}")
        print(f"scope: {info['scope']}\n")
        print(info["explain"])
        return 0

    files = args.files or collect_files(args.root)
    missing = [f for f in files if not f.is_file()]
    if missing:
        for f in missing:
            print(f"rr-lint: no such file: {f}", file=sys.stderr)
        return 2
    findings = lint_files(files)
    for finding in findings:
        print(finding)
    if not args.quiet:
        print(f"rr-lint: {len(files)} files, {len(findings)} violation(s)",
              file=sys.stderr)
    if findings:
        print("rr-lint: run with --explain <rule> for rationale and fixes",
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
