# Empty compiler generated dependencies file for predictive_maintenance.
# This may be replaced when dependencies are built.
