file(REMOVE_RECURSE
  "../examples/predictive_maintenance"
  "../examples/predictive_maintenance.pdb"
  "CMakeFiles/predictive_maintenance.dir/predictive_maintenance.cpp.o"
  "CMakeFiles/predictive_maintenance.dir/predictive_maintenance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
