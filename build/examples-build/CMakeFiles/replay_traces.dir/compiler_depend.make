# Empty compiler generated dependencies file for replay_traces.
# This may be replaced when dependencies are built.
