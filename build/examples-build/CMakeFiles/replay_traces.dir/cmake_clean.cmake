file(REMOVE_RECURSE
  "../examples/replay_traces"
  "../examples/replay_traces.pdb"
  "CMakeFiles/replay_traces.dir/replay_traces.cpp.o"
  "CMakeFiles/replay_traces.dir/replay_traces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
