file(REMOVE_RECURSE
  "../examples/custom_strategy"
  "../examples/custom_strategy.pdb"
  "CMakeFiles/custom_strategy.dir/custom_strategy.cpp.o"
  "CMakeFiles/custom_strategy.dir/custom_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
