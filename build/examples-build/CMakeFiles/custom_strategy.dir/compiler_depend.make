# Empty compiler generated dependencies file for custom_strategy.
# This may be replaced when dependencies are built.
