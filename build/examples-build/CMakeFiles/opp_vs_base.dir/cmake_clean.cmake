file(REMOVE_RECURSE
  "../examples/opp_vs_base"
  "../examples/opp_vs_base.pdb"
  "CMakeFiles/opp_vs_base.dir/opp_vs_base.cpp.o"
  "CMakeFiles/opp_vs_base.dir/opp_vs_base.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opp_vs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
