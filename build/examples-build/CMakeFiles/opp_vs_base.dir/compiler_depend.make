# Empty compiler generated dependencies file for opp_vs_base.
# This may be replaced when dependencies are built.
