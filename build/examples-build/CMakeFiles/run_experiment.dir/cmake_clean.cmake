file(REMOVE_RECURSE
  "../examples/run_experiment"
  "../examples/run_experiment.pdb"
  "CMakeFiles/run_experiment.dir/run_experiment.cpp.o"
  "CMakeFiles/run_experiment.dir/run_experiment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
