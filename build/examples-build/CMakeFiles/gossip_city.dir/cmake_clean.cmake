file(REMOVE_RECURSE
  "../examples/gossip_city"
  "../examples/gossip_city.pdb"
  "CMakeFiles/gossip_city.dir/gossip_city.cpp.o"
  "CMakeFiles/gossip_city.dir/gossip_city.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
