# Empty compiler generated dependencies file for gossip_city.
# This may be replaced when dependencies are built.
