file(REMOVE_RECURSE
  "../bench/strategy_comparison"
  "../bench/strategy_comparison.pdb"
  "CMakeFiles/strategy_comparison.dir/strategy_comparison.cpp.o"
  "CMakeFiles/strategy_comparison.dir/strategy_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
