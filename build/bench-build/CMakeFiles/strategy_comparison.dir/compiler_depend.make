# Empty compiler generated dependencies file for strategy_comparison.
# This may be replaced when dependencies are built.
