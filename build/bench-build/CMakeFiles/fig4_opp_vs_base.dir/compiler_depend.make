# Empty compiler generated dependencies file for fig4_opp_vs_base.
# This may be replaced when dependencies are built.
