file(REMOVE_RECURSE
  "../bench/fig4_opp_vs_base"
  "../bench/fig4_opp_vs_base.pdb"
  "CMakeFiles/fig4_opp_vs_base.dir/fig4_opp_vs_base.cpp.o"
  "CMakeFiles/fig4_opp_vs_base.dir/fig4_opp_vs_base.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_opp_vs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
