file(REMOVE_RECURSE
  "../bench/ablate_coverage"
  "../bench/ablate_coverage.pdb"
  "CMakeFiles/ablate_coverage.dir/ablate_coverage.cpp.o"
  "CMakeFiles/ablate_coverage.dir/ablate_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
