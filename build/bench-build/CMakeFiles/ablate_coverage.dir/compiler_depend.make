# Empty compiler generated dependencies file for ablate_coverage.
# This may be replaced when dependencies are built.
