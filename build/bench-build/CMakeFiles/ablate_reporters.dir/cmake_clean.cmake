file(REMOVE_RECURSE
  "../bench/ablate_reporters"
  "../bench/ablate_reporters.pdb"
  "CMakeFiles/ablate_reporters.dir/ablate_reporters.cpp.o"
  "CMakeFiles/ablate_reporters.dir/ablate_reporters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reporters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
