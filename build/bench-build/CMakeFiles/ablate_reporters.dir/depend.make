# Empty dependencies file for ablate_reporters.
# This may be replaced when dependencies are built.
