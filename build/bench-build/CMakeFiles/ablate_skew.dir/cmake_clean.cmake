file(REMOVE_RECURSE
  "../bench/ablate_skew"
  "../bench/ablate_skew.pdb"
  "CMakeFiles/ablate_skew.dir/ablate_skew.cpp.o"
  "CMakeFiles/ablate_skew.dir/ablate_skew.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
