# Empty dependencies file for ablate_skew.
# This may be replaced when dependencies are built.
