# Empty compiler generated dependencies file for micro_core.
# This may be replaced when dependencies are built.
