# Empty compiler generated dependencies file for ablate_fresh_data.
# This may be replaced when dependencies are built.
