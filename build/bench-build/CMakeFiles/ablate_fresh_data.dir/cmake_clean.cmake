file(REMOVE_RECURSE
  "../bench/ablate_fresh_data"
  "../bench/ablate_fresh_data.pdb"
  "CMakeFiles/ablate_fresh_data.dir/ablate_fresh_data.cpp.o"
  "CMakeFiles/ablate_fresh_data.dir/ablate_fresh_data.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fresh_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
