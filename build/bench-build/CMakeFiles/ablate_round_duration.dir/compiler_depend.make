# Empty compiler generated dependencies file for ablate_round_duration.
# This may be replaced when dependencies are built.
