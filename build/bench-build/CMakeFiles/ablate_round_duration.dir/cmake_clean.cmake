file(REMOVE_RECURSE
  "../bench/ablate_round_duration"
  "../bench/ablate_round_duration.pdb"
  "CMakeFiles/ablate_round_duration.dir/ablate_round_duration.cpp.o"
  "CMakeFiles/ablate_round_duration.dir/ablate_round_duration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_round_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
