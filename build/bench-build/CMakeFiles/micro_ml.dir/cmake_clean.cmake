file(REMOVE_RECURSE
  "../bench/micro_ml"
  "../bench/micro_ml.pdb"
  "CMakeFiles/micro_ml.dir/micro_ml.cpp.o"
  "CMakeFiles/micro_ml.dir/micro_ml.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
