file(REMOVE_RECURSE
  "../bench/ablate_density_range"
  "../bench/ablate_density_range.pdb"
  "CMakeFiles/ablate_density_range.dir/ablate_density_range.cpp.o"
  "CMakeFiles/ablate_density_range.dir/ablate_density_range.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_density_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
