# Empty compiler generated dependencies file for ablate_density_range.
# This may be replaced when dependencies are built.
