# Empty compiler generated dependencies file for sim_speed.
# This may be replaced when dependencies are built.
