file(REMOVE_RECURSE
  "../bench/sim_speed"
  "../bench/sim_speed.pdb"
  "CMakeFiles/sim_speed.dir/sim_speed.cpp.o"
  "CMakeFiles/sim_speed.dir/sim_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
