# Empty dependencies file for ablate_proximal.
# This may be replaced when dependencies are built.
