file(REMOVE_RECURSE
  "../bench/ablate_proximal"
  "../bench/ablate_proximal.pdb"
  "CMakeFiles/ablate_proximal.dir/ablate_proximal.cpp.o"
  "CMakeFiles/ablate_proximal.dir/ablate_proximal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_proximal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
