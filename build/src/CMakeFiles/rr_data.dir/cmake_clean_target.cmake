file(REMOVE_RECURSE
  "librr_data.a"
)
