# Empty compiler generated dependencies file for rr_data.
# This may be replaced when dependencies are built.
