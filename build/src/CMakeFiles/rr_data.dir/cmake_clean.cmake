file(REMOVE_RECURSE
  "CMakeFiles/rr_data.dir/data/dataset_io.cpp.o"
  "CMakeFiles/rr_data.dir/data/dataset_io.cpp.o.d"
  "CMakeFiles/rr_data.dir/data/gaussian_blobs.cpp.o"
  "CMakeFiles/rr_data.dir/data/gaussian_blobs.cpp.o.d"
  "CMakeFiles/rr_data.dir/data/partition.cpp.o"
  "CMakeFiles/rr_data.dir/data/partition.cpp.o.d"
  "CMakeFiles/rr_data.dir/data/synthetic_images.cpp.o"
  "CMakeFiles/rr_data.dir/data/synthetic_images.cpp.o.d"
  "librr_data.a"
  "librr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
