
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset_io.cpp" "src/CMakeFiles/rr_data.dir/data/dataset_io.cpp.o" "gcc" "src/CMakeFiles/rr_data.dir/data/dataset_io.cpp.o.d"
  "/root/repo/src/data/gaussian_blobs.cpp" "src/CMakeFiles/rr_data.dir/data/gaussian_blobs.cpp.o" "gcc" "src/CMakeFiles/rr_data.dir/data/gaussian_blobs.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/CMakeFiles/rr_data.dir/data/partition.cpp.o" "gcc" "src/CMakeFiles/rr_data.dir/data/partition.cpp.o.d"
  "/root/repo/src/data/synthetic_images.cpp" "src/CMakeFiles/rr_data.dir/data/synthetic_images.cpp.o" "gcc" "src/CMakeFiles/rr_data.dir/data/synthetic_images.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rr_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
