file(REMOVE_RECURSE
  "CMakeFiles/rr_scenario.dir/scenario/experiment.cpp.o"
  "CMakeFiles/rr_scenario.dir/scenario/experiment.cpp.o.d"
  "CMakeFiles/rr_scenario.dir/scenario/scenario.cpp.o"
  "CMakeFiles/rr_scenario.dir/scenario/scenario.cpp.o.d"
  "librr_scenario.a"
  "librr_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
