# Empty dependencies file for rr_scenario.
# This may be replaced when dependencies are built.
