file(REMOVE_RECURSE
  "librr_scenario.a"
)
