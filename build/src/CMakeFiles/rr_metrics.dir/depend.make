# Empty dependencies file for rr_metrics.
# This may be replaced when dependencies are built.
