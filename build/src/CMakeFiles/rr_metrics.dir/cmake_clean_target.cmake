file(REMOVE_RECURSE
  "librr_metrics.a"
)
