file(REMOVE_RECURSE
  "CMakeFiles/rr_metrics.dir/metrics/analysis.cpp.o"
  "CMakeFiles/rr_metrics.dir/metrics/analysis.cpp.o.d"
  "CMakeFiles/rr_metrics.dir/metrics/registry.cpp.o"
  "CMakeFiles/rr_metrics.dir/metrics/registry.cpp.o.d"
  "librr_metrics.a"
  "librr_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
