file(REMOVE_RECURSE
  "CMakeFiles/rr_comm.dir/comm/channel.cpp.o"
  "CMakeFiles/rr_comm.dir/comm/channel.cpp.o.d"
  "CMakeFiles/rr_comm.dir/comm/coverage.cpp.o"
  "CMakeFiles/rr_comm.dir/comm/coverage.cpp.o.d"
  "CMakeFiles/rr_comm.dir/comm/network.cpp.o"
  "CMakeFiles/rr_comm.dir/comm/network.cpp.o.d"
  "librr_comm.a"
  "librr_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
