file(REMOVE_RECURSE
  "librr_comm.a"
)
