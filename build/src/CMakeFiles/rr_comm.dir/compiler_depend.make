# Empty compiler generated dependencies file for rr_comm.
# This may be replaced when dependencies are built.
