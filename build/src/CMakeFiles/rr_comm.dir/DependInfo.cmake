
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/channel.cpp" "src/CMakeFiles/rr_comm.dir/comm/channel.cpp.o" "gcc" "src/CMakeFiles/rr_comm.dir/comm/channel.cpp.o.d"
  "/root/repo/src/comm/coverage.cpp" "src/CMakeFiles/rr_comm.dir/comm/coverage.cpp.o" "gcc" "src/CMakeFiles/rr_comm.dir/comm/coverage.cpp.o.d"
  "/root/repo/src/comm/network.cpp" "src/CMakeFiles/rr_comm.dir/comm/network.cpp.o" "gcc" "src/CMakeFiles/rr_comm.dir/comm/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rr_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
