file(REMOVE_RECURSE
  "CMakeFiles/rr_util.dir/util/ascii_plot.cpp.o"
  "CMakeFiles/rr_util.dir/util/ascii_plot.cpp.o.d"
  "CMakeFiles/rr_util.dir/util/cli.cpp.o"
  "CMakeFiles/rr_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/rr_util.dir/util/csv.cpp.o"
  "CMakeFiles/rr_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/rr_util.dir/util/ini.cpp.o"
  "CMakeFiles/rr_util.dir/util/ini.cpp.o.d"
  "CMakeFiles/rr_util.dir/util/log.cpp.o"
  "CMakeFiles/rr_util.dir/util/log.cpp.o.d"
  "CMakeFiles/rr_util.dir/util/rng.cpp.o"
  "CMakeFiles/rr_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/rr_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/rr_util.dir/util/thread_pool.cpp.o.d"
  "librr_util.a"
  "librr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
