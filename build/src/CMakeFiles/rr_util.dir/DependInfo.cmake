
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/ascii_plot.cpp" "src/CMakeFiles/rr_util.dir/util/ascii_plot.cpp.o" "gcc" "src/CMakeFiles/rr_util.dir/util/ascii_plot.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/rr_util.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/rr_util.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/rr_util.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/rr_util.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/ini.cpp" "src/CMakeFiles/rr_util.dir/util/ini.cpp.o" "gcc" "src/CMakeFiles/rr_util.dir/util/ini.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/rr_util.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/rr_util.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/rr_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/rr_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/rr_util.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/rr_util.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
