file(REMOVE_RECURSE
  "librr_util.a"
)
