# Empty dependencies file for rr_util.
# This may be replaced when dependencies are built.
