file(REMOVE_RECURSE
  "librr_strategy.a"
)
