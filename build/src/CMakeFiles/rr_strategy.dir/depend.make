# Empty dependencies file for rr_strategy.
# This may be replaced when dependencies are built.
