
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strategy/centralized.cpp" "src/CMakeFiles/rr_strategy.dir/strategy/centralized.cpp.o" "gcc" "src/CMakeFiles/rr_strategy.dir/strategy/centralized.cpp.o.d"
  "/root/repo/src/strategy/federated.cpp" "src/CMakeFiles/rr_strategy.dir/strategy/federated.cpp.o" "gcc" "src/CMakeFiles/rr_strategy.dir/strategy/federated.cpp.o.d"
  "/root/repo/src/strategy/federated_clustering.cpp" "src/CMakeFiles/rr_strategy.dir/strategy/federated_clustering.cpp.o" "gcc" "src/CMakeFiles/rr_strategy.dir/strategy/federated_clustering.cpp.o.d"
  "/root/repo/src/strategy/gossip.cpp" "src/CMakeFiles/rr_strategy.dir/strategy/gossip.cpp.o" "gcc" "src/CMakeFiles/rr_strategy.dir/strategy/gossip.cpp.o.d"
  "/root/repo/src/strategy/opportunistic.cpp" "src/CMakeFiles/rr_strategy.dir/strategy/opportunistic.cpp.o" "gcc" "src/CMakeFiles/rr_strategy.dir/strategy/opportunistic.cpp.o.d"
  "/root/repo/src/strategy/round_base.cpp" "src/CMakeFiles/rr_strategy.dir/strategy/round_base.cpp.o" "gcc" "src/CMakeFiles/rr_strategy.dir/strategy/round_base.cpp.o.d"
  "/root/repo/src/strategy/rsu_assisted.cpp" "src/CMakeFiles/rr_strategy.dir/strategy/rsu_assisted.cpp.o" "gcc" "src/CMakeFiles/rr_strategy.dir/strategy/rsu_assisted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_hu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
