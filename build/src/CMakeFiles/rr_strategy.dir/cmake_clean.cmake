file(REMOVE_RECURSE
  "CMakeFiles/rr_strategy.dir/strategy/centralized.cpp.o"
  "CMakeFiles/rr_strategy.dir/strategy/centralized.cpp.o.d"
  "CMakeFiles/rr_strategy.dir/strategy/federated.cpp.o"
  "CMakeFiles/rr_strategy.dir/strategy/federated.cpp.o.d"
  "CMakeFiles/rr_strategy.dir/strategy/federated_clustering.cpp.o"
  "CMakeFiles/rr_strategy.dir/strategy/federated_clustering.cpp.o.d"
  "CMakeFiles/rr_strategy.dir/strategy/gossip.cpp.o"
  "CMakeFiles/rr_strategy.dir/strategy/gossip.cpp.o.d"
  "CMakeFiles/rr_strategy.dir/strategy/opportunistic.cpp.o"
  "CMakeFiles/rr_strategy.dir/strategy/opportunistic.cpp.o.d"
  "CMakeFiles/rr_strategy.dir/strategy/round_base.cpp.o"
  "CMakeFiles/rr_strategy.dir/strategy/round_base.cpp.o.d"
  "CMakeFiles/rr_strategy.dir/strategy/rsu_assisted.cpp.o"
  "CMakeFiles/rr_strategy.dir/strategy/rsu_assisted.cpp.o.d"
  "librr_strategy.a"
  "librr_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
