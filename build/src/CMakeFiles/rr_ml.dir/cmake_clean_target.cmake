file(REMOVE_RECURSE
  "librr_ml.a"
)
