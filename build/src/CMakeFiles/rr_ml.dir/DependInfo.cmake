
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adam.cpp" "src/CMakeFiles/rr_ml.dir/ml/adam.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/adam.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/rr_ml.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/fedavg.cpp" "src/CMakeFiles/rr_ml.dir/ml/fedavg.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/fedavg.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/CMakeFiles/rr_ml.dir/ml/kmeans.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/kmeans.cpp.o.d"
  "/root/repo/src/ml/layers.cpp" "src/CMakeFiles/rr_ml.dir/ml/layers.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/layers.cpp.o.d"
  "/root/repo/src/ml/loss.cpp" "src/CMakeFiles/rr_ml.dir/ml/loss.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/loss.cpp.o.d"
  "/root/repo/src/ml/models.cpp" "src/CMakeFiles/rr_ml.dir/ml/models.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/models.cpp.o.d"
  "/root/repo/src/ml/net.cpp" "src/CMakeFiles/rr_ml.dir/ml/net.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/net.cpp.o.d"
  "/root/repo/src/ml/optimizer.cpp" "src/CMakeFiles/rr_ml.dir/ml/optimizer.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/optimizer.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/CMakeFiles/rr_ml.dir/ml/serialize.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/serialize.cpp.o.d"
  "/root/repo/src/ml/tensor.cpp" "src/CMakeFiles/rr_ml.dir/ml/tensor.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/tensor.cpp.o.d"
  "/root/repo/src/ml/trainer.cpp" "src/CMakeFiles/rr_ml.dir/ml/trainer.cpp.o" "gcc" "src/CMakeFiles/rr_ml.dir/ml/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
