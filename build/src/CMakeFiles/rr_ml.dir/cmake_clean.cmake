file(REMOVE_RECURSE
  "CMakeFiles/rr_ml.dir/ml/adam.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/adam.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/dataset.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/dataset.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/fedavg.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/fedavg.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/kmeans.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/kmeans.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/layers.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/layers.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/loss.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/loss.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/models.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/models.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/net.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/net.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/optimizer.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/optimizer.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/serialize.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/serialize.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/tensor.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/tensor.cpp.o.d"
  "CMakeFiles/rr_ml.dir/ml/trainer.cpp.o"
  "CMakeFiles/rr_ml.dir/ml/trainer.cpp.o.d"
  "librr_ml.a"
  "librr_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
