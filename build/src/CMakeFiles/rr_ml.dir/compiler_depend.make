# Empty compiler generated dependencies file for rr_ml.
# This may be replaced when dependencies are built.
