
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cpp" "src/CMakeFiles/rr_core.dir/core/agent.cpp.o" "gcc" "src/CMakeFiles/rr_core.dir/core/agent.cpp.o.d"
  "/root/repo/src/core/event_queue.cpp" "src/CMakeFiles/rr_core.dir/core/event_queue.cpp.o" "gcc" "src/CMakeFiles/rr_core.dir/core/event_queue.cpp.o.d"
  "/root/repo/src/core/event_trace.cpp" "src/CMakeFiles/rr_core.dir/core/event_trace.cpp.o" "gcc" "src/CMakeFiles/rr_core.dir/core/event_trace.cpp.o.d"
  "/root/repo/src/core/ml_service.cpp" "src/CMakeFiles/rr_core.dir/core/ml_service.cpp.o" "gcc" "src/CMakeFiles/rr_core.dir/core/ml_service.cpp.o.d"
  "/root/repo/src/core/sim_time.cpp" "src/CMakeFiles/rr_core.dir/core/sim_time.cpp.o" "gcc" "src/CMakeFiles/rr_core.dir/core/sim_time.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/CMakeFiles/rr_core.dir/core/simulator.cpp.o" "gcc" "src/CMakeFiles/rr_core.dir/core/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rr_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_hu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
