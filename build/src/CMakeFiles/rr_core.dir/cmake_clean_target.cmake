file(REMOVE_RECURSE
  "librr_core.a"
)
