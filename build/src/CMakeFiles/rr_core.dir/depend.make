# Empty dependencies file for rr_core.
# This may be replaced when dependencies are built.
