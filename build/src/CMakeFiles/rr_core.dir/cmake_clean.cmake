file(REMOVE_RECURSE
  "CMakeFiles/rr_core.dir/core/agent.cpp.o"
  "CMakeFiles/rr_core.dir/core/agent.cpp.o.d"
  "CMakeFiles/rr_core.dir/core/event_queue.cpp.o"
  "CMakeFiles/rr_core.dir/core/event_queue.cpp.o.d"
  "CMakeFiles/rr_core.dir/core/event_trace.cpp.o"
  "CMakeFiles/rr_core.dir/core/event_trace.cpp.o.d"
  "CMakeFiles/rr_core.dir/core/ml_service.cpp.o"
  "CMakeFiles/rr_core.dir/core/ml_service.cpp.o.d"
  "CMakeFiles/rr_core.dir/core/sim_time.cpp.o"
  "CMakeFiles/rr_core.dir/core/sim_time.cpp.o.d"
  "CMakeFiles/rr_core.dir/core/simulator.cpp.o"
  "CMakeFiles/rr_core.dir/core/simulator.cpp.o.d"
  "librr_core.a"
  "librr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
