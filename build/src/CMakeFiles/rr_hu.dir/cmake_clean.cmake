file(REMOVE_RECURSE
  "CMakeFiles/rr_hu.dir/hu/hardware_unit.cpp.o"
  "CMakeFiles/rr_hu.dir/hu/hardware_unit.cpp.o.d"
  "librr_hu.a"
  "librr_hu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_hu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
