file(REMOVE_RECURSE
  "librr_hu.a"
)
