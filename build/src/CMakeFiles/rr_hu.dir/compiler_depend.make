# Empty compiler generated dependencies file for rr_hu.
# This may be replaced when dependencies are built.
