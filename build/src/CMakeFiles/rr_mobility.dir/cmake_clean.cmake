file(REMOVE_RECURSE
  "CMakeFiles/rr_mobility.dir/mobility/city_model.cpp.o"
  "CMakeFiles/rr_mobility.dir/mobility/city_model.cpp.o.d"
  "CMakeFiles/rr_mobility.dir/mobility/commute_model.cpp.o"
  "CMakeFiles/rr_mobility.dir/mobility/commute_model.cpp.o.d"
  "CMakeFiles/rr_mobility.dir/mobility/fleet_model.cpp.o"
  "CMakeFiles/rr_mobility.dir/mobility/fleet_model.cpp.o.d"
  "CMakeFiles/rr_mobility.dir/mobility/geo.cpp.o"
  "CMakeFiles/rr_mobility.dir/mobility/geo.cpp.o.d"
  "CMakeFiles/rr_mobility.dir/mobility/ignition.cpp.o"
  "CMakeFiles/rr_mobility.dir/mobility/ignition.cpp.o.d"
  "CMakeFiles/rr_mobility.dir/mobility/spatial_index.cpp.o"
  "CMakeFiles/rr_mobility.dir/mobility/spatial_index.cpp.o.d"
  "CMakeFiles/rr_mobility.dir/mobility/trace.cpp.o"
  "CMakeFiles/rr_mobility.dir/mobility/trace.cpp.o.d"
  "CMakeFiles/rr_mobility.dir/mobility/trace_file.cpp.o"
  "CMakeFiles/rr_mobility.dir/mobility/trace_file.cpp.o.d"
  "librr_mobility.a"
  "librr_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
