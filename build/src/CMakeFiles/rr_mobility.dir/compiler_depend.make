# Empty compiler generated dependencies file for rr_mobility.
# This may be replaced when dependencies are built.
