
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/city_model.cpp" "src/CMakeFiles/rr_mobility.dir/mobility/city_model.cpp.o" "gcc" "src/CMakeFiles/rr_mobility.dir/mobility/city_model.cpp.o.d"
  "/root/repo/src/mobility/commute_model.cpp" "src/CMakeFiles/rr_mobility.dir/mobility/commute_model.cpp.o" "gcc" "src/CMakeFiles/rr_mobility.dir/mobility/commute_model.cpp.o.d"
  "/root/repo/src/mobility/fleet_model.cpp" "src/CMakeFiles/rr_mobility.dir/mobility/fleet_model.cpp.o" "gcc" "src/CMakeFiles/rr_mobility.dir/mobility/fleet_model.cpp.o.d"
  "/root/repo/src/mobility/geo.cpp" "src/CMakeFiles/rr_mobility.dir/mobility/geo.cpp.o" "gcc" "src/CMakeFiles/rr_mobility.dir/mobility/geo.cpp.o.d"
  "/root/repo/src/mobility/ignition.cpp" "src/CMakeFiles/rr_mobility.dir/mobility/ignition.cpp.o" "gcc" "src/CMakeFiles/rr_mobility.dir/mobility/ignition.cpp.o.d"
  "/root/repo/src/mobility/spatial_index.cpp" "src/CMakeFiles/rr_mobility.dir/mobility/spatial_index.cpp.o" "gcc" "src/CMakeFiles/rr_mobility.dir/mobility/spatial_index.cpp.o.d"
  "/root/repo/src/mobility/trace.cpp" "src/CMakeFiles/rr_mobility.dir/mobility/trace.cpp.o" "gcc" "src/CMakeFiles/rr_mobility.dir/mobility/trace.cpp.o.d"
  "/root/repo/src/mobility/trace_file.cpp" "src/CMakeFiles/rr_mobility.dir/mobility/trace_file.cpp.o" "gcc" "src/CMakeFiles/rr_mobility.dir/mobility/trace_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
