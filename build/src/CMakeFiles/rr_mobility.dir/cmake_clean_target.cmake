file(REMOVE_RECURSE
  "librr_mobility.a"
)
