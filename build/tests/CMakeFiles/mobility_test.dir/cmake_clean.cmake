file(REMOVE_RECURSE
  "CMakeFiles/mobility_test.dir/mobility_test.cpp.o"
  "CMakeFiles/mobility_test.dir/mobility_test.cpp.o.d"
  "mobility_test"
  "mobility_test.pdb"
  "mobility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
