
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mobility_test.cpp" "tests/CMakeFiles/mobility_test.dir/mobility_test.cpp.o" "gcc" "tests/CMakeFiles/mobility_test.dir/mobility_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rr_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_hu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
