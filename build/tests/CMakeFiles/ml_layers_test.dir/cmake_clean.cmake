file(REMOVE_RECURSE
  "CMakeFiles/ml_layers_test.dir/ml_layers_test.cpp.o"
  "CMakeFiles/ml_layers_test.dir/ml_layers_test.cpp.o.d"
  "ml_layers_test"
  "ml_layers_test.pdb"
  "ml_layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
