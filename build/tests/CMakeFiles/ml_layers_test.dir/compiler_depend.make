# Empty compiler generated dependencies file for ml_layers_test.
# This may be replaced when dependencies are built.
