# Empty compiler generated dependencies file for commute_test.
# This may be replaced when dependencies are built.
