file(REMOVE_RECURSE
  "CMakeFiles/commute_test.dir/commute_test.cpp.o"
  "CMakeFiles/commute_test.dir/commute_test.cpp.o.d"
  "commute_test"
  "commute_test.pdb"
  "commute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
