file(REMOVE_RECURSE
  "CMakeFiles/concurrency_limit_test.dir/concurrency_limit_test.cpp.o"
  "CMakeFiles/concurrency_limit_test.dir/concurrency_limit_test.cpp.o.d"
  "concurrency_limit_test"
  "concurrency_limit_test.pdb"
  "concurrency_limit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_limit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
