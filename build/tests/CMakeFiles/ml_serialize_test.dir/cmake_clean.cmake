file(REMOVE_RECURSE
  "CMakeFiles/ml_serialize_test.dir/ml_serialize_test.cpp.o"
  "CMakeFiles/ml_serialize_test.dir/ml_serialize_test.cpp.o.d"
  "ml_serialize_test"
  "ml_serialize_test.pdb"
  "ml_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
