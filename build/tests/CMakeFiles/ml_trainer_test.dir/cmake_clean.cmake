file(REMOVE_RECURSE
  "CMakeFiles/ml_trainer_test.dir/ml_trainer_test.cpp.o"
  "CMakeFiles/ml_trainer_test.dir/ml_trainer_test.cpp.o.d"
  "ml_trainer_test"
  "ml_trainer_test.pdb"
  "ml_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
