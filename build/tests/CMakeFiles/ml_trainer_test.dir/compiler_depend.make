# Empty compiler generated dependencies file for ml_trainer_test.
# This may be replaced when dependencies are built.
