# Empty dependencies file for ml_tensor_test.
# This may be replaced when dependencies are built.
