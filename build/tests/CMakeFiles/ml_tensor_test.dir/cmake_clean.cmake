file(REMOVE_RECURSE
  "CMakeFiles/ml_tensor_test.dir/ml_tensor_test.cpp.o"
  "CMakeFiles/ml_tensor_test.dir/ml_tensor_test.cpp.o.d"
  "ml_tensor_test"
  "ml_tensor_test.pdb"
  "ml_tensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
