file(REMOVE_RECURSE
  "CMakeFiles/ml_conv_variants_test.dir/ml_conv_variants_test.cpp.o"
  "CMakeFiles/ml_conv_variants_test.dir/ml_conv_variants_test.cpp.o.d"
  "ml_conv_variants_test"
  "ml_conv_variants_test.pdb"
  "ml_conv_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_conv_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
