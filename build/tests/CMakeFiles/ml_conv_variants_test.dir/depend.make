# Empty dependencies file for ml_conv_variants_test.
# This may be replaced when dependencies are built.
