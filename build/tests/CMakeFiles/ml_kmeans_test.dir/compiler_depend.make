# Empty compiler generated dependencies file for ml_kmeans_test.
# This may be replaced when dependencies are built.
