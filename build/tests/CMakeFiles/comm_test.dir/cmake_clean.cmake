file(REMOVE_RECURSE
  "CMakeFiles/comm_test.dir/comm_test.cpp.o"
  "CMakeFiles/comm_test.dir/comm_test.cpp.o.d"
  "comm_test"
  "comm_test.pdb"
  "comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
