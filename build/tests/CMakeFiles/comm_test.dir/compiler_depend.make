# Empty compiler generated dependencies file for comm_test.
# This may be replaced when dependencies are built.
