file(REMOVE_RECURSE
  "CMakeFiles/strategy_invariants_test.dir/strategy_invariants_test.cpp.o"
  "CMakeFiles/strategy_invariants_test.dir/strategy_invariants_test.cpp.o.d"
  "strategy_invariants_test"
  "strategy_invariants_test.pdb"
  "strategy_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
