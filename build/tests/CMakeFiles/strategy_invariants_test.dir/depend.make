# Empty dependencies file for strategy_invariants_test.
# This may be replaced when dependencies are built.
