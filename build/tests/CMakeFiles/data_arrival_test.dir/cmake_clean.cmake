file(REMOVE_RECURSE
  "CMakeFiles/data_arrival_test.dir/data_arrival_test.cpp.o"
  "CMakeFiles/data_arrival_test.dir/data_arrival_test.cpp.o.d"
  "data_arrival_test"
  "data_arrival_test.pdb"
  "data_arrival_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_arrival_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
