# Empty dependencies file for data_arrival_test.
# This may be replaced when dependencies are built.
