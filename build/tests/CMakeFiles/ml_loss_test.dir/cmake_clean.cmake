file(REMOVE_RECURSE
  "CMakeFiles/ml_loss_test.dir/ml_loss_test.cpp.o"
  "CMakeFiles/ml_loss_test.dir/ml_loss_test.cpp.o.d"
  "ml_loss_test"
  "ml_loss_test.pdb"
  "ml_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
