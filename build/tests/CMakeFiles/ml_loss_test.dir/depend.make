# Empty dependencies file for ml_loss_test.
# This may be replaced when dependencies are built.
