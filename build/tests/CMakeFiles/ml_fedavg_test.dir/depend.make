# Empty dependencies file for ml_fedavg_test.
# This may be replaced when dependencies are built.
