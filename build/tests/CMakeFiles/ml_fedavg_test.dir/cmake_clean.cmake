file(REMOVE_RECURSE
  "CMakeFiles/ml_fedavg_test.dir/ml_fedavg_test.cpp.o"
  "CMakeFiles/ml_fedavg_test.dir/ml_fedavg_test.cpp.o.d"
  "ml_fedavg_test"
  "ml_fedavg_test.pdb"
  "ml_fedavg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_fedavg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
