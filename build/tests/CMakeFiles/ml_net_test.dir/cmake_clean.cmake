file(REMOVE_RECURSE
  "CMakeFiles/ml_net_test.dir/ml_net_test.cpp.o"
  "CMakeFiles/ml_net_test.dir/ml_net_test.cpp.o.d"
  "ml_net_test"
  "ml_net_test.pdb"
  "ml_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
