# Empty dependencies file for ml_net_test.
# This may be replaced when dependencies are built.
