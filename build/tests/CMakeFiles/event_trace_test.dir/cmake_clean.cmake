file(REMOVE_RECURSE
  "CMakeFiles/event_trace_test.dir/event_trace_test.cpp.o"
  "CMakeFiles/event_trace_test.dir/event_trace_test.cpp.o.d"
  "event_trace_test"
  "event_trace_test.pdb"
  "event_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
