# Empty dependencies file for event_trace_test.
# This may be replaced when dependencies are built.
