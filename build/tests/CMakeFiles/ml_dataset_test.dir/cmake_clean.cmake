file(REMOVE_RECURSE
  "CMakeFiles/ml_dataset_test.dir/ml_dataset_test.cpp.o"
  "CMakeFiles/ml_dataset_test.dir/ml_dataset_test.cpp.o.d"
  "ml_dataset_test"
  "ml_dataset_test.pdb"
  "ml_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
