# Empty compiler generated dependencies file for ml_dataset_test.
# This may be replaced when dependencies are built.
