file(REMOVE_RECURSE
  "CMakeFiles/hu_metrics_test.dir/hu_metrics_test.cpp.o"
  "CMakeFiles/hu_metrics_test.dir/hu_metrics_test.cpp.o.d"
  "hu_metrics_test"
  "hu_metrics_test.pdb"
  "hu_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hu_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
