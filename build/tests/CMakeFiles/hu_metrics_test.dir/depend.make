# Empty dependencies file for hu_metrics_test.
# This may be replaced when dependencies are built.
