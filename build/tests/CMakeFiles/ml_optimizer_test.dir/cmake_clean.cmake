file(REMOVE_RECURSE
  "CMakeFiles/ml_optimizer_test.dir/ml_optimizer_test.cpp.o"
  "CMakeFiles/ml_optimizer_test.dir/ml_optimizer_test.cpp.o.d"
  "ml_optimizer_test"
  "ml_optimizer_test.pdb"
  "ml_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
