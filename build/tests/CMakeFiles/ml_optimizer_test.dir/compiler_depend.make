# Empty compiler generated dependencies file for ml_optimizer_test.
# This may be replaced when dependencies are built.
