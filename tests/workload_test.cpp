// Streaming-workload subsystem tests: drift-plan grammar (parsing,
// unknown-key rejection, dense numbering, severity scaling, shift times),
// the telemetry stream generator's determinism and eval-window cadence,
// the time-to-readapt scorer's math on synthetic series, and the
// end-to-end guarantees: a drift experiment exports drift_* metrics
// reproducibly, drift campaigns stay byte-identical across worker counts
// and across the distributed coordinator path, mid-drift snapshots
// round-trip bit-identically (format v4), the committed v3 golden snapshot
// still restores, and checkpoint forks cannot silently swap the workload
// under saved models.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>

#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "campaign/spec.hpp"
#include "checkpoint/checkpoint.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "mobility/city_model.hpp"
#include "scenario/experiment.hpp"
#include "util/ini.hpp"
#include "util/rng.hpp"
#include "workload/drift_metrics.hpp"
#include "workload/drift_plan.hpp"
#include "workload/stream.hpp"
#include "workload/workload.hpp"

#ifndef RR_TEST_DATA_DIR
#define RR_TEST_DATA_DIR "tests/data"
#endif

namespace roadrunner {
namespace {

namespace fs = std::filesystem;

util::IniFile parse(const std::string& text) {
  return util::IniFile::parse(text);
}

// ------------------------------------------------------------ parsing -----

TEST(DriftPlanParse, EmptyIniYieldsEmptyPlan) {
  const workload::DriftPlan plan =
      workload::plan_from_ini(parse("[scenario]\nvehicles = 3\n"));
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.severity, 1.0);
}

TEST(DriftPlanParse, FullGrammarRoundTrip) {
  const workload::DriftPlan plan = workload::plan_from_ini(parse(R"(
[drift]
severity = 1.5
[drift.0]
kind = abrupt
at_s = 300
magnitude = 2.5
[drift.1]
kind = gradual_front
x_m = 100
y_m = -50
start_s = 450
end_s = 600
reach_m = 6000
magnitude = 2.0
component = 1
[drift.2]
kind = periodic
period_s = 120
magnitude = 0.5
component = 0
)"));
  ASSERT_EQ(plan.events.size(), 3U);
  EXPECT_DOUBLE_EQ(plan.severity, 1.5);

  const workload::DriftEvent& abrupt = plan.events[0];
  EXPECT_EQ(abrupt.kind, workload::DriftKind::kAbrupt);
  EXPECT_DOUBLE_EQ(abrupt.at_s, 300.0);
  EXPECT_DOUBLE_EQ(abrupt.magnitude, 2.5);
  EXPECT_EQ(abrupt.component, workload::kAllComponents);

  const workload::DriftEvent& front = plan.events[1];
  EXPECT_EQ(front.kind, workload::DriftKind::kGradualFront);
  EXPECT_DOUBLE_EQ(front.x_m, 100.0);
  EXPECT_DOUBLE_EQ(front.y_m, -50.0);
  EXPECT_DOUBLE_EQ(front.reach_m, 6000.0);
  EXPECT_EQ(front.component, 1);
  EXPECT_DOUBLE_EQ(front.front_radius_at(450.0), 0.0);
  EXPECT_DOUBLE_EQ(front.front_radius_at(525.0), 3000.0);
  EXPECT_DOUBLE_EQ(front.front_radius_at(600.0), 6000.0);

  const workload::DriftEvent& periodic = plan.events[2];
  EXPECT_EQ(periodic.kind, workload::DriftKind::kPeriodic);
  EXPECT_DOUBLE_EQ(periodic.period_s, 120.0);
  EXPECT_TRUE(periodic.active_at(1.0e6));
}

TEST(DriftPlanParse, RejectsUnknownKeysPerKind) {
  // reach_m belongs to gradual_front; on abrupt it is a typo, not noise.
  EXPECT_THROW(workload::plan_from_ini(parse(R"(
[drift.0]
kind = abrupt
at_s = 100
reach_m = 500
)")),
               std::runtime_error);
  EXPECT_THROW(workload::plan_from_ini(parse(R"(
[drift.0]
kind = periodic
period_s = 60
x_m = 0
)")),
               std::runtime_error);
  EXPECT_THROW(workload::plan_from_ini(parse("[drift]\nseverty = 2\n")),
               std::runtime_error);
}

TEST(DriftPlanParse, RejectsUnknownKindAndBadValues) {
  EXPECT_THROW(
      workload::plan_from_ini(parse("[drift.0]\nkind = meteor\n")),
      std::runtime_error);
  EXPECT_THROW(workload::plan_from_ini(
                   parse("[drift.0]\nkind = abrupt\nat_s = -5\n")),
               std::runtime_error);
  EXPECT_THROW(workload::plan_from_ini(
                   parse("[drift.0]\nkind = periodic\nperiod_s = 0\n")),
               std::runtime_error);
  EXPECT_THROW(
      workload::plan_from_ini(parse(
          "[drift.0]\nkind = gradual_front\nreach_m = 100\n"
          "start_s = 300\nend_s = 200\n")),
      std::runtime_error);
  EXPECT_THROW(workload::plan_from_ini(parse(
                   "[drift.0]\nkind = abrupt\ncomponent = fish\n")),
               std::runtime_error);
}

TEST(DriftPlanParse, RejectsNumberingGap) {
  EXPECT_THROW(workload::plan_from_ini(parse(R"(
[drift.0]
kind = abrupt
at_s = 100
[drift.2]
kind = abrupt
at_s = 200
)")),
               std::runtime_error);
}

TEST(DriftPlanParse, SeverityScalesOnlyMagnitudes) {
  workload::DriftPlan plan = workload::plan_from_ini(parse(R"(
[drift]
severity = 2
[drift.0]
kind = abrupt
at_s = 300
magnitude = 1.5
[drift.1]
kind = gradual_front
start_s = 400
end_s = 500
reach_m = 4000
magnitude = 1.0
)"));
  const workload::DriftPlan scaled = plan.scaled();
  ASSERT_EQ(scaled.events.size(), 2U);
  EXPECT_DOUBLE_EQ(scaled.severity, 1.0);
  EXPECT_DOUBLE_EQ(scaled.events[0].magnitude, 3.0);
  EXPECT_DOUBLE_EQ(scaled.events[1].magnitude, 2.0);
  // Timing and geometry are severity-invariant: readapt numbers stay
  // comparable across the severity axis.
  EXPECT_DOUBLE_EQ(scaled.events[0].at_s, 300.0);
  EXPECT_DOUBLE_EQ(scaled.events[1].end_s, 500.0);
  EXPECT_DOUBLE_EQ(scaled.events[1].reach_m, 4000.0);

  plan.severity = 0.0;
  EXPECT_TRUE(plan.scaled().empty());
}

TEST(DriftPlanParse, ShiftTimesSortedDedupedAndClamped) {
  const workload::DriftPlan plan = workload::plan_from_ini(parse(R"(
[drift.0]
kind = abrupt
at_s = 600
[drift.1]
kind = gradual_front
start_s = 100
end_s = 300
reach_m = 5000
[drift.2]
kind = abrupt
at_s = 300
[drift.3]
kind = periodic
period_s = 60
[drift.4]
kind = abrupt
at_s = 2000
)"));
  // Front completion (300) collides with the duplicate abrupt time; the
  // periodic event contributes nothing; at_s = 2000 falls past the horizon.
  const std::vector<double> times = plan.shift_times(900.0);
  ASSERT_EQ(times.size(), 2U);
  EXPECT_DOUBLE_EQ(times[0], 300.0);
  EXPECT_DOUBLE_EQ(times[1], 600.0);
}

// ------------------------------------------------------------- stream -----

workload::WorkloadConfig stream_config() {
  workload::WorkloadConfig cfg;
  cfg.kind = "telemetry";
  cfg.dims = 4;
  cfg.components = 3;
  cfg.rate_per_s = 1.0;
  cfg.eval_every_s = 30.0;
  cfg.eval_samples = 50;
  cfg.drift = workload::plan_from_ini(parse(R"(
[drift.0]
kind = abrupt
at_s = 120
magnitude = 2.0
[drift.1]
kind = gradual_front
start_s = 180
end_s = 240
reach_m = 6000
magnitude = 1.5
)"));
  return cfg;
}

mobility::FleetModel test_fleet(std::size_t vehicles, double duration_s) {
  mobility::CityModelConfig city;
  city.duration_s = duration_s;
  city.seed = 5;
  return mobility::make_city_fleet(vehicles, city);
}

TEST(TelemetryStream, SameSeedSameBytes) {
  const workload::WorkloadConfig cfg = stream_config();
  const mobility::FleetModel fleet = test_fleet(6, 300.0);
  auto generate = [&] {
    util::Rng rng = util::Rng{42}.fork("workload");
    return workload::make_telemetry_stream(cfg, fleet, 6, 300.0, 4000.0,
                                           rng);
  };
  const workload::TelemetryStream a = generate();
  const workload::TelemetryStream b = generate();
  ASSERT_EQ(a.dataset->size(), b.dataset->size());
  const ml::Tensor& xa = a.dataset->features();
  const ml::Tensor& xb = b.dataset->features();
  ASSERT_EQ(xa.size(), xb.size());
  EXPECT_EQ(std::memcmp(xa.data(), xb.data(), xa.size() * sizeof(float)), 0)
      << "same seed must reproduce the telemetry bit-for-bit";
  EXPECT_EQ(a.dataset->labels(), b.dataset->labels());
}

TEST(TelemetryStream, ShapesArrivalOrderAndWindowCadence) {
  const workload::WorkloadConfig cfg = stream_config();
  const mobility::FleetModel fleet = test_fleet(6, 300.0);
  util::Rng rng{7};
  const workload::TelemetryStream stream =
      workload::make_telemetry_stream(cfg, fleet, 6, 300.0, 4000.0, rng);

  ASSERT_EQ(stream.vehicle_data.size(), 6U);
  for (const ml::DatasetView& view : stream.vehicle_data) {
    // rate 1/s over 300 s: every vehicle senses the same number of samples.
    EXPECT_EQ(view.size(), 300U);
  }
  EXPECT_EQ(stream.dataset->num_classes(), 3U);
  EXPECT_EQ(stream.dataset->sample_size(), 4U);

  // Eval windows: one at t = 0, then every eval_every_s until the horizon.
  ASSERT_EQ(stream.eval_windows.size(), 10U);
  for (std::size_t w = 0; w < stream.eval_windows.size(); ++w) {
    EXPECT_DOUBLE_EQ(stream.eval_windows[w].start_s, 30.0 * w);
    EXPECT_EQ(stream.eval_windows[w].data.size(), 50U);
  }

  // Labels are generating-component indices.
  for (std::int32_t label : stream.dataset->labels()) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
}

TEST(TelemetryStream, AbruptShiftMovesTheEvalDistribution) {
  // With a large abrupt jump at 120 s, windows on either side of the shift
  // must differ: mean feature vectors separate by about the magnitude.
  workload::WorkloadConfig cfg = stream_config();
  cfg.drift = workload::plan_from_ini(parse(R"(
[drift.0]
kind = abrupt
at_s = 120
magnitude = 8.0
)"));
  const mobility::FleetModel fleet = test_fleet(4, 300.0);
  util::Rng rng{11};
  const workload::TelemetryStream stream =
      workload::make_telemetry_stream(cfg, fleet, 4, 300.0, 4000.0, rng);

  // Mean feature vector of component-0 samples: the drift displaces it by
  // a magnitude-8 unit vector, so the two windows' means are ~8 apart.
  auto component_mean = [&](const workload::EvalWindow& w) {
    std::vector<double> mean(4, 0.0);
    std::size_t count = 0;
    for (std::size_t i = 0; i < w.data.size(); ++i) {
      const std::uint32_t row = w.data.indices()[i];
      if (w.data.base().label(row) != 0) continue;
      const float* x = w.data.base().sample(row);
      for (std::size_t j = 0; j < 4; ++j) mean[j] += x[j];
      ++count;
    }
    for (double& m : mean) m /= static_cast<double>(count);
    return mean;
  };
  const std::vector<double> before = component_mean(stream.eval_windows[0]);
  const std::vector<double> after =
      component_mean(stream.eval_windows.back());  // t = 270, post-shift
  double dist2 = 0.0;
  for (std::size_t j = 0; j < 4; ++j) {
    dist2 += (after[j] - before[j]) * (after[j] - before[j]);
  }
  EXPECT_GT(std::sqrt(dist2), 4.0);
}

TEST(TelemetryStream, ValidatesInput) {
  workload::WorkloadConfig cfg = stream_config();
  const mobility::FleetModel fleet = test_fleet(2, 100.0);
  util::Rng rng{1};
  cfg.rate_per_s = 0.0;
  EXPECT_THROW(
      workload::make_telemetry_stream(cfg, fleet, 2, 100.0, 4000.0, rng),
      std::invalid_argument);
  cfg = stream_config();
  cfg.dims = 0;
  EXPECT_THROW(
      workload::make_telemetry_stream(cfg, fleet, 2, 100.0, 4000.0, rng),
      std::invalid_argument);
  cfg = stream_config();
  EXPECT_THROW(
      workload::make_telemetry_stream(cfg, fleet, 2, 0.0, 4000.0, rng),
      std::invalid_argument);
}

// ------------------------------------------------------- drift scoring ----

std::vector<workload::DriftScore> series_from(
    std::initializer_list<std::pair<double, double>> points) {
  std::vector<workload::DriftScore> out;
  for (const auto& [t, s] : points) out.push_back({t, s});
  return out;
}

TEST(DriftMetrics, DetectsRecoveryTime) {
  // Score sits at 0.9, craters to 0.1 right after the shift at 100 s, and
  // climbs back. The recovery baseline is the pre-shift plateau (0.9);
  // trough 0.1; the 0.9-recovery threshold is 0.1 + 0.9*0.8 = 0.82 —
  // first crossed at t = 300.
  const auto series = series_from({{50.0, 0.9},
                                   {120.0, 0.1},
                                   {200.0, 0.5},
                                   {300.0, 0.85},
                                   {400.0, 0.9},
                                   {450.0, 0.9}});
  const workload::DriftSummary summary =
      workload::summarize_drift(series, {100.0}, 500.0, 0.9);
  ASSERT_EQ(summary.shifts.size(), 1U);
  EXPECT_TRUE(summary.shifts[0].recovered);
  EXPECT_DOUBLE_EQ(summary.shifts[0].shift_s, 100.0);
  EXPECT_DOUBLE_EQ(summary.shifts[0].readapt_s, 200.0);
  EXPECT_EQ(summary.unrecovered, 0U);
  EXPECT_DOUBLE_EQ(summary.mean_time_to_readapt_s, 200.0);
}

TEST(DriftMetrics, UnrecoveredShiftCountsItsFullSegment) {
  // Pre-shift plateau 0.9; post-shift the score never climbs back within
  // 95% of the drop (threshold 0.1 + 0.95*0.8 = 0.86, best post-shift
  // point is 0.6): unrecovered, and readapt floors at the segment length.
  const auto series = series_from({{50.0, 0.9},
                                   {150.0, 0.1},
                                   {250.0, 0.1},
                                   {420.0, 0.6},
                                   {480.0, 0.1}});
  const workload::DriftSummary summary =
      workload::summarize_drift(series, {100.0}, 500.0, 0.95);
  ASSERT_EQ(summary.shifts.size(), 1U);
  EXPECT_FALSE(summary.shifts[0].recovered);
  EXPECT_DOUBLE_EQ(summary.shifts[0].readapt_s, 400.0);
  EXPECT_EQ(summary.unrecovered, 1U);

  // A segment with no eval points at all is unrecovered for its length.
  const workload::DriftSummary empty_tail =
      workload::summarize_drift(series_from({{50.0, 0.9}}), {100.0}, 500.0,
                                0.9);
  ASSERT_EQ(empty_tail.shifts.size(), 1U);
  EXPECT_FALSE(empty_tail.shifts[0].recovered);
  EXPECT_DOUBLE_EQ(empty_tail.shifts[0].readapt_s, 400.0);
  EXPECT_EQ(empty_tail.unrecovered, 1U);
}

TEST(DriftMetrics, FlatSegmentReadaptsImmediately) {
  // Plateau <= trough means the shift cost nothing: readapt is 0.
  const auto series = series_from(
      {{150.0, 0.7}, {250.0, 0.7}, {350.0, 0.7}, {450.0, 0.7}});
  const workload::DriftSummary summary =
      workload::summarize_drift(series, {100.0}, 500.0, 0.9);
  ASSERT_EQ(summary.shifts.size(), 1U);
  EXPECT_TRUE(summary.shifts[0].recovered);
  EXPECT_DOUBLE_EQ(summary.shifts[0].readapt_s, 0.0);
}

TEST(DriftMetrics, RegretGrowsWithStaleness) {
  // Two runs with the same trough and plateau; the slow one spends longer
  // below the plateau, so its time-weighted regret must be larger.
  const auto fast = series_from({{150.0, 0.1},
                                 {200.0, 0.9},
                                 {300.0, 0.9},
                                 {400.0, 0.9},
                                 {480.0, 0.9}});
  const auto slow = series_from({{150.0, 0.1},
                                 {200.0, 0.1},
                                 {300.0, 0.1},
                                 {400.0, 0.9},
                                 {480.0, 0.9}});
  const workload::DriftSummary a =
      workload::summarize_drift(fast, {100.0}, 500.0, 0.9);
  const workload::DriftSummary b =
      workload::summarize_drift(slow, {100.0}, 500.0, 0.9);
  EXPECT_GT(b.regret, a.regret);
  EXPECT_GE(a.regret, 0.0);
}

TEST(DriftMetrics, NoShiftsMeansNoOutcomes) {
  const auto series = series_from({{50.0, 0.5}, {100.0, 0.6}});
  const workload::DriftSummary summary =
      workload::summarize_drift(series, {}, 200.0, 0.9);
  EXPECT_TRUE(summary.shifts.empty());
  EXPECT_EQ(summary.unrecovered, 0U);
  EXPECT_DOUBLE_EQ(summary.mean_time_to_readapt_s, 0.0);
}

// -------------------------------------------------------- experiments -----

std::string drift_ini(const std::string& strategy_block = R"([strategy]
name = federated
rounds = 20
participants = 4
round_duration_s = 30
)") {
  return R"([scenario]
vehicles = 8
rsus = 1
seed = 17
horizon_s = 900

[city]
duration_s = 900

[workload]
kind = telemetry
objective = density
dims = 4
components = 3
rate_per_s = 1.0
recent_window = 120
eval_every_s = 30
eval_samples = 150

[drift.0]
kind = abrupt
at_s = 300
magnitude = 2.5

[drift.1]
kind = gradual_front
x_m = 0
y_m = 0
start_s = 450
end_s = 600
reach_m = 6000
magnitude = 2.0

[train]
epochs = 1

)" + strategy_block;
}

TEST(DriftExperiment, ExportsDriftMetrics) {
  const scenario::RunResult result =
      scenario::run_experiment(parse(drift_ini()));
  // Two discrete shifts: the abrupt jump at 300 s, the front completing at
  // 600 s.
  EXPECT_DOUBLE_EQ(result.metrics.counter("drift_shifts_total"), 2.0);
  EXPECT_GE(result.metrics.counter("drift_mean_time_to_readapt_s"), 0.0);
  EXPECT_GE(result.metrics.counter("drift_regret"), 0.0);
  ASSERT_TRUE(result.metrics.has_series("drift_eval_score"));
  EXPECT_GT(result.metrics.series("drift_eval_score").size(), 10U);
  ASSERT_TRUE(result.metrics.has_series("drift_time_to_readapt_s"));
  EXPECT_EQ(result.metrics.series("drift_time_to_readapt_s").size(), 2U);
  // Density scores are mean log-likelihoods: finite, and the final score
  // must beat the untrained sentinel by a wide margin.
  EXPECT_TRUE(std::isfinite(result.final_accuracy));
  EXPECT_GT(result.final_accuracy, -100.0);
}

TEST(DriftExperiment, SupervisedObjectiveTracksTheRegimes) {
  // The supervised-under-drift variant: the existing net classifies the
  // generating mixture component from a sliding window of recent samples.
  // Scores are held-out accuracies, so they live in [0, 1], and the
  // regimes are separable enough to beat chance (1/3) comfortably.
  std::string ini_text = drift_ini();
  ini_text.replace(ini_text.find("objective = density"),
                   std::string{"objective = density"}.size(),
                   "objective = supervised");
  ini_text.replace(ini_text.find("epochs = 1"),
                   std::string{"epochs = 1"}.size(),
                   "model = logreg\nepochs = 1");
  const scenario::RunResult result =
      scenario::run_experiment(parse(ini_text));
  EXPECT_DOUBLE_EQ(result.metrics.counter("drift_shifts_total"), 2.0);
  ASSERT_TRUE(result.metrics.has_series("drift_eval_score"));
  for (const auto& point : result.metrics.series("drift_eval_score")) {
    EXPECT_GE(point.value, 0.0);
    EXPECT_LE(point.value, 1.0);
  }
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(DriftExperiment, SameSeedSameMetricsBytes) {
  const auto ini = parse(drift_ini());
  const scenario::RunResult a = scenario::run_experiment(ini);
  const scenario::RunResult b = scenario::run_experiment(ini);
  std::ostringstream csv_a, csv_b;
  a.metrics.export_csv(csv_a);
  b.metrics.export_csv(csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(DriftExperiment, StaticWorkloadIsUntouchedByDriftSections) {
  // The workload switch gates the stream generator: a static-workload
  // experiment with [drift.N] sections present parses them but never
  // exports drift metrics (the eval path is the frozen test set).
  const auto ini = parse(R"([scenario]
vehicles = 4
horizon_s = 300
[city]
duration_s = 300
[data]
dataset = blobs
train_pool = 200
test_size = 40
partition = iid
samples_per_vehicle = 20
[train]
model = logreg
epochs = 1
[strategy]
name = federated
rounds = 2
participants = 2
round_duration_s = 60
[drift.0]
kind = abrupt
at_s = 100
)");
  const scenario::RunResult result = scenario::run_experiment(ini);
  EXPECT_FALSE(result.metrics.has_series("drift_eval_score"));
  EXPECT_DOUBLE_EQ(result.metrics.counter("drift_shifts_total"), 0.0);
}

// ---------------------------------------------- campaign determinism ------

/// 2 points x 1 seed drift grid: federated vs gossip tracking the same
/// drifting stream, small enough for loopback tests.
campaign::CampaignSpec drift_spec() {
  campaign::CampaignSpec spec;
  spec.name = "drift_determinism";
  spec.base = util::IniFile::parse(drift_ini());
  spec.grid = {{"strategy", "name", {"federated", "gossip"}}};
  spec.seeds_per_point = 1;
  spec.base_seed = 23;
  return spec;
}

std::string records_bytes(const std::vector<campaign::JobRecord>& records) {
  std::string out;
  for (campaign::JobRecord record : records) {
    record.wall_seconds = 0.0;  // host wall-clock: outside the contract
    dist::encode_record(record, out);
  }
  return out;
}

TEST(DriftCampaign, WorkerCountDoesNotChangeTheBytes) {
  const campaign::CampaignSpec spec = drift_spec();
  campaign::EngineOptions serial;
  serial.workers = 1;
  campaign::EngineOptions wide;
  wide.workers = 4;
  const campaign::CampaignResult one = campaign::run_campaign(spec, serial);
  const campaign::CampaignResult four = campaign::run_campaign(spec, wide);
  ASSERT_EQ(one.records.size(), 2U);
  EXPECT_EQ(records_bytes(one.records), records_bytes(four.records));
  std::ostringstream a, b;
  campaign::write_aggregate_csv(a, campaign::summarize(one.records));
  campaign::write_aggregate_csv(b, campaign::summarize(four.records));
  EXPECT_EQ(a.str(), b.str());
}

TEST(DriftCampaign, DistributedRunMatchesInProcessEngine) {
  const campaign::CampaignSpec spec = drift_spec();
  campaign::EngineOptions local;
  local.workers = 2;
  const campaign::CampaignResult reference =
      campaign::run_campaign(spec, local);

  dist::CoordinatorOptions copts;
  copts.host = "127.0.0.1";
  dist::Coordinator coordinator{spec, copts};
  const std::uint16_t port = coordinator.port();
  ASSERT_GT(port, 0);
  dist::CoordinatorResult result;
  std::thread serve_thread{[&] { result = coordinator.serve(); }};
  dist::WorkerOptions wopts;
  wopts.host = "127.0.0.1";
  wopts.port = port;
  wopts.name = "drift-worker";
  const dist::WorkerReport report = dist::run_worker(wopts);
  serve_thread.join();

  EXPECT_EQ(report.shutdown_reason, "campaign complete");
  ASSERT_EQ(result.records.size(), reference.records.size());
  EXPECT_EQ(records_bytes(result.records), records_bytes(reference.records));
}

// ----------------------------------------------------------- checkpoint ---

TEST(WorkloadCheckpoint, MidDriftRoundTripIsBitIdentical) {
  const auto ini = parse(drift_ini());
  const fs::path snap = fs::temp_directory_path() / "rr_drift_roundtrip.rrck";
  fs::remove(snap);

  auto run_full = [&](const std::string& snap_path) {
    scenario::Scenario scn{scenario::scenario_from_ini(ini)};
    auto strategy = scenario::strategy_from_ini(ini);
    auto sim = scn.make_simulator();
    sim->set_strategy(strategy);
    bool saved = false;
    if (!snap_path.empty()) {
      // Save inside the post-shift readaptation window: the eval-window
      // pointer, the sliding data window, and the drift_eval_score series
      // are all mid-flight.
      sim->set_autosave(400.0, [&](core::Simulator& s) {
        if (saved) return;
        saved = true;
        checkpoint::save(s, ini, snap_path);
      });
    }
    (void)sim->run();
    std::ostringstream trace, metrics;
    sim->trace().export_csv(trace);
    sim->metrics_view().export_csv(metrics);
    return std::pair<std::string, std::string>{trace.str(), metrics.str()};
  };

  const auto uninterrupted = run_full({});
  const auto snapshotting = run_full(snap.string());
  EXPECT_EQ(uninterrupted.first, snapshotting.first);
  ASSERT_TRUE(fs::exists(snap));
  const checkpoint::SnapshotInfo info = checkpoint::peek(snap.string());
  EXPECT_EQ(info.format_version, checkpoint::kFormatVersion);

  checkpoint::RestoredRun resumed = checkpoint::restore(snap.string());
  (void)resumed.simulator->run();
  std::ostringstream trace, metrics;
  resumed.simulator->trace().export_csv(trace);
  resumed.simulator->metrics_view().export_csv(metrics);
  EXPECT_EQ(uninterrupted.first, trace.str());
  EXPECT_EQ(uninterrupted.second, metrics.str());
  fs::remove(snap);
}

TEST(WorkloadCheckpoint, ForkCannotSwapTheWorkload) {
  const auto ini = parse(drift_ini());
  const fs::path snap = fs::temp_directory_path() / "rr_drift_fork.rrck";
  fs::remove(snap);
  {
    scenario::Scenario scn{scenario::scenario_from_ini(ini)};
    auto sim = scn.make_simulator();
    sim->set_strategy(scenario::strategy_from_ini(ini));
    checkpoint::save(*sim, ini, snap.string());
  }

  // Changing the GMM shape or the feature dimensionality under saved agent
  // models must be rejected by the workload fingerprint.
  EXPECT_THROW(
      checkpoint::fork(snap.string(), {{"workload.components", "5"}}),
      std::runtime_error);
  EXPECT_THROW(checkpoint::fork(snap.string(), {{"workload.dims", "6"}}),
               std::runtime_error);
  // Harmless overrides still fork fine.
  checkpoint::RestoredRun what_if =
      checkpoint::fork(snap.string(), {{"network.v2c_loss", "0.2"}});
  EXPECT_NE(what_if.simulator, nullptr);
  fs::remove(snap);
}

TEST(WorkloadCheckpoint, PriorFormatGoldenSnapshotStillRestores) {
  // Committed fixture generated by the last release that wrote format v3,
  // BEFORE the workload section existed. Restoring it and finishing must
  // reproduce a fresh run of its embedded experiment byte-for-byte: format
  // v4 readers stay backward compatible one version.
  const fs::path dir{RR_TEST_DATA_DIR};
  const fs::path snap = dir / "checkpoint_v3_golden.rrck";
  const fs::path ini_path = dir / "checkpoint_v3_golden.ini";
  ASSERT_TRUE(fs::exists(snap)) << snap;
  ASSERT_TRUE(fs::exists(ini_path)) << ini_path;

  const checkpoint::SnapshotInfo info = checkpoint::peek(snap.string());
  EXPECT_EQ(info.format_version, 3U);
  EXPECT_LT(info.format_version, checkpoint::kFormatVersion);

  checkpoint::RestoredRun resumed = checkpoint::restore(snap.string());
  const scenario::RunResult finished = resumed.finish();
  const scenario::RunResult fresh =
      scenario::run_experiment(util::IniFile::load(ini_path.string()));
  EXPECT_DOUBLE_EQ(finished.final_accuracy, fresh.final_accuracy);
  std::ostringstream a, b;
  finished.metrics.export_csv(a);
  fresh.metrics.export_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace roadrunner
