// Truncation and hostile-length regression tests for util::BinReader /
// BinWriter — the primitives every untrusted parser (RRCK snapshots, the
// dist wire protocol) is built on. A length field larger than the
// remaining bytes must be a clean runtime_error before any allocation,
// mirroring the dist recv_exact fix.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/binary_io.hpp"

namespace roadrunner::util {
namespace {

TEST(BinaryIo, ScalarRoundTrip) {
  BinWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.5);
  w.boolean(true);
  w.str("hello");
  w.bytes({1, 2, 3});

  BinReader r{w.buffer()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEF);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.5);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.done());
}

TEST(BinaryIo, LayoutIsLittleEndian) {
  BinWriter w;
  w.u32(0x04030201);
  const std::string& b = w.buffer();
  ASSERT_EQ(b.size(), 4U);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x04);
}

TEST(BinaryIo, EmptyReaderThrowsOnEveryScalar) {
  EXPECT_THROW(BinReader{""}.u8(), std::runtime_error);
  EXPECT_THROW(BinReader{""}.u32(), std::runtime_error);
  EXPECT_THROW(BinReader{""}.u64(), std::runtime_error);
  EXPECT_THROW(BinReader{""}.f64(), std::runtime_error);
  EXPECT_THROW(BinReader{""}.str(), std::runtime_error);
  EXPECT_THROW(BinReader{""}.bytes(), std::runtime_error);
}

TEST(BinaryIo, TruncatedScalarThrows) {
  BinWriter w;
  w.u32(7);
  const std::string buf = w.buffer().substr(0, 3);
  BinReader r{buf};
  EXPECT_THROW(r.u32(), std::runtime_error);
}

// The core hostile-length case: a string whose u64 length prefix claims
// far more than the remaining bytes. Must throw cleanly — never allocate
// the claimed size, never assert.
TEST(BinaryIo, StringLengthBeyondRemainingThrows) {
  BinWriter w;
  w.u64(1ULL << 40);  // ~1 TiB claimed, zero payload present
  BinReader r{w.buffer()};
  EXPECT_THROW(r.str(), std::runtime_error);
}

TEST(BinaryIo, StringLengthMaxU64Throws) {
  BinWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max());
  BinReader r{w.buffer()};
  // On 32-bit size_t this length would wrap to SIZE_MAX through a
  // narrowing compare; the 64-bit need() must reject it either way.
  EXPECT_THROW(r.str(), std::runtime_error);
}

TEST(BinaryIo, BytesLengthBeyondRemainingThrows) {
  BinWriter w;
  w.u64(1ULL << 40);
  w.raw("xy", 2);
  BinReader r{w.buffer()};
  EXPECT_THROW(r.bytes(), std::runtime_error);
}

TEST(BinaryIo, BytesOffByOneThrows) {
  BinWriter w;
  w.u64(3);
  w.raw("ab", 2);  // one byte short of the claimed 3
  BinReader r{w.buffer()};
  EXPECT_THROW(r.bytes(), std::runtime_error);
}

TEST(BinaryIo, SubReaderBeyondRemainingThrows) {
  BinWriter w;
  w.u32(1);
  BinReader r{w.buffer()};
  EXPECT_THROW(r.sub(5), std::runtime_error);
  EXPECT_THROW(r.sub(std::numeric_limits<std::uint64_t>::max()),
               std::runtime_error);
}

TEST(BinaryIo, SubReaderIsBoundedView) {
  BinWriter w;
  w.u32(0x11111111);
  w.u32(0x22222222);
  BinReader r{w.buffer()};
  BinReader s = r.sub(4);
  EXPECT_EQ(s.u32(), 0x11111111U);
  EXPECT_THROW(s.u32(), std::runtime_error);  // view ends, outer data hidden
  EXPECT_EQ(r.u32(), 0x22222222U);            // outer reader skipped the view
}

TEST(BinaryIo, TruncationErrorIsActionable) {
  BinWriter w;
  w.u64(100);
  try {
    BinReader r{w.buffer()};
    (void)r.str();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    EXPECT_NE(msg.find("100"), std::string::npos) << msg;  // needed bytes
  }
}

TEST(BinaryIo, ReaderStateSurvivesFailedRead) {
  BinWriter w;
  w.u64(1ULL << 40);
  w.raw("payload", 7);
  BinReader r{w.buffer()};
  EXPECT_THROW(r.str(), std::runtime_error);
  // The failed read consumed only the length prefix; remaining() reflects
  // the bytes still available (callers treat the stream as poisoned, but
  // the reader must not have advanced past the end).
  EXPECT_EQ(r.remaining(), 7U);
}

TEST(BinaryIo, Crc32MatchesKnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926U);
  // Incremental seeding composes.
  const std::uint32_t partial = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, partial), 0xCBF43926U);
}

}  // namespace
}  // namespace roadrunner::util
