// FCD import + trace-file hardening tests: the SUMO FCD-XML loader's
// golden fixture (dense ids by first appearance, gap-split ignition
// inference, the one-dt ON tail), its rejection of malformed XML with
// file+line context, geo-mode projection and its round-trip, an
// FCD-driven experiment end to end, and the hardened CSV loader's
// regression suite (file+line on malformed rows, non-finite coordinate
// rejection, non-monotone ignition intervals).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "mobility/fcd.hpp"
#include "mobility/geo.hpp"
#include "mobility/trace_file.hpp"
#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"

#ifndef RR_TEST_DATA_DIR
#define RR_TEST_DATA_DIR "tests/data"
#endif

namespace roadrunner {
namespace {

namespace fs = std::filesystem;

std::string golden_path(const std::string& name) {
  return (fs::path{RR_TEST_DATA_DIR} / name).string();
}

/// Writes `content` to a unique temp file and returns its path.
std::string write_tmp(const std::string& name, const std::string& content) {
  const fs::path path = fs::temp_directory_path() / name;
  std::ofstream out{path};
  out << content;
  return path.string();
}

/// Asserts that loading `path` throws std::runtime_error whose message
/// contains every fragment (the path itself is always required: errors
/// must say which file is bad).
template <typename Loader>
void expect_load_error(const Loader& load, const std::string& path,
                       const std::vector<std::string>& fragments) {
  try {
    load();
    FAIL() << "expected a parse error for " << path;
  } catch (const std::runtime_error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    for (const std::string& fragment : fragments) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "missing '" << fragment << "' in: " << what;
    }
  }
}

// ------------------------------------------------------- golden fixture ---

TEST(FcdImport, GoldenFixtureLoads) {
  mobility::FcdOptions options;
  options.gap_threshold_s = 5.0;  // the 10 s silence splits alpha's trips
  const mobility::FleetModel fleet =
      mobility::load_fleet_fcd(golden_path("fcd_golden.xml"), options);
  ASSERT_EQ(fleet.vehicle_count(), 3U);

  // Dense NodeIds in order of first appearance: alpha, beta, gamma.
  const mobility::VehicleTrack& alpha = fleet.vehicle(0);
  const mobility::VehicleTrack& beta = fleet.vehicle(1);
  const mobility::VehicleTrack& gamma = fleet.vehicle(2);
  EXPECT_EQ(alpha.trace.sample_count(), 7U);  // 5 before the gap + 2 after
  EXPECT_EQ(beta.trace.sample_count(), 11U);
  EXPECT_EQ(gamma.trace.sample_count(), 5U);

  // Positions come through verbatim in planar mode.
  EXPECT_DOUBLE_EQ(alpha.trace.samples().front().position.x, 100.0);
  EXPECT_DOUBLE_EQ(alpha.trace.samples().front().position.y, 50.0);
  EXPECT_DOUBLE_EQ(beta.trace.samples().back().position.y, 100.0);
  EXPECT_DOUBLE_EQ(gamma.trace.samples().front().time_s, 4.0);

  // Ignition from trace gaps, each run extended one dt (= 2 s) past its
  // last sample: alpha [0,10)+[18,22), beta [0,22), gamma [4,14).
  const auto& alpha_on = alpha.ignition.intervals();
  ASSERT_EQ(alpha_on.size(), 2U);
  EXPECT_DOUBLE_EQ(alpha_on[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(alpha_on[0].end_s, 10.0);
  EXPECT_DOUBLE_EQ(alpha_on[1].start_s, 18.0);
  EXPECT_DOUBLE_EQ(alpha_on[1].end_s, 22.0);
  ASSERT_EQ(beta.ignition.intervals().size(), 1U);
  EXPECT_DOUBLE_EQ(beta.ignition.intervals()[0].end_s, 22.0);
  ASSERT_EQ(gamma.ignition.intervals().size(), 1U);
  EXPECT_DOUBLE_EQ(gamma.ignition.intervals()[0].start_s, 4.0);
  EXPECT_DOUBLE_EQ(gamma.ignition.intervals()[0].end_s, 14.0);

  EXPECT_TRUE(fleet.is_on(0, 5.0));
  EXPECT_FALSE(fleet.is_on(0, 14.0));  // alpha parked mid-gap
  EXPECT_TRUE(fleet.is_on(0, 19.0));
}

TEST(FcdImport, DefaultThresholdKeepsOneInterval) {
  // The same silence is shorter than the default 30 s threshold: alpha
  // stays one ON run.
  const mobility::FleetModel fleet =
      mobility::load_fleet_fcd(golden_path("fcd_golden.xml"));
  ASSERT_EQ(fleet.vehicle(0).ignition.intervals().size(), 1U);
  EXPECT_DOUBLE_EQ(fleet.vehicle(0).ignition.intervals()[0].end_s, 22.0);
}

// ------------------------------------------------------------ rejection ---

void expect_fcd_error(const std::string& name, const std::string& xml,
                      const std::vector<std::string>& fragments) {
  const std::string path = write_tmp(name, xml);
  expect_load_error([&] { mobility::load_fleet_fcd(path); }, path, fragments);
  fs::remove(path);
}

TEST(FcdImport, RejectsMalformedXml) {
  expect_fcd_error("rr_fcd_root.xml", "<not-fcd>\n</not-fcd>\n",
                   {"expected <fcd-export> root element"});
  expect_fcd_error("rr_fcd_attr.xml",
                   "<fcd-export>\n<timestep time=\"0\">\n"
                   "<vehicle id=\"a\" x=\"1\"/>\n"
                   "</timestep>\n</fcd-export>\n",
                   {":3:", "needs id, x, and y attributes"});
  expect_fcd_error("rr_fcd_nan.xml",
                   "<fcd-export>\n<timestep time=\"0\">\n"
                   "<vehicle id=\"a\" x=\"nan\" y=\"2\"/>\n"
                   "</timestep>\n</fcd-export>\n",
                   {":3:", "must be finite"});
  expect_fcd_error("rr_fcd_inf.xml",
                   "<fcd-export>\n<timestep time=\"0\">\n"
                   "<vehicle id=\"a\" x=\"1\" y=\"inf\"/>\n"
                   "</timestep>\n</fcd-export>\n",
                   {"must be finite"});
  expect_fcd_error("rr_fcd_nonnum.xml",
                   "<fcd-export>\n<timestep time=\"0\">\n"
                   "<vehicle id=\"a\" x=\"east\" y=\"2\"/>\n"
                   "</timestep>\n</fcd-export>\n",
                   {"is not a number"});
  expect_fcd_error("rr_fcd_time.xml",
                   "<fcd-export>\n<timestep time=\"10\">\n"
                   "<vehicle id=\"a\" x=\"1\" y=\"2\"/>\n"
                   "</timestep>\n<timestep time=\"5\">\n"
                   "</timestep>\n</fcd-export>\n",
                   {"is not after the previous timestep"});
  expect_fcd_error("rr_fcd_dup.xml",
                   "<fcd-export>\n<timestep time=\"0\">\n"
                   "<vehicle id=\"a\" x=\"1\" y=\"2\"/>\n"
                   "<vehicle id=\"a\" x=\"3\" y=\"4\"/>\n"
                   "</timestep>\n</fcd-export>\n",
                   {"appears twice in one timestep"});
  expect_fcd_error("rr_fcd_stray.xml",
                   "<fcd-export>\n</timestep>\n</fcd-export>\n",
                   {"stray </timestep>"});
  expect_fcd_error("rr_fcd_unclosed.xml",
                   "<fcd-export>\n<timestep time=\"0\">\n"
                   "<vehicle id=\"a\" x=\"1\" y=\"2\"/>\n",
                   {"unclosed <timestep> element"});
  expect_fcd_error("rr_fcd_element.xml",
                   "<fcd-export>\n<timestep time=\"0\">\n"
                   "<pedestrian id=\"p\"/>\n"
                   "</timestep>\n</fcd-export>\n",
                   {"unexpected element <pedestrian>"});
  expect_fcd_error("rr_fcd_empty.xml", "<fcd-export>\n</fcd-export>\n",
                   {"holds no timesteps"});
  EXPECT_THROW(mobility::load_fleet_fcd("/does/not/exist.xml"),
               std::runtime_error);
}

// ------------------------------------------------------------ geo mode ----

TEST(FcdImport, GeoProjectionRoundTrip) {
  // project/unproject are inverses at city scale around the reference.
  const mobility::GeoPoint ref = mobility::kGothenburgCenter;
  const mobility::GeoPoint p{57.7102, 11.9801};
  const mobility::Position planar = mobility::project(p, ref);
  const mobility::GeoPoint back = mobility::unproject(planar, ref);
  EXPECT_NEAR(back.latitude_deg, p.latitude_deg, 1e-9);
  EXPECT_NEAR(back.longitude_deg, p.longitude_deg, 1e-9);
  EXPECT_GT(planar.y, 0.0);  // north of the reference
  EXPECT_GT(planar.x, 0.0);  // east of the reference
}

TEST(FcdImport, GeoModeProjectsThroughTheReference) {
  // Geo exports carry x=longitude, y=latitude.
  const std::string path = write_tmp("rr_fcd_geo.xml", R"(<fcd-export>
<timestep time="0">
<vehicle id="a" x="11.9746" y="57.7089"/>
<vehicle id="b" x="11.9800" y="57.7100"/>
</timestep>
<timestep time="10">
<vehicle id="a" x="11.9750" y="57.7090"/>
<vehicle id="b" x="11.9804" y="57.7101"/>
</timestep>
</fcd-export>
)");
  mobility::FcdOptions options;
  options.geo = true;
  options.origin = mobility::kGothenburgCenter;
  const mobility::FleetModel fleet = mobility::load_fleet_fcd(path, options);
  ASSERT_EQ(fleet.vehicle_count(), 2U);
  // Vehicle a starts exactly on the reference point.
  EXPECT_NEAR(fleet.position_of(0, 0.0).x, 0.0, 1e-9);
  EXPECT_NEAR(fleet.position_of(0, 0.0).y, 0.0, 1e-9);
  const mobility::Position expect = mobility::project(
      mobility::GeoPoint{57.7100, 11.9800}, mobility::kGothenburgCenter);
  EXPECT_NEAR(fleet.position_of(1, 0.0).x, expect.x, 1e-9);
  EXPECT_NEAR(fleet.position_of(1, 0.0).y, expect.y, 1e-9);

  // Default origin = the first sample: vehicle a then sits at (0, 0).
  mobility::FcdOptions defaulted;
  defaulted.geo = true;
  const mobility::FleetModel anchored =
      mobility::load_fleet_fcd(path, defaulted);
  EXPECT_NEAR(anchored.position_of(0, 0.0).x, 0.0, 1e-9);
  EXPECT_NEAR(anchored.position_of(0, 0.0).y, 0.0, 1e-9);
  fs::remove(path);
}

// ------------------------------------------------------------ end-to-end --

TEST(FcdImport, CityFixtureDrivesAnExperiment) {
  // The committed city-scale export loads into a fleet and runs a full
  // federated experiment: FCD traces are a first-class mobility source.
  auto fleet = std::make_shared<mobility::FleetModel>(
      mobility::load_fleet_fcd(golden_path("fcd_city.xml")));
  ASSERT_EQ(fleet->vehicle_count(), 8U);
  EXPECT_DOUBLE_EQ(fleet->duration(), 600.0);
  for (std::size_t v = 0; v < 8; ++v) {
    // Every vehicle has its one parked window inferred from the silence.
    EXPECT_EQ(fleet->vehicle(v).ignition.intervals().size(), 2U)
        << "vehicle " << v;
  }

  scenario::ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.vehicles = 8;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 1200;
  cfg.test_size = 240;
  cfg.partition = "iid";
  cfg.samples_per_vehicle = 30;
  cfg.model = "logreg";
  cfg.external_fleet = fleet;
  cfg.horizon_s = 600.0;
  scenario::Scenario scenario{cfg};
  strategy::RoundConfig round;
  round.rounds = 4;
  round.participants = 3;
  round.round_duration_s = 60.0;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  EXPECT_GT(result.report.events_executed, 0U);
}

// ----------------------------------------------- CSV loader hardening -----

TEST(TraceFileHardening, NamesFileAndLineOnMalformedRows) {
  const std::string ignition =
      write_tmp("rr_csv_ok_ign.csv", "vehicle_id,start_s,end_s\n0,0,100\n");
  const std::string short_row = write_tmp(
      "rr_csv_short.csv", "vehicle_id,time_s,x_m,y_m\n0,0,10\n");
  expect_load_error(
      [&] { mobility::load_fleet_csv(short_row, ignition); }, short_row,
      {":2:", "traces row needs 4 fields"});

  const std::string bad_id = write_tmp(
      "rr_csv_badid.csv", "vehicle_id,time_s,x_m,y_m\n0,0,10,20\nX7,1,1,1\n");
  expect_load_error(
      [&] { mobility::load_fleet_csv(bad_id, ignition); }, bad_id,
      {":3:", "vehicle id 'X7' is not a whole number"});

  const std::string bad_num = write_tmp(
      "rr_csv_badnum.csv",
      "vehicle_id,time_s,x_m,y_m\n0,0,10,20\n0,five,1,1\n");
  expect_load_error(
      [&] { mobility::load_fleet_csv(bad_num, ignition); }, bad_num,
      {":3:", "'five' is not a number"});
  for (const auto& p : {ignition, short_row, bad_id, bad_num}) fs::remove(p);
}

TEST(TraceFileHardening, RejectsNonFiniteCoordinates) {
  const std::string ignition =
      write_tmp("rr_csv_fin_ign.csv", "vehicle_id,start_s,end_s\n0,0,100\n");
  for (const std::string bad : {"nan", "inf", "-inf"}) {
    const std::string traces = write_tmp(
        "rr_csv_nonfinite.csv",
        "vehicle_id,time_s,x_m,y_m\n0,0,10,20\n0,1," + bad + ",30\n");
    expect_load_error(
        [&] { mobility::load_fleet_csv(traces, ignition); }, traces,
        {":3:", "must be finite"});
    fs::remove(traces);
  }
  fs::remove(ignition);
}

TEST(TraceFileHardening, RejectsNonMonotoneIgnition) {
  const std::string traces = write_tmp(
      "rr_csv_mono_tr.csv", "vehicle_id,time_s,x_m,y_m\n0,0,10,20\n");
  // An interval that ends before (or at) its start names its row...
  const std::string backwards = write_tmp(
      "rr_csv_backwards.csv",
      "vehicle_id,start_s,end_s\n0,50,50\n");
  expect_load_error(
      [&] { mobility::load_fleet_csv(traces, backwards); }, backwards,
      {":2:", "must be after start"});
  // ...and overlapping intervals are rejected as a non-monotone schedule.
  const std::string overlap = write_tmp(
      "rr_csv_overlap.csv",
      "vehicle_id,start_s,end_s\n0,0,60\n0,40,90\n");
  expect_load_error(
      [&] { mobility::load_fleet_csv(traces, overlap); }, overlap,
      {"vehicle 0 has overlapping ignition intervals"});
  for (const auto& p : {traces, backwards, overlap}) fs::remove(p);
}

TEST(TraceFileHardening, WellFormedFilesStillLoad) {
  const std::string traces = write_tmp(
      "rr_csv_good_tr.csv",
      "vehicle_id,time_s,x_m,y_m\n0,0,10,20\n0,10,15,25\n1,0,0,0\n1,5,5,5\n");
  const std::string ignition = write_tmp(
      "rr_csv_good_ign.csv",
      "vehicle_id,start_s,end_s\n0,0,60\n0,80,100\n1,0,50\n");
  const mobility::FleetModel fleet =
      mobility::load_fleet_csv(traces, ignition);
  EXPECT_EQ(fleet.vehicle_count(), 2U);
  EXPECT_EQ(fleet.vehicle(0).ignition.intervals().size(), 2U);
  fs::remove(traces);
  fs::remove(ignition);
}

}  // namespace
}  // namespace roadrunner
