#include "ml/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace roadrunner::ml {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits{{2, 4}};  // all zeros -> uniform distribution
  const auto r = softmax_cross_entropy(logits, {1, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectPredictionLowLoss) {
  Tensor logits{{1, 3}, {10.0F, 0.0F, 0.0F}};
  const auto r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-3);
  EXPECT_EQ(r.correct, 1U);
}

TEST(SoftmaxCrossEntropy, ConfidentWrongPredictionHighLoss) {
  Tensor logits{{1, 3}, {10.0F, 0.0F, 0.0F}};
  const auto r = softmax_cross_entropy(logits, {2});
  EXPECT_GT(r.loss, 9.0);
  EXPECT_EQ(r.correct, 0U);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  util::Rng rng{1};
  Tensor logits{{3, 5}};
  roadrunner::testing::randomize(logits, rng, 2.0);
  const auto r = softmax_cross_entropy(logits, {0, 2, 4});
  for (std::size_t i = 0; i < 3; ++i) {
    double row_sum = 0;
    for (std::size_t j = 0; j < 5; ++j) row_sum += r.grad.at2(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  util::Rng rng{2};
  Tensor logits{{2, 4}};
  roadrunner::testing::randomize(logits, rng, 1.5);
  const std::vector<std::int32_t> labels{3, 1};
  const auto r = softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double numeric = roadrunner::testing::numerical_gradient(
        [&] { return softmax_cross_entropy(logits, labels).loss; },
        logits[i]);
    EXPECT_NEAR(r.grad[i], numeric, 1e-3) << "logit " << i;
  }
}

TEST(SoftmaxCrossEntropy, NumericallyStableForHugeLogits) {
  Tensor logits{{1, 3}, {1000.0F, 999.0F, -1000.0F}};
  const auto r = softmax_cross_entropy(logits, {0});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, std::log(1.0 + std::exp(-1.0)), 1e-4);
}

TEST(SoftmaxCrossEntropy, ValidatesInput) {
  Tensor logits{{2, 3}};
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, -1}), std::invalid_argument);
  Tensor rank1{{3}};
  EXPECT_THROW(softmax_cross_entropy(rank1, {0}), std::invalid_argument);
}

TEST(ArgmaxRows, PicksMaxima) {
  Tensor logits{{2, 3}, {1, 5, 2, 7, 0, 3}};
  const auto a = argmax_rows(logits);
  ASSERT_EQ(a.size(), 2U);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 0);
}

TEST(SoftmaxRows, RowsSumToOne) {
  util::Rng rng{3};
  Tensor logits{{4, 6}};
  roadrunner::testing::randomize(logits, rng, 3.0);
  const Tensor p = softmax_rows(logits);
  for (std::size_t i = 0; i < 4; ++i) {
    double sum = 0;
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_GE(p.at2(i, j), 0.0F);
      sum += p.at2(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

}  // namespace
}  // namespace roadrunner::ml
