// Strategy-level tests: each of the five learning strategies runs end-to-end
// on a miniature controlled scenario, and OPP's central claim — that a round
// with V2X-gathered contributions aggregates to exactly the flat FedAvg over
// every contributor (paper Fig. 3, step 7) — is verified on the live system.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "data/gaussian_blobs.hpp"
#include "ml/fedavg.hpp"
#include "ml/models.hpp"
#include "strategy/centralized.hpp"
#include "strategy/federated.hpp"
#include "strategy/gossip.hpp"
#include "strategy/opportunistic.hpp"
#include "strategy/rsu_assisted.hpp"

namespace roadrunner::strategy {
namespace {

using core::AgentId;
using core::MlService;
using core::Simulator;
using core::SimulatorConfig;
using mobility::IgnitionSchedule;
using mobility::Position;
using mobility::Trace;
using mobility::VehicleTrack;

/// A controlled world: `n` stationary, always-on vehicles in a row, 50 m
/// apart (all within the 200 m V2X range of their neighbours), each with a
/// disjoint slice of a blob dataset; lossless channels; logreg model.
struct MiniWorld {
  std::shared_ptr<mobility::FleetModel> fleet;
  std::shared_ptr<const ml::Dataset> dataset;
  std::unique_ptr<Simulator> sim;
  AgentId cloud{};
  std::vector<AgentId> vehicles;
  std::vector<mobility::NodeId> rsu_nodes;

  explicit MiniWorld(std::size_t n, double horizon, std::size_t rsus = 0,
                     std::uint64_t seed = 11, double spacing = 50.0) {
    std::vector<VehicleTrack> tracks;
    for (std::size_t v = 0; v < n; ++v) {
      const Position p{spacing * static_cast<double>(v), 0.0};
      tracks.push_back({Trace{{{0.0, p}, {horizon + 1000.0, p}}},
                        IgnitionSchedule::always_on()});
    }
    fleet = std::make_shared<mobility::FleetModel>(std::move(tracks));
    for (std::size_t r = 0; r < rsus; ++r) {
      rsu_nodes.push_back(fleet->add_static_node(
          Position{spacing * static_cast<double>(r) + 10.0, 30.0}));
    }

    data::GaussianBlobConfig bc;
    bc.seed = seed;
    dataset = std::make_shared<ml::Dataset>(
        data::make_gaussian_blobs(40 * n + 200, bc));

    ml::Network proto = ml::make_logreg(16, 4);
    util::Rng rng{seed};
    ml::prime_and_init(proto, {16}, rng);
    // Last 200 samples form the test set.
    std::vector<std::uint32_t> test_idx;
    for (std::size_t i = 40 * n; i < 40 * n + 200; ++i) {
      test_idx.push_back(static_cast<std::uint32_t>(i));
    }
    MlService ml_service{proto, ml::DatasetView{dataset, test_idx}};

    comm::Network::Config net;
    net.v2c.loss_probability = 0.0;
    net.v2x.loss_probability = 0.0;

    SimulatorConfig cfg;
    cfg.horizon_s = horizon;
    cfg.seed = seed;
    sim = std::make_unique<Simulator>(*fleet, net, std::move(ml_service),
                                      cfg);
    cloud = sim->add_cloud();
    for (std::size_t v = 0; v < n; ++v) {
      std::vector<std::uint32_t> idx;
      for (std::size_t i = 40 * v; i < 40 * (v + 1); ++i) {
        idx.push_back(static_cast<std::uint32_t>(i));
      }
      vehicles.push_back(
          sim->add_vehicle(v, ml::DatasetView{dataset, std::move(idx)}));
    }
    for (mobility::NodeId node : rsu_nodes) sim->add_rsu(node);
  }
};

// ------------------------------------------------------------- federated --

TEST(FederatedStrategy, CompletesRoundsAndLearns) {
  MiniWorld world{6, 4000.0};
  RoundConfig cfg;
  cfg.rounds = 8;
  cfg.participants = 3;
  cfg.round_duration_s = 30.0;
  auto fl = std::make_shared<FederatedStrategy>(cfg);
  world.sim->set_strategy(fl);
  const auto report = world.sim->run();

  const auto& metrics = world.sim->metrics_view();
  EXPECT_TRUE(report.stopped_by_strategy);
  EXPECT_DOUBLE_EQ(metrics.counter("rounds_completed"), 8.0);
  const auto& acc = metrics.series("accuracy");
  ASSERT_EQ(acc.size(), 9U);  // initial + one per round
  EXPECT_GT(acc.back().value, acc.front().value);
  EXPECT_GT(acc.back().value, 0.5);  // blobs + logreg learn quickly
  // Contributions never exceed the participant cap.
  for (const auto& p : metrics.series("contributions_per_round")) {
    EXPECT_LE(p.value, 3.0);
    EXPECT_GE(p.value, 1.0);
  }
}

TEST(FederatedStrategy, UsesOnlyV2c) {
  MiniWorld world{4, 2000.0};
  RoundConfig cfg;
  cfg.rounds = 3;
  cfg.participants = 2;
  world.sim->set_strategy(std::make_shared<FederatedStrategy>(cfg));
  world.sim->run();
  EXPECT_GT(world.sim->network().stats(comm::ChannelKind::kV2C)
                .bytes_delivered,
            0U);
  EXPECT_EQ(world.sim->network().stats(comm::ChannelKind::kV2X)
                .bytes_delivered,
            0U);
}

TEST(RoundConfigValidation, RejectsBadValues) {
  RoundConfig cfg;
  cfg.rounds = 0;
  EXPECT_THROW(FederatedStrategy{cfg}, std::invalid_argument);
  cfg = RoundConfig{};
  cfg.participants = 0;
  EXPECT_THROW(FederatedStrategy{cfg}, std::invalid_argument);
  cfg = RoundConfig{};
  cfg.round_duration_s = 0.0;
  EXPECT_THROW(FederatedStrategy{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------- opportunistic --

TEST(OpportunisticStrategy, RoundAggregateEqualsFlatFedAvg) {
  // Paper Fig. 3 step 7: with one reporter and two in-range non-reporters,
  // the post-round global model must equal the flat FedAvg of all three
  // vehicles' retrained models. Every vehicle's own model still holds its
  // retrained weights at round end, so the expectation is reconstructible.
  MiniWorld world{3, 10000.0};
  OpportunisticConfig cfg;
  cfg.round.rounds = 1;
  cfg.round.participants = 1;
  cfg.round.round_duration_s = 60.0;
  cfg.round.collect_timeout_s = 30.0;
  auto opp = std::make_shared<OpportunisticStrategy>(cfg);
  world.sim->set_strategy(opp);
  world.sim->run();

  EXPECT_EQ(opp->total_exchanges(), 2U);

  std::vector<ml::WeightedModel> contributions;
  double total_data = 0.0;
  for (AgentId v : world.vehicles) {
    const auto& agent = world.sim->agent(v);
    ASSERT_FALSE(agent.model.empty());
    ASSERT_GT(agent.model_data_amount, 0.0);
    contributions.push_back(
        ml::WeightedModel{agent.model, agent.model_data_amount});
    total_data += agent.model_data_amount;
  }
  const ml::WeightedModel expected = ml::fed_avg(contributions);
  const auto& global = world.sim->agent(world.cloud).model;
  ASSERT_EQ(global.size(), expected.weights.size());
  for (std::size_t t = 0; t < global.size(); ++t) {
    ASSERT_TRUE(global[t].same_shape(expected.weights[t]));
    for (std::size_t i = 0; i < global[t].size(); ++i) {
      ASSERT_NEAR(global[t][i], expected.weights[t][i], 1e-5)
          << "tensor " << t << " elem " << i;
    }
  }
  // The FA weighting must carry the full fleet's data amount once each.
  EXPECT_DOUBLE_EQ(world.sim->agent(world.cloud).model_data_amount,
                   total_data);
}

TEST(OpportunisticStrategy, VehicleContributesAtMostOncePerRound) {
  // Two reporters flanking one non-reporter: its data must enter exactly
  // one reporter's aggregate.
  MiniWorld world{3, 10000.0};
  OpportunisticConfig cfg;
  cfg.round.rounds = 1;
  cfg.round.participants = 2;
  cfg.round.round_duration_s = 60.0;
  auto opp = std::make_shared<OpportunisticStrategy>(cfg);
  world.sim->set_strategy(opp);
  world.sim->run();
  EXPECT_EQ(opp->total_exchanges(), 1U);
  EXPECT_DOUBLE_EQ(world.sim->agent(world.cloud).model_data_amount, 120.0);
}

TEST(OpportunisticStrategy, UsesV2xForExchanges) {
  MiniWorld world{4, 10000.0};
  OpportunisticConfig cfg;
  cfg.round.rounds = 2;
  cfg.round.participants = 1;
  cfg.round.round_duration_s = 60.0;
  auto opp = std::make_shared<OpportunisticStrategy>(cfg);
  world.sim->set_strategy(opp);
  world.sim->run();
  EXPECT_GT(opp->total_exchanges(), 0U);
  EXPECT_GT(world.sim->network().stats(comm::ChannelKind::kV2X)
                .bytes_delivered,
            0U);
  // The exchanges series matches the counter.
  double bar_sum = 0.0;
  for (const auto& p :
       world.sim->metrics_view().series("v2x_exchanges_per_round")) {
    bar_sum += p.value;
  }
  EXPECT_DOUBLE_EQ(bar_sum,
                   static_cast<double>(opp->total_exchanges()));
}

TEST(OpportunisticStrategy, NoExchangesWhenOutOfRange) {
  // Vehicles 5 km apart: no V2X possible -> OPP degrades to plain FL.
  MiniWorld world{3, 10000.0, 0, 11, /*spacing=*/5000.0};
  OpportunisticConfig cfg;
  cfg.round.rounds = 2;
  cfg.round.participants = 1;
  cfg.round.round_duration_s = 60.0;
  auto opp = std::make_shared<OpportunisticStrategy>(cfg);
  world.sim->set_strategy(opp);
  world.sim->run();
  EXPECT_EQ(opp->total_exchanges(), 0U);
  EXPECT_EQ(world.sim->network().stats(comm::ChannelKind::kV2X)
                .bytes_attempted,
            0U);
}

// ----------------------------------------------------------------- gossip --

TEST(GossipStrategy, MergesAndLearnsWithoutCloud) {
  MiniWorld world{5, 2500.0};
  GossipConfig cfg;
  cfg.retrain_interval_s = 100.0;
  cfg.eval_interval_s = 500.0;
  cfg.duration_s = 2400.0;
  auto gossip = std::make_shared<GossipStrategy>(cfg);
  world.sim->set_strategy(gossip);
  world.sim->run();

  EXPECT_GT(gossip->total_merges(), 0U);
  const auto& acc = world.sim->metrics_view().series("accuracy");
  ASSERT_GE(acc.size(), 2U);
  EXPECT_GT(acc.back().value, 0.5);
  // Fully decentralized: zero V2C traffic.
  EXPECT_EQ(world.sim->network().stats(comm::ChannelKind::kV2C)
                .bytes_attempted,
            0U);
  EXPECT_GT(world.sim->network().stats(comm::ChannelKind::kV2X)
                .bytes_delivered,
            0U);
}

TEST(GossipStrategy, ValidatesConfig) {
  GossipConfig cfg;
  cfg.merge_weight = 0.0;
  EXPECT_THROW(GossipStrategy{cfg}, std::invalid_argument);
  cfg = GossipConfig{};
  cfg.retrain_interval_s = 0.0;
  EXPECT_THROW(GossipStrategy{cfg}, std::invalid_argument);
}

// ------------------------------------------------------------ centralized --

TEST(CentralizedStrategy, UploadsRawDataAndTrainsOnServer) {
  MiniWorld world{4, 1500.0};
  CentralizedConfig cfg;
  cfg.train_interval_s = 100.0;
  cfg.duration_s = 1400.0;
  auto central = std::make_shared<CentralizedStrategy>(cfg);
  world.sim->set_strategy(central);
  world.sim->run();

  EXPECT_EQ(central->uploads_completed(), 4U);
  // The server ends up owning all vehicles' data.
  EXPECT_EQ(world.sim->agent(world.cloud).data.size(), 160U);
  const auto& acc = world.sim->metrics_view().series("accuracy");
  EXPECT_GT(acc.back().value, 0.5);
  // Raw-data upload dwarfs a model: 40 samples x 16 floats each per car.
  const auto v2c = world.sim->network().stats(comm::ChannelKind::kV2C);
  EXPECT_GE(v2c.bytes_delivered, 4U * 40 * 16 * sizeof(float));
}

// ----------------------------------------------------------- rsu assisted --

TEST(RsuAssistedStrategy, RelaysThroughRsusAndSavesV2c) {
  // RSUs sit within range of every vehicle, so every contribution should
  // take the V2X+wired path and uplink V2C bytes stay at control size.
  MiniWorld world{4, 4000.0, /*rsus=*/4};
  RsuAssistedConfig cfg;
  cfg.round.rounds = 4;
  cfg.round.participants = 2;
  cfg.round.round_duration_s = 40.0;
  auto rsu = std::make_shared<RsuAssistedStrategy>(cfg);
  world.sim->set_strategy(rsu);
  world.sim->run();

  EXPECT_GT(rsu->rsu_relayed(), 0U);
  EXPECT_GT(world.sim->network().stats(comm::ChannelKind::kWired)
                .bytes_delivered,
            0U);
  const auto& metrics = world.sim->metrics_view();
  EXPECT_DOUBLE_EQ(metrics.counter("rounds_completed"), 4.0);
  EXPECT_GT(metrics.series("accuracy").back().value, 0.4);

  // Compare V2C volume against plain FL on the identical world.
  MiniWorld world2{4, 4000.0, /*rsus=*/4};
  RoundConfig fl_cfg = cfg.round;
  world2.sim->set_strategy(std::make_shared<FederatedStrategy>(fl_cfg));
  world2.sim->run();
  EXPECT_LT(world.sim->network().stats(comm::ChannelKind::kV2C)
                .bytes_delivered,
            world2.sim->network().stats(comm::ChannelKind::kV2C)
                .bytes_delivered);
}

}  // namespace
}  // namespace roadrunner::strategy
