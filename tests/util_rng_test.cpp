#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace roadrunner::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng{7};
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(n), n);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng{7};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0U);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng{7};
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng{99};
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.05 * kDraws / kBuckets);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, UniformIntBadRangeThrows) {
  Rng rng{5};
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{13};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndRange) {
  Rng rng{17};
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.uniform(2.0, 6.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 6.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000, 4.0, 0.03);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{19};
  double sum = 0, sum2 = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.08);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{23};
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.exponential(0.5);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 2.0, 0.05);
}

TEST(Rng, ExponentialBadRateThrows) {
  Rng rng{23};
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{29};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{31};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{37};
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng{37};
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -0.5}), std::invalid_argument);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng{41};
  for (double shape : {0.3, 1.0, 2.5, 10.0}) {
    double sum = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) {
      const double v = rng.gamma(shape);
      ASSERT_GT(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum / kDraws, shape, 0.06 * std::max(1.0, shape))
        << "shape=" << shape;
  }
}

TEST(Rng, GammaBadShapeThrows) {
  Rng rng{41};
  EXPECT_THROW(rng.gamma(0.0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{43};
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng{47};
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(picks.size(), 7U);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 7U);
    for (std::size_t p : picks) EXPECT_LT(p, 20U);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng{47};
  const auto picks = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5U);
}

TEST(Rng, SampleWithoutReplacementTooManyThrows) {
  Rng rng{47};
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ForkIsStable) {
  Rng a{55}, b{55};
  Rng fa = a.fork("mobility");
  Rng fb = b.fork("mobility");
  for (int i = 0; i < 100; ++i) ASSERT_EQ(fa.next(), fb.next());
}

TEST(Rng, ForksWithDifferentTagsAreIndependent) {
  Rng root{55};
  Rng f1 = root.fork("alpha");
  Rng f2 = root.fork("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.next() == f2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a{55};
  Rng b{55};
  (void)a.fork("child");
  for (int i = 0; i < 20; ++i) ASSERT_EQ(a.next(), b.next());
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformDrawsStayInBoundsAndVary) {
  Rng rng{GetParam()};
  std::set<std::uint64_t> values;
  for (int i = 0; i < 256; ++i) values.insert(rng.next());
  EXPECT_GT(values.size(), 250U);  // no visible cycles or stuck state
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xFFFFFFFFULL,
                                           0xDEADBEEFDEADBEEFULL));

}  // namespace
}  // namespace roadrunner::util
