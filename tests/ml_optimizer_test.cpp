#include "ml/optimizer.hpp"

#include <gtest/gtest.h>

namespace roadrunner::ml {
namespace {

TEST(SgdMomentum, PlainSgdStep) {
  SgdMomentum opt{0.1F, 0.0F};
  Tensor p{{2}, {1.0F, 2.0F}};
  Tensor g{{2}, {10.0F, -10.0F}};
  opt.step({&p}, {&g});
  EXPECT_FLOAT_EQ(p[0], 0.0F);
  EXPECT_FLOAT_EQ(p[1], 3.0F);
}

TEST(SgdMomentum, MomentumAccumulates) {
  SgdMomentum opt{1.0F, 0.5F};
  Tensor p{{1}, {0.0F}};
  Tensor g{{1}, {1.0F}};
  opt.step({&p}, {&g});  // v=1, p=-1
  EXPECT_FLOAT_EQ(p[0], -1.0F);
  opt.step({&p}, {&g});  // v=1.5, p=-2.5
  EXPECT_FLOAT_EQ(p[0], -2.5F);
  opt.step({&p}, {&g});  // v=1.75, p=-4.25
  EXPECT_FLOAT_EQ(p[0], -4.25F);
}

TEST(SgdMomentum, ResetClearsVelocity) {
  SgdMomentum opt{1.0F, 0.9F};
  Tensor p{{1}, {0.0F}};
  Tensor g{{1}, {1.0F}};
  opt.step({&p}, {&g});
  opt.reset();
  p[0] = 0.0F;
  opt.step({&p}, {&g});
  EXPECT_FLOAT_EQ(p[0], -1.0F);  // no leftover velocity
}

TEST(SgdMomentum, WeightDecayAddsL2Pull) {
  SgdMomentum opt{1.0F, 0.0F, 0.1F};
  Tensor p{{1}, {10.0F}};
  Tensor g{{1}, {0.0F}};
  opt.step({&p}, {&g});
  EXPECT_FLOAT_EQ(p[0], 9.0F);  // p -= lr * (0 + 0.1 * 10)
}

TEST(SgdMomentum, ValidatesConstruction) {
  EXPECT_THROW((SgdMomentum{0.0F}), std::invalid_argument);
  EXPECT_THROW((SgdMomentum{0.1F, 1.0F}), std::invalid_argument);
  EXPECT_THROW((SgdMomentum{0.1F, -0.1F}), std::invalid_argument);
  EXPECT_THROW((SgdMomentum{0.1F, 0.9F, -1.0F}), std::invalid_argument);
}

TEST(SgdMomentum, ValidatesStepArguments) {
  SgdMomentum opt{0.1F};
  Tensor p{{2}};
  Tensor g{{2}};
  Tensor wrong{{3}};
  EXPECT_THROW(opt.step({&p}, {}), std::invalid_argument);
  EXPECT_THROW(opt.step({&p}, {&wrong}), std::invalid_argument);
  // Changing the parameter list between steps is a logic error.
  opt.step({&p}, {&g});
  Tensor q{{2}};
  EXPECT_THROW(opt.step({&p, &q}, {&g, &g}), std::logic_error);
}

TEST(SgdMomentum, LearningRateMutable) {
  SgdMomentum opt{0.1F};
  opt.set_learning_rate(0.5F);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.5F);
  EXPECT_THROW(opt.set_learning_rate(0.0F), std::invalid_argument);
}

}  // namespace
}  // namespace roadrunner::ml
