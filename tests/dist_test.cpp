// Tests for the distributed campaign service: wire-protocol round trips
// (doubles must survive bit-exactly — the §10.4 determinism contract across
// process boundaries), endpoint parsing, shard-store merging under dirty
// inputs, and the coordinator/worker loop itself over loopback TCP —
// including the headline guarantee that a multi-worker distributed run
// produces records and an aggregate CSV byte-identical to the in-process
// engine, and the failure paths: requeue after a worker vanishes
// mid-job, at-most-once merge of duplicate results, and the requeue cap
// on deterministically failing jobs.
#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "campaign/spec.hpp"
#include "campaign/store.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "util/socket.hpp"

namespace roadrunner {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& tag) {
  const auto dir = fs::path{::testing::TempDir()} / ("rr_dist_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

campaign::JobRecord make_record(const std::string& hash,
                                std::size_t point_index,
                                std::size_t seed_index) {
  campaign::JobRecord record;
  record.hash = hash;
  record.point_index = point_index;
  record.seed_index = seed_index;
  record.seed = 1000 + point_index * 10 + seed_index;
  record.point_label = "p" + std::to_string(point_index);
  record.strategy_name = "federated";
  record.wall_seconds = 0.25;
  record.metrics = {{"final_accuracy", 0.5 + 0.001 * seed_index},
                    {"rounds_completed", 2.0}};
  return record;
}

/// Small, fast campaign shared by the loopback tests: 2 points x 2 seeds
/// on a 8-vehicle logreg problem (a few hundred ms per job).
campaign::CampaignSpec loopback_spec() {
  campaign::CampaignSpec spec;
  spec.name = "dist_loopback";
  spec.base = util::IniFile::parse(R"(
[scenario]
vehicles = 8
horizon_s = 900
[city]
duration_s = 900
[data]
dataset = blobs
train_pool = 400
test_size = 80
partition = iid
samples_per_vehicle = 20
[train]
model = logreg
epochs = 1
[strategy]
name = federated
rounds = 2
participants = 3
round_duration_s = 30
)");
  spec.grid = {{"strategy", "participants", {"2", "3"}}};
  spec.seeds_per_point = 2;
  spec.base_seed = 41;
  return spec;
}

/// Serializes records for bit-exact comparison. `wall_seconds` is host
/// wall-clock — explicitly outside the determinism contract — so it is
/// zeroed before encoding; every other field (including every metric
/// double) must match bit-for-bit.
std::string records_bytes(const std::vector<campaign::JobRecord>& records) {
  std::string out;
  for (campaign::JobRecord record : records) {
    record.wall_seconds = 0.0;
    dist::encode_record(record, out);
  }
  return out;
}

// ---- endpoint parsing -----------------------------------------------------

TEST(DistProtocol, ParsesEndpoints) {
  EXPECT_EQ(dist::parse_endpoint("9000"),
            (std::pair<std::string, std::uint16_t>{"127.0.0.1", 9000}));
  EXPECT_EQ(dist::parse_endpoint(":9000"),
            (std::pair<std::string, std::uint16_t>{"127.0.0.1", 9000}));
  EXPECT_EQ(dist::parse_endpoint("10.0.0.7:80"),
            (std::pair<std::string, std::uint16_t>{"10.0.0.7", 80}));
  EXPECT_EQ(dist::parse_endpoint("65535"),
            (std::pair<std::string, std::uint16_t>{"127.0.0.1", 65535}));
  // Port 0 is only valid where an ephemeral bind makes sense (--serve=:0).
  EXPECT_EQ(dist::parse_endpoint(":0", "127.0.0.1", true),
            (std::pair<std::string, std::uint16_t>{"127.0.0.1", 0}));
}

TEST(DistProtocol, RejectsBadEndpoints) {
  EXPECT_THROW(dist::parse_endpoint(""), std::invalid_argument);
  EXPECT_THROW(dist::parse_endpoint("host:"), std::invalid_argument);
  EXPECT_THROW(dist::parse_endpoint("host:abc"), std::invalid_argument);
  EXPECT_THROW(dist::parse_endpoint("0"), std::invalid_argument);
  EXPECT_THROW(dist::parse_endpoint("65536"), std::invalid_argument);
  EXPECT_THROW(dist::parse_endpoint("host:12x"), std::invalid_argument);
}

// ---- payload round trips --------------------------------------------------

TEST(DistProtocol, MessageRoundTrips) {
  const dist::Hello hello{7, "worker-3"};
  const dist::Hello hello2 = dist::decode_hello(dist::encode_hello(hello));
  EXPECT_EQ(hello2.version, 7U);
  EXPECT_EQ(hello2.worker_name, "worker-3");

  dist::Welcome welcome;
  welcome.campaign_name = "sweep";
  welcome.total_jobs = 42;
  welcome.checkpoint_every_s = 0.1;  // not exactly representable: bit test
  const dist::Welcome welcome2 =
      dist::decode_welcome(dist::encode_welcome(welcome));
  EXPECT_EQ(welcome2.campaign_name, "sweep");
  EXPECT_EQ(welcome2.total_jobs, 42U);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(welcome2.checkpoint_every_s),
            std::bit_cast<std::uint64_t>(0.1));

  dist::JobAssign assign;
  assign.job_index = 3;
  assign.hash = "00ff00ff00ff00ff";
  assign.point_index = 1;
  assign.seed_index = 2;
  assign.seed = 0xDEADBEEFULL;
  assign.point_label = "vehicles=50";
  assign.experiment_text = "[scenario]\nseed = 9\n";
  const dist::JobAssign assign2 =
      dist::decode_job_assign(dist::encode_job_assign(assign));
  EXPECT_EQ(assign2.job_index, 3U);
  EXPECT_EQ(assign2.hash, assign.hash);
  EXPECT_EQ(assign2.seed, assign.seed);
  EXPECT_EQ(assign2.experiment_text, assign.experiment_text);

  EXPECT_EQ(dist::decode_no_work(dist::encode_no_work({123})).retry_ms, 123U);
  EXPECT_TRUE(dist::decode_result_ack(dist::encode_result_ack({true})).accepted);
  EXPECT_FALSE(
      dist::decode_result_ack(dist::encode_result_ack({false})).accepted);
  EXPECT_EQ(dist::decode_heartbeat(dist::encode_heartbeat({9})).job_index, 9U);
  EXPECT_EQ(dist::decode_shutdown(dist::encode_shutdown({"done"})).reason,
            "done");
}

TEST(DistProtocol, RecordsSurviveTheWireBitExactly) {
  campaign::JobRecord record = make_record("a1b2c3d4e5f60718", 2, 1);
  // Values chosen to be hostile to text formatting: a subnormal, a
  // negative zero, and an irrational-ish accumulation result.
  record.metrics = {{"subnormal", 4.9406564584124654e-324},
                    {"neg_zero", -0.0},
                    {"third", 1.0 / 3.0}};
  std::string bytes;
  dist::encode_record(record, bytes);
  const campaign::JobRecord back = dist::decode_record(bytes);
  ASSERT_EQ(back.metrics.size(), record.metrics.size());
  for (std::size_t i = 0; i < record.metrics.size(); ++i) {
    EXPECT_EQ(back.metrics[i].first, record.metrics[i].first);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.metrics[i].second),
              std::bit_cast<std::uint64_t>(record.metrics[i].second));
  }
  EXPECT_EQ(back.hash, record.hash);
  EXPECT_EQ(back.point_label, record.point_label);
  EXPECT_EQ(back.seed, record.seed);

  dist::JobResultMsg msg;
  msg.job_index = 17;
  msg.record = record;
  const dist::JobResultMsg msg2 =
      dist::decode_job_result(dist::encode_job_result(msg));
  EXPECT_EQ(msg2.job_index, 17U);
  EXPECT_EQ(msg2.record.hash, record.hash);
}

TEST(DistProtocol, TruncatedPayloadThrows) {
  const std::string payload = dist::encode_hello({1, "worker"});
  EXPECT_THROW(dist::decode_hello(payload.substr(0, payload.size() - 2)),
               std::runtime_error);
}

// ---- framing over a real socket -------------------------------------------

TEST(DistProtocol, FramesTravelOverLoopback) {
  util::Listener listener{"127.0.0.1", 0};
  util::Socket client = util::Socket::connect_to("127.0.0.1", listener.port());
  auto server = listener.accept(2000);
  ASSERT_TRUE(server.has_value());

  ASSERT_TRUE(dist::send_frame(client, dist::MsgType::kHello,
                               dist::encode_hello({1, "w"})));
  ASSERT_TRUE(dist::send_frame(client, dist::MsgType::kJobRequest, {}));
  auto f1 = dist::recv_frame(*server, 2000);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, dist::MsgType::kHello);
  EXPECT_EQ(dist::decode_hello(f1->payload).worker_name, "w");
  auto f2 = dist::recv_frame(*server, 2000);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, dist::MsgType::kJobRequest);
  EXPECT_TRUE(f2->payload.empty());

  client.close();
  EXPECT_FALSE(dist::recv_frame(*server, 2000).has_value());  // clean EOF
}

TEST(DistProtocol, OversizedFrameIsRejectedBeforeAllocation) {
  util::Listener listener{"127.0.0.1", 0};
  util::Socket client = util::Socket::connect_to("127.0.0.1", listener.port());
  auto server = listener.accept(2000);
  ASSERT_TRUE(server.has_value());

  // Hand-crafted header claiming a 1 GiB payload.
  const std::uint32_t length = 1U << 30;
  unsigned char header[5];
  std::memcpy(header, &length, 4);
  header[4] = static_cast<unsigned char>(dist::MsgType::kHello);
  ASSERT_TRUE(client.send_all(header, sizeof header));
  EXPECT_THROW(dist::recv_frame(*server, 2000), std::runtime_error);
}

TEST(DistProtocol, MidFrameEofThrows) {
  util::Listener listener{"127.0.0.1", 0};
  util::Socket client = util::Socket::connect_to("127.0.0.1", listener.port());
  auto server = listener.accept(2000);
  ASSERT_TRUE(server.has_value());

  const std::uint32_t length = 64;  // promise 64 bytes, deliver none
  unsigned char header[5];
  std::memcpy(header, &length, 4);
  header[4] = static_cast<unsigned char>(dist::MsgType::kHello);
  ASSERT_TRUE(client.send_all(header, sizeof header));
  client.close();
  EXPECT_THROW(dist::recv_frame(*server, 2000), std::runtime_error);
}

// ---- shard merging under dirty inputs -------------------------------------

TEST(ResultStoreMerge, MissingShardYieldsEmptyStats) {
  campaign::ResultStore store{temp_dir("merge_missing")};
  const auto stats = store.merge_from("/no/such/shard");
  EXPECT_EQ(stats.merged, 0U);
  EXPECT_EQ(stats.duplicates, 0U);
  EXPECT_EQ(stats.corrupt, 0U);
  EXPECT_EQ(stats.skipped, 0U);
}

TEST(ResultStoreMerge, DirtyShardsMergeToOneCanonicalAggregate) {
  const std::string canon_dir = temp_dir("merge_canon");
  const std::string shard_a = temp_dir("merge_shard_a");
  const std::string shard_b = temp_dir("merge_shard_b");
  campaign::ResultStore canon{canon_dir};
  campaign::ResultStore a{shard_a};
  campaign::ResultStore b{shard_b};

  // Canonical store already holds job 0 (say, from a resumed coordinator).
  canon.save(make_record("hash000000000000", 0, 0));

  // Shard A: a duplicate of job 0 (requeue race) plus a fresh job 1.
  a.save(make_record("hash000000000000", 0, 0));
  a.save(make_record("hash000000000001", 0, 1));
  // Shard A also has a half-written record (kill mid-save) and a stray file.
  std::ofstream{fs::path{shard_a} / "hashdead0000beef.csv.tmp"}
      << "field,name,value\nmeta,hash,hashdead";
  std::ofstream{fs::path{shard_a} / "notes.txt"} << "scratch";

  // Shard B: fresh job 2 plus a corrupt record (truncated payload) and a
  // hash-mismatched record (bit rot / wrong rename).
  b.save(make_record("hash000000000002", 1, 0));
  std::ofstream{fs::path{shard_b} / "hashbad000000001.csv"}
      << "field,name,value\nmeta,hash,hashbad000000001\nmetric,acc,not_a_num";
  std::ofstream{fs::path{shard_b} / "hashbad000000002.csv"}
      << "field,name,value\nmeta,hash,EXPECTED_SOMETHING_ELSE";

  // Out-of-order arrival: B lands before A.
  const auto stats_b = canon.merge_from(shard_b);
  EXPECT_EQ(stats_b.merged, 1U);
  EXPECT_EQ(stats_b.corrupt, 2U);
  const auto stats_a = canon.merge_from(shard_a);
  EXPECT_EQ(stats_a.merged, 1U);
  EXPECT_EQ(stats_a.duplicates, 1U);
  EXPECT_EQ(stats_a.skipped, 2U);  // .tmp + notes.txt
  EXPECT_EQ(stats_a.corrupt, 0U);

  // One canonical aggregate: exactly jobs 0..2, each present once.
  const auto records = canon.load_all();
  ASSERT_EQ(records.size(), 3U);
  EXPECT_EQ(records[0].hash, "hash000000000000");
  EXPECT_EQ(records[1].hash, "hash000000000001");
  EXPECT_EQ(records[2].hash, "hash000000000002");

  // Merging the same shards again is a no-op (idempotent).
  const auto again = canon.merge_from(shard_a);
  EXPECT_EQ(again.merged, 0U);
  EXPECT_EQ(again.duplicates, 2U);
  EXPECT_EQ(canon.load_all().size(), 3U);
}

// ---- coordinator/worker loopback ------------------------------------------

TEST(DistLoopback, MultiWorkerRunMatchesInProcessEngineByteForByte) {
  const campaign::CampaignSpec spec = loopback_spec();

  campaign::EngineOptions local;
  local.workers = 2;
  const campaign::CampaignResult reference =
      campaign::run_campaign(spec, local);

  dist::CoordinatorOptions copts;
  copts.host = "127.0.0.1";
  dist::Coordinator coordinator{spec, copts};
  const std::uint16_t port = coordinator.port();
  ASSERT_GT(port, 0);

  dist::CoordinatorResult result;
  std::thread serve_thread{[&] { result = coordinator.serve(); }};
  std::vector<dist::WorkerReport> reports{2};
  std::vector<std::thread> workers;
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([&, i] {
      try {
        dist::WorkerOptions wopts;
        wopts.host = "127.0.0.1";
        wopts.port = port;
        wopts.name = "w" + std::to_string(i);
        reports[static_cast<std::size_t>(i)] = dist::run_worker(wopts);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "worker " << i << " threw: " << e.what();
      }
    });
  }
  for (auto& t : workers) t.join();
  serve_thread.join();

  EXPECT_EQ(result.executed, reference.records.size());
  EXPECT_EQ(result.workers_seen, 2U);
  ASSERT_EQ(result.records.size(), reference.records.size());
  // Records identical bit-for-bit, in the same expansion order.
  EXPECT_EQ(records_bytes(result.records), records_bytes(reference.records));
  // And the analyst-facing artifact matches byte-for-byte too.
  std::ostringstream dist_csv, ref_csv;
  campaign::write_aggregate_csv(dist_csv,
                                campaign::summarize(result.records));
  campaign::write_aggregate_csv(ref_csv,
                                campaign::summarize(reference.records));
  EXPECT_EQ(dist_csv.str(), ref_csv.str());
  // Both workers shut down because the campaign completed.
  for (const auto& report : reports) {
    EXPECT_EQ(report.shutdown_reason, "campaign complete");
  }
  EXPECT_EQ(reports[0].results_accepted + reports[1].results_accepted,
            reference.records.size());
}

/// Raw protocol client that takes one job and abandons it.
dist::JobAssign take_job_and_vanish(std::uint16_t port) {
  util::Socket socket = util::Socket::connect_to("127.0.0.1", port);
  EXPECT_TRUE(dist::send_frame(socket, dist::MsgType::kHello,
                               dist::encode_hello({dist::kProtocolVersion,
                                                   "deserter"})));
  auto welcome = dist::recv_frame(socket, 5000);
  EXPECT_TRUE(welcome.has_value() &&
              welcome->type == dist::MsgType::kWelcome);
  EXPECT_TRUE(dist::send_frame(socket, dist::MsgType::kJobRequest, {}));
  auto frame = dist::recv_frame(socket, 5000);
  if (!frame.has_value() || frame->type != dist::MsgType::kJobAssign) {
    ADD_FAILURE() << "expected a JobAssign";
    return {};
  }
  return dist::decode_job_assign(frame->payload);
  // Socket closes here: the coordinator sees EOF and requeues.
}

TEST(DistLoopback, DisconnectedWorkersJobIsRequeuedAndFinishes) {
  campaign::CampaignSpec spec = loopback_spec();
  spec.grid.clear();
  spec.seeds_per_point = 2;  // 2 jobs total

  dist::CoordinatorOptions copts;
  copts.host = "127.0.0.1";
  dist::Coordinator coordinator{spec, copts};
  const std::uint16_t port = coordinator.port();

  dist::CoordinatorResult result;
  std::thread serve_thread{[&] { result = coordinator.serve(); }};

  // A client takes a job and dies without reporting.
  take_job_and_vanish(port);

  // A real worker then drains the whole campaign, including the
  // abandoned job.
  dist::WorkerOptions wopts;
  wopts.host = "127.0.0.1";
  wopts.port = port;
  wopts.name = "finisher";
  const dist::WorkerReport report = dist::run_worker(wopts);
  serve_thread.join();

  EXPECT_GE(result.requeued, 1U);
  EXPECT_EQ(result.executed, 2U);
  EXPECT_EQ(report.results_accepted, 2U);
  ASSERT_EQ(result.records.size(), 2U);
  for (const auto& record : result.records) {
    EXPECT_FALSE(record.hash.empty());
    EXPECT_FALSE(record.metrics.empty());
  }
}

TEST(DistLoopback, DuplicateResultsAreMergedAtMostOnce) {
  campaign::CampaignSpec spec = loopback_spec();
  spec.grid.clear();
  spec.seeds_per_point = 2;  // 2 jobs

  dist::CoordinatorOptions copts;
  copts.host = "127.0.0.1";
  dist::Coordinator coordinator{spec, copts};
  const std::uint16_t port = coordinator.port();

  dist::CoordinatorResult result;
  std::thread serve_thread{[&] { result = coordinator.serve(); }};

  // A raw client "runs" both jobs with fabricated records, sending the
  // first result twice.
  util::Socket socket = util::Socket::connect_to("127.0.0.1", port);
  ASSERT_TRUE(dist::send_frame(socket, dist::MsgType::kHello,
                               dist::encode_hello({dist::kProtocolVersion,
                                                   "dup"})));
  auto frame = dist::recv_frame(socket, 5000);
  ASSERT_TRUE(frame.has_value() && frame->type == dist::MsgType::kWelcome);

  for (int job = 0; job < 2; ++job) {
    ASSERT_TRUE(dist::send_frame(socket, dist::MsgType::kJobRequest, {}));
    frame = dist::recv_frame(socket, 5000);
    ASSERT_TRUE(frame.has_value() &&
                frame->type == dist::MsgType::kJobAssign);
    const dist::JobAssign assign = dist::decode_job_assign(frame->payload);

    dist::JobResultMsg msg;
    msg.job_index = assign.job_index;
    msg.record = make_record(assign.hash,
                             static_cast<std::size_t>(assign.point_index),
                             static_cast<std::size_t>(assign.seed_index));
    const int sends = job == 0 ? 2 : 1;
    for (int s = 0; s < sends; ++s) {
      ASSERT_TRUE(dist::send_frame(socket, dist::MsgType::kJobResult,
                                   dist::encode_job_result(msg)));
      frame = dist::recv_frame(socket, 5000);
      ASSERT_TRUE(frame.has_value() &&
                  frame->type == dist::MsgType::kResultAck);
      EXPECT_EQ(dist::decode_result_ack(frame->payload).accepted, s == 0);
    }
  }
  serve_thread.join();

  EXPECT_EQ(result.executed, 2U);
  EXPECT_EQ(result.duplicates, 1U);
  ASSERT_EQ(result.records.size(), 2U);
}

TEST(DistLoopback, MergedJobIsDiscardedFromPendingNotReassigned) {
  campaign::CampaignSpec spec = loopback_spec();
  spec.grid.clear();
  spec.seeds_per_point = 2;  // 2 jobs

  dist::CoordinatorOptions copts;
  copts.host = "127.0.0.1";
  dist::Coordinator coordinator{spec, copts};
  const std::uint16_t port = coordinator.port();

  dist::CoordinatorResult result;
  std::thread serve_thread{[&] { result = coordinator.serve(); }};

  // A deserter takes job A and vanishes: A is requeued to the front of the
  // pending queue.
  const dist::JobAssign abandoned = take_job_and_vanish(port);

  // A second client reports job A's result without holding an assignment
  // (the protocol allows it — e.g. a shard replay). The record matches the
  // job hash, so it merges while A's requeued entry still sits in pending.
  util::Socket socket = util::Socket::connect_to("127.0.0.1", port);
  ASSERT_TRUE(dist::send_frame(socket, dist::MsgType::kHello,
                               dist::encode_hello({dist::kProtocolVersion,
                                                   "late"})));
  auto frame = dist::recv_frame(socket, 5000);
  ASSERT_TRUE(frame.has_value() && frame->type == dist::MsgType::kWelcome);

  dist::JobResultMsg msg;
  msg.job_index = abandoned.job_index;
  msg.record = make_record(abandoned.hash,
                           static_cast<std::size_t>(abandoned.point_index),
                           static_cast<std::size_t>(abandoned.seed_index));
  ASSERT_TRUE(dist::send_frame(socket, dist::MsgType::kJobResult,
                               dist::encode_job_result(msg)));
  frame = dist::recv_frame(socket, 5000);
  ASSERT_TRUE(frame.has_value() && frame->type == dist::MsgType::kResultAck);
  EXPECT_TRUE(dist::decode_result_ack(frame->payload).accepted);

  // The stale pending entry for job A must be discarded on the next
  // request, not handed out for a full (wasted) re-run: the client gets
  // the other job.
  ASSERT_TRUE(dist::send_frame(socket, dist::MsgType::kJobRequest, {}));
  frame = dist::recv_frame(socket, 5000);
  ASSERT_TRUE(frame.has_value() && frame->type == dist::MsgType::kJobAssign);
  const dist::JobAssign next = dist::decode_job_assign(frame->payload);
  EXPECT_NE(next.job_index, abandoned.job_index);
  EXPECT_NE(next.hash, abandoned.hash);

  msg.job_index = next.job_index;
  msg.record = make_record(next.hash,
                           static_cast<std::size_t>(next.point_index),
                           static_cast<std::size_t>(next.seed_index));
  ASSERT_TRUE(dist::send_frame(socket, dist::MsgType::kJobResult,
                               dist::encode_job_result(msg)));
  frame = dist::recv_frame(socket, 5000);
  ASSERT_TRUE(frame.has_value() && frame->type == dist::MsgType::kResultAck);
  EXPECT_TRUE(dist::decode_result_ack(frame->payload).accepted);
  serve_thread.join();

  EXPECT_EQ(result.executed, 2U);
  EXPECT_EQ(result.duplicates, 0U);
  ASSERT_EQ(result.records.size(), 2U);
}

TEST(DistLoopback, RequeueBudgetAbortsDeterministicFailures) {
  campaign::CampaignSpec spec = loopback_spec();
  spec.grid.clear();
  spec.seeds_per_point = 1;  // 1 job

  dist::CoordinatorOptions copts;
  copts.host = "127.0.0.1";
  copts.max_requeues_per_job = 2;
  dist::Coordinator coordinator{spec, copts};
  const std::uint16_t port = coordinator.port();

  std::string error;
  std::thread serve_thread{[&] {
    try {
      coordinator.serve();
    } catch (const std::exception& e) {
      error = e.what();
    }
  }};
  // Three deserters burn through the 2-requeue budget.
  for (int i = 0; i < 3; ++i) take_job_and_vanish(port);
  serve_thread.join();
  EXPECT_NE(error.find("requeued more than"), std::string::npos) << error;
}

TEST(DistLoopback, CoordinatorResumesFromStoreWithoutServingWire) {
  const campaign::CampaignSpec spec = loopback_spec();
  const std::string store_dir = temp_dir("resume_store");

  // First: a local engine run fills the store completely.
  campaign::EngineOptions local;
  local.workers = 2;
  local.store_dir = store_dir;
  const campaign::CampaignResult reference =
      campaign::run_campaign(spec, local);

  // A coordinator over the same store finds nothing to serve: serve()
  // returns immediately with every record resumed, no workers needed.
  dist::CoordinatorOptions copts;
  copts.host = "127.0.0.1";
  copts.store_dir = store_dir;
  dist::Coordinator coordinator{spec, copts};
  const dist::CoordinatorResult result = coordinator.serve();
  EXPECT_EQ(result.resumed, reference.records.size());
  EXPECT_EQ(result.executed, 0U);
  EXPECT_EQ(records_bytes(result.records), records_bytes(reference.records));
}

TEST(DistLoopback, WorkerShardStoreReplaysFinishedJobs) {
  const campaign::CampaignSpec spec = loopback_spec();
  const std::string shard_dir = temp_dir("shard_replay");

  // Run the campaign once with a sharded worker.
  {
    dist::CoordinatorOptions copts;
    copts.host = "127.0.0.1";
    dist::Coordinator coordinator{spec, copts};
    const std::uint16_t port = coordinator.port();
    dist::CoordinatorResult result;
    std::thread serve_thread{[&] { result = coordinator.serve(); }};
    dist::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.shard_store_dir = shard_dir;
    const dist::WorkerReport first = dist::run_worker(wopts);
    serve_thread.join();
    EXPECT_EQ(first.jobs_run, result.records.size());
  }

  // Run it again with the same shard: the worker replays from disk and
  // executes nothing.
  {
    dist::CoordinatorOptions copts;
    copts.host = "127.0.0.1";
    dist::Coordinator coordinator{spec, copts};
    const std::uint16_t port = coordinator.port();
    dist::CoordinatorResult result;
    std::thread serve_thread{[&] { result = coordinator.serve(); }};
    dist::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.shard_store_dir = shard_dir;
    const dist::WorkerReport second = dist::run_worker(wopts);
    serve_thread.join();
    EXPECT_EQ(second.jobs_run, 0U);
    EXPECT_EQ(second.results_accepted, result.records.size());
    EXPECT_EQ(result.executed, result.records.size());
  }
}

}  // namespace
}  // namespace roadrunner
