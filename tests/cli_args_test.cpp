// Regression tests for CLI flag parsing — in particular the
// `parse_worker_count` contract: `--workers=0`, negative counts, and junk
// used to be silently accepted (0 auto-sized, negatives wrapped through
// size_t into absurd thread counts); they must now throw with a
// usage-ready message.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/cli.hpp"

namespace roadrunner {
namespace {

util::CliArgs make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return util::CliArgs{static_cast<int>(argv.size()), argv.data()};
}

TEST(ParseWorkerCount, AbsentFlagReturnsFallback) {
  const util::CliArgs args = make_args({});
  EXPECT_EQ(util::parse_worker_count(args, "workers"), 0U);
  EXPECT_EQ(util::parse_worker_count(args, "workers", 4), 4U);
}

TEST(ParseWorkerCount, PositiveCountsParse) {
  EXPECT_EQ(util::parse_worker_count(make_args({"--workers=1"}), "workers"),
            1U);
  EXPECT_EQ(util::parse_worker_count(make_args({"--workers=16"}), "workers"),
            16U);
  EXPECT_EQ(util::parse_worker_count(make_args({"--jobs", "8"}), "jobs"), 8U);
}

TEST(ParseWorkerCount, ZeroIsRejectedNotAutoSized) {
  EXPECT_THROW(util::parse_worker_count(make_args({"--workers=0"}), "workers"),
               std::invalid_argument);
}

TEST(ParseWorkerCount, NegativeCountsAreRejected) {
  EXPECT_THROW(util::parse_worker_count(make_args({"--workers=-3"}), "workers"),
               std::invalid_argument);
  EXPECT_THROW(util::parse_worker_count(make_args({"--workers=-1"}), "workers"),
               std::invalid_argument);
}

TEST(ParseWorkerCount, JunkIsRejected) {
  for (const char* bad : {"--workers=abc", "--workers=1x", "--workers=",
                          "--workers=++2", "--workers=0x4"}) {
    EXPECT_THROW(util::parse_worker_count(make_args({bad}), "workers"),
                 std::invalid_argument)
        << bad;
  }
}

TEST(ParseWorkerCount, ErrorMessageNamesTheFlagAndValue) {
  try {
    util::parse_worker_count(make_args({"--workers=0"}), "workers");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--workers"), std::string::npos) << what;
    EXPECT_NE(what.find("positive integer"), std::string::npos) << what;
  }
}

TEST(CliArgs, BasicFlagForms) {
  const util::CliArgs args =
      make_args({"--name=alpha", "--count", "7", "pos1", "--flag"});
  EXPECT_TRUE(args.has("name"));
  EXPECT_EQ(args.get("name", ""), "alpha");
  EXPECT_EQ(args.get_int("count", 0), 7);
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1U);
  EXPECT_EQ(args.positional()[0], "pos1");
}

}  // namespace
}  // namespace roadrunner
