// Scenario-builder and whole-system integration tests, including the
// byte-for-byte determinism guarantee (DESIGN.md §4, decision 1).
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "strategy/opportunistic.hpp"

namespace roadrunner::scenario {
namespace {

ScenarioConfig small_config(std::uint64_t seed = 2) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.vehicles = 10;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 1500;
  cfg.test_size = 300;
  cfg.partition = "class_skew";
  cfg.samples_per_vehicle = 30;
  cfg.classes_per_vehicle = 2;
  cfg.model = "logreg";
  cfg.city.duration_s = 2000.0;
  return cfg;
}

strategy::RoundConfig small_rounds() {
  strategy::RoundConfig round;
  round.rounds = 5;
  round.participants = 3;
  round.round_duration_s = 30.0;
  return round;
}

TEST(Scenario, BuildsFleetDataAndModel) {
  Scenario s{small_config()};
  EXPECT_EQ(s.fleet().vehicle_count(), 10U);
  EXPECT_EQ(s.vehicle_data().size(), 10U);
  for (const auto& view : s.vehicle_data()) {
    EXPECT_EQ(view.size(), 30U);
  }
  EXPECT_EQ(s.test_set().size(), 300U);
  EXPECT_GT(s.model_bytes(), 0U);
}

TEST(Scenario, ValidatesNames) {
  auto cfg = small_config();
  cfg.dataset = "mnist";
  EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.partition = "zipf";
  EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.model = "resnet";
  EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.vehicles = 0;
  EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
}

TEST(Scenario, RunProducesStandardMetrics) {
  Scenario s{small_config()};
  const RunResult result =
      s.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  EXPECT_EQ(result.strategy_name, "federated");
  EXPECT_TRUE(result.metrics.has_series("accuracy"));
  EXPECT_GT(result.final_accuracy, 0.0);
  EXPECT_GT(result.report.events_executed, 0U);
  EXPECT_GT(result.channel(comm::ChannelKind::kV2C).bytes_delivered, 0U);
}

TEST(Scenario, ChannelCountersMatchNetworkStats) {
  Scenario s{small_config()};
  const RunResult result =
      s.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  EXPECT_DOUBLE_EQ(
      result.metrics.counter("bytes_V2C_delivered"),
      static_cast<double>(
          result.channel(comm::ChannelKind::kV2C).bytes_delivered));
  EXPECT_DOUBLE_EQ(
      result.metrics.counter("bytes_V2X_delivered"),
      static_cast<double>(
          result.channel(comm::ChannelKind::kV2X).bytes_delivered));
}

TEST(Scenario, IndependentRunsOnSameSubstrate) {
  // Two strategies on one Scenario see identical fleet and data.
  Scenario s{small_config()};
  const auto a =
      s.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  const auto b =
      s.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  // Identical strategy + identical substrate + same seed => identical run.
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.channel(comm::ChannelKind::kV2C).bytes_delivered,
            b.channel(comm::ChannelKind::kV2C).bytes_delivered);
}

// --------------------------------------------------------- determinism ----

std::string metrics_fingerprint(const RunResult& r) {
  std::ostringstream out;
  r.metrics.export_csv(out);
  return out.str();
}

TEST(Determinism, SameSeedIsByteIdentical) {
  Scenario s1{small_config(7)};
  Scenario s2{small_config(7)};
  const auto a =
      s1.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  const auto b =
      s2.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  EXPECT_EQ(metrics_fingerprint(a), metrics_fingerprint(b));
}

TEST(Determinism, AsyncAndSyncTrainingAgree) {
  auto cfg = small_config(8);
  cfg.async_training = true;
  Scenario s1{cfg};
  cfg.async_training = false;
  Scenario s2{cfg};
  const auto a =
      s1.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  const auto b =
      s2.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  EXPECT_EQ(metrics_fingerprint(a), metrics_fingerprint(b));
}

TEST(Determinism, DifferentSeedsDiffer) {
  Scenario s1{small_config(7)};
  Scenario s2{small_config(8)};
  const auto a =
      s1.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  const auto b =
      s2.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  EXPECT_NE(metrics_fingerprint(a), metrics_fingerprint(b));
}

TEST(Determinism, OpportunisticRunIsReproducible) {
  auto cfg = small_config(9);
  cfg.city.duration_s = 4000.0;
  strategy::OpportunisticConfig opp;
  opp.round.rounds = 3;
  opp.round.participants = 2;
  opp.round.round_duration_s = 120.0;
  Scenario s1{cfg};
  Scenario s2{cfg};
  const auto a =
      s1.run(std::make_shared<strategy::OpportunisticStrategy>(opp));
  const auto b =
      s2.run(std::make_shared<strategy::OpportunisticStrategy>(opp));
  EXPECT_EQ(metrics_fingerprint(a), metrics_fingerprint(b));
}

// ---------------------------------------------------- external fleet path --

TEST(Scenario, AcceptsExternalFleet) {
  mobility::CityModelConfig city;
  city.duration_s = 1000.0;
  auto fleet = std::make_shared<mobility::FleetModel>(
      mobility::make_city_fleet(12, city));
  auto cfg = small_config();
  cfg.vehicles = 12;
  cfg.external_fleet = fleet;
  Scenario s{cfg};
  EXPECT_EQ(&s.fleet(), fleet.get());
  const auto result =
      s.run(std::make_shared<strategy::FederatedStrategy>(small_rounds()));
  EXPECT_GT(result.report.events_executed, 0U);
}

TEST(Scenario, RejectsTooSmallExternalFleet) {
  mobility::CityModelConfig city;
  city.duration_s = 500.0;
  auto fleet = std::make_shared<mobility::FleetModel>(
      mobility::make_city_fleet(3, city));
  auto cfg = small_config();
  cfg.vehicles = 10;
  cfg.external_fleet = fleet;
  EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
}

TEST(Scenario, DirichletAndIidPartitions) {
  auto cfg = small_config();
  cfg.partition = "iid";
  EXPECT_NO_THROW(Scenario{cfg});
  cfg.partition = "dirichlet";
  cfg.dirichlet_alpha = 0.3;
  Scenario s{cfg};
  std::size_t total = 0;
  for (const auto& v : s.vehicle_data()) total += v.size();
  EXPECT_EQ(total, cfg.train_pool_size);  // dirichlet assigns whole pool
}

}  // namespace
}  // namespace roadrunner::scenario
