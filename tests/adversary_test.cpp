// Adversary subsystem tests: plan grammar (parsing, unknown-key rejection,
// dense numbering, fraction scaling), the robust aggregators' math and
// determinism, the controller's compromised-set draws / payload transforms /
// jamming geometry / checkpoint state, and the end-to-end guarantees: an
// adversarial run exports attack+defense counters, a robust aggregator
// measurably beats the undefended mean under byzantine updates, mid-attack
// snapshots round-trip bit-identically, the committed v2 golden
// snapshot still restores, and adversarial campaigns stay byte-identical
// across worker counts and across the distributed coordinator path.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>

#include "adversary/adversary_plan.hpp"
#include "adversary/controller.hpp"
#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "campaign/spec.hpp"
#include "checkpoint/checkpoint.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "fault/fault_plan.hpp"
#include "ml/robust.hpp"
#include "scenario/experiment.hpp"
#include "util/binary_io.hpp"
#include "util/ini.hpp"
#include "util/rng.hpp"

#ifndef RR_TEST_DATA_DIR
#define RR_TEST_DATA_DIR "tests/data"
#endif

namespace roadrunner {
namespace {

namespace fs = std::filesystem;

constexpr double kInf = std::numeric_limits<double>::infinity();

util::IniFile parse(const std::string& text) {
  return util::IniFile::parse(text);
}

// ------------------------------------------------------------ parsing -----

TEST(AdversaryPlanParse, EmptyIniYieldsEmptyPlan) {
  const adversary::AdversaryPlan plan =
      adversary::plan_from_ini(parse("[scenario]\nvehicles = 3\n"));
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.fraction, 1.0);
}

TEST(AdversaryPlanParse, FullGrammarRoundTrip) {
  const adversary::AdversaryPlan plan = adversary::plan_from_ini(parse(R"(
[adversary]
fraction = 0.5
[adversary.0]
kind = model_poison
fraction = 0.3
scale = -2.5
label_flip = true
start_s = 100
end_s = 400
[adversary.1]
kind = byzantine
fraction = 0.2
magnitude = 15
weight_factor = 4
[adversary.2]
kind = jamming
x_m = 1000
y_m = 900
radius_m = 500
channels = v2c,v2x
start_s = 0
end_s = 600
[adversary.3]
kind = sybil
fraction = 0.1
clones = 3
)"));
  ASSERT_EQ(plan.events.size(), 4U);
  EXPECT_DOUBLE_EQ(plan.fraction, 0.5);

  const adversary::AdversaryEvent& poison = plan.events[0];
  EXPECT_EQ(poison.kind, adversary::AdversaryKind::kModelPoison);
  EXPECT_DOUBLE_EQ(poison.fraction, 0.3);
  EXPECT_DOUBLE_EQ(poison.scale, -2.5);
  EXPECT_TRUE(poison.label_flip);
  EXPECT_DOUBLE_EQ(poison.start_s, 100.0);
  EXPECT_DOUBLE_EQ(poison.end_s, 400.0);
  EXPECT_TRUE(poison.active_at(100.0));
  EXPECT_FALSE(poison.active_at(400.0));  // half-open window

  const adversary::AdversaryEvent& byz = plan.events[1];
  EXPECT_EQ(byz.kind, adversary::AdversaryKind::kByzantine);
  EXPECT_DOUBLE_EQ(byz.magnitude, 15.0);
  EXPECT_DOUBLE_EQ(byz.weight_factor, 4.0);
  EXPECT_EQ(byz.end_s, kInf);  // open-ended

  const adversary::AdversaryEvent& jam = plan.events[2];
  EXPECT_EQ(jam.kind, adversary::AdversaryKind::kJamming);
  EXPECT_DOUBLE_EQ(jam.center.x, 1000.0);
  EXPECT_DOUBLE_EQ(jam.radius_m, 500.0);
  EXPECT_TRUE(jam.channels[static_cast<std::size_t>(comm::ChannelKind::kV2C)]);
  EXPECT_TRUE(jam.channels[static_cast<std::size_t>(comm::ChannelKind::kV2X)]);
  EXPECT_FALSE(
      jam.channels[static_cast<std::size_t>(comm::ChannelKind::kWired)]);

  const adversary::AdversaryEvent& sybil = plan.events[3];
  EXPECT_EQ(sybil.kind, adversary::AdversaryKind::kSybil);
  EXPECT_EQ(sybil.clones, 3U);
}

TEST(AdversaryPlanParse, RejectsMalformedPlans) {
  EXPECT_THROW(
      adversary::plan_from_ini(parse("[adversary.0]\nkind = mind_control\n")),
      std::runtime_error);
  EXPECT_THROW(adversary::plan_from_ini(parse(
                   "[adversary.0]\nkind = model_poison\nfraction = 1.5\n")),
               std::runtime_error);
  EXPECT_THROW(adversary::plan_from_ini(parse(
                   "[adversary.0]\nkind = byzantine\nmagnitude = -1\n")),
               std::runtime_error);
  EXPECT_THROW(adversary::plan_from_ini(parse(
                   "[adversary.0]\nkind = byzantine\nweight_factor = 0\n")),
               std::runtime_error);
  EXPECT_THROW(adversary::plan_from_ini(parse(
                   "[adversary.0]\nkind = sybil\nclones = 0\n")),
               std::runtime_error);
  EXPECT_THROW(adversary::plan_from_ini(parse(
                   "[adversary.0]\nkind = jamming\nradius_m = -5\n")),
               std::runtime_error);
  EXPECT_THROW(
      adversary::plan_from_ini(parse(
          "[adversary.0]\nkind = model_poison\nstart_s = 10\nend_s = 5\n")),
      std::runtime_error);
}

TEST(AdversaryPlanParse, UnknownKeysFailLoudlyNamingTheSection) {
  // A typo'd key inside a typed event section.
  try {
    adversary::plan_from_ini(parse(
        "[adversary.0]\nkind = model_poison\nfractoin = 0.2\n"));
    FAIL() << "expected unknown-key rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("adversary.0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fractoin"), std::string::npos) << msg;
  }
  // A key valid for one kind is still unknown for another.
  EXPECT_THROW(adversary::plan_from_ini(parse(
                   "[adversary.0]\nkind = sybil\nscale = -4\n")),
               std::runtime_error);
  // The [adversary] header section only accepts `fraction`.
  EXPECT_THROW(adversary::plan_from_ini(parse(
                   "[adversary]\nfraction = 0.5\nseverity = 2\n")),
               std::runtime_error);
}

TEST(AdversaryPlanParse, NumberingGapFailsLoudly) {
  EXPECT_THROW(adversary::plan_from_ini(parse(R"([adversary.0]
kind = sybil
fraction = 0.1
[adversary.2]
kind = sybil
fraction = 0.1
)")),
               std::runtime_error);
}

TEST(FaultPlanParse, UnknownKeysFailLoudlyNamingTheSection) {
  // Same contract as [adversary.N]: a typo must not be silently ignored.
  try {
    (void)fault::plan_from_ini(parse(
        "[fault.0]\nkind = payload_corruption\nprobabilty = 0.3\n"));
    FAIL() << "expected unknown-key rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fault.0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("probabilty"), std::string::npos) << msg;
  }
  // Keys from a different kind are rejected too.
  EXPECT_THROW((void)fault::plan_from_ini(parse(
                   "[fault.0]\nkind = node_outage\nslowdown = 2\n")),
               std::runtime_error);
  // The [fault] header section only accepts `severity`.
  EXPECT_THROW((void)fault::plan_from_ini(parse(
                   "[fault]\nseverity = 1\nfraction = 0.5\n")),
               std::runtime_error);
  // Valid grammar still parses.
  EXPECT_NO_THROW((void)fault::plan_from_ini(parse(
      "[fault]\nseverity = 0.5\n[fault.0]\nkind = node_outage\n"
      "target = cloud\nstart_s = 1\nend_s = 2\n")));
}

// ------------------------------------------------------ resolve + scale ---

TEST(AdversaryPlanResolve, RejectsCompromiseWithNoVehicles) {
  adversary::AdversaryPlan plan = adversary::plan_from_ini(parse(
      "[adversary.0]\nkind = model_poison\nfraction = 0.4\n"));
  EXPECT_THROW((void)plan.resolved({}, 0), std::invalid_argument);
  const adversary::AdversaryPlan ok = plan.resolved({}, 10);
  EXPECT_EQ(ok.vehicle_count, 10U);
}

TEST(AdversaryPlanScale, FractionScalesCompromiseAndJammingRadius) {
  adversary::AdversaryPlan plan = adversary::plan_from_ini(parse(R"(
[adversary]
fraction = 0.5
[adversary.0]
kind = model_poison
fraction = 0.6
[adversary.1]
kind = jamming
radius_m = 400
)"));
  const adversary::AdversaryPlan scaled = plan.resolved({}, 10).scaled();
  ASSERT_EQ(scaled.events.size(), 2U);
  EXPECT_DOUBLE_EQ(scaled.events[0].fraction, 0.3);
  EXPECT_DOUBLE_EQ(scaled.events[1].radius_m, 200.0);
  EXPECT_DOUBLE_EQ(scaled.fraction, 1.0);  // baked in, not applied twice

  plan.fraction = 0.0;
  EXPECT_TRUE(plan.scaled().empty());  // one axis turns the attack off
}

// --------------------------------------------------- robust aggregation ---

ml::WeightedModel scalar(float value, double data_amount) {
  return ml::WeightedModel{{ml::Tensor{{1}, {value}}}, data_amount};
}

TEST(RobustAggregate, MeanIsBitIdenticalToFedAvg) {
  const std::vector<ml::WeightedModel> contributions{
      scalar(1.0F, 10.0), scalar(4.0F, 30.0), scalar(-2.0F, 5.0)};
  const ml::WeightedModel reference = ml::fed_avg(contributions);
  const ml::AggregateResult agg =
      ml::robust_aggregate(contributions, ml::AggregatorConfig{});
  EXPECT_EQ(agg.model.weights[0][0], reference.weights[0][0]);
  EXPECT_EQ(agg.model.data_amount, reference.data_amount);
  EXPECT_TRUE(agg.rejected.empty());
  EXPECT_EQ(agg.clipped, 0U);
}

TEST(RobustAggregate, TrimmedMeanDropsBothTails) {
  // 4 values, trim_fraction 0.25 -> drop 1 smallest + 1 largest: the
  // outlier (and one honest tail value) never touch the aggregate.
  const std::vector<ml::WeightedModel> contributions{
      scalar(1.0F, 1.0), scalar(2.0F, 1.0), scalar(3.0F, 1.0),
      scalar(1000.0F, 1.0)};
  ml::AggregatorConfig config;
  config.kind = ml::AggregatorKind::kTrimmedMean;
  config.trim_fraction = 0.25;
  const ml::AggregateResult agg = ml::robust_aggregate(contributions, config);
  EXPECT_FLOAT_EQ(agg.model.weights[0][0], 2.5F);
  // Evidence mass is still the full sum (rejection changes the value, not
  // the claimed data amount).
  EXPECT_DOUBLE_EQ(agg.model.data_amount, 4.0);
}

TEST(RobustAggregate, MedianIgnoresWeightsAndPermutation) {
  ml::AggregatorConfig config;
  config.kind = ml::AggregatorKind::kMedian;
  const std::vector<ml::WeightedModel> a{
      scalar(1.0F, 1.0), scalar(2.0F, 1.0), scalar(500.0F, 1000.0)};
  const std::vector<ml::WeightedModel> b{
      scalar(500.0F, 1000.0), scalar(1.0F, 1.0), scalar(2.0F, 1.0)};
  EXPECT_FLOAT_EQ(ml::robust_aggregate(a, config).model.weights[0][0], 2.0F);
  // Permutation invariant: coordinate-wise sort erases input order, and an
  // inflated data_amount buys no influence.
  EXPECT_EQ(ml::robust_aggregate(a, config).model.weights[0][0],
            ml::robust_aggregate(b, config).model.weights[0][0]);
}

TEST(RobustAggregate, NormClipCapsOversizedContributions) {
  ml::AggregatorConfig config;
  config.kind = ml::AggregatorKind::kNormClip;
  config.clip_norm = 2.0;
  const std::vector<ml::WeightedModel> contributions{
      scalar(1.0F, 1.0), scalar(1.0F, 1.0), scalar(100.0F, 1.0)};
  const ml::AggregateResult agg = ml::robust_aggregate(contributions, config);
  EXPECT_EQ(agg.clipped, 1U);
  // Third contribution scaled from 100 to norm 2: mean is (1 + 1 + 2) / 3.
  EXPECT_NEAR(agg.model.weights[0][0], 4.0F / 3.0F, 1e-5F);
  // Default cap (clip_norm = 0) uses the median contribution norm.
  config.clip_norm = 0.0;
  const ml::AggregateResult med = ml::robust_aggregate(contributions, config);
  EXPECT_EQ(med.clipped, 1U);
  EXPECT_NEAR(med.model.weights[0][0], 1.0F, 1e-5F);
}

TEST(RobustAggregate, KrumRejectsTheOutlier) {
  ml::AggregatorConfig config;
  config.kind = ml::AggregatorKind::kKrum;
  config.krum_select = 3;
  const std::vector<ml::WeightedModel> contributions{
      scalar(1.0F, 1.0), scalar(1.1F, 1.0), scalar(0.9F, 1.0),
      scalar(1.05F, 1.0), scalar(-50.0F, 1.0)};
  const ml::AggregateResult agg = ml::robust_aggregate(contributions, config);
  ASSERT_EQ(agg.rejected.size(), 2U);
  // The garbage contribution (index 4) is always among the rejected, and
  // the rejected list is sorted ascending.
  EXPECT_EQ(agg.rejected.back(), 4U);
  EXPECT_LT(agg.rejected.front(), agg.rejected.back());
  EXPECT_GT(agg.model.weights[0][0], 0.0F);
  EXPECT_LT(agg.model.weights[0][0], 2.0F);
  EXPECT_DOUBLE_EQ(agg.model.data_amount, 5.0);  // full evidence mass
}

TEST(RobustAggregate, KrumFallsBackToMeanBelowThree) {
  ml::AggregatorConfig config;
  config.kind = ml::AggregatorKind::kKrum;
  const std::vector<ml::WeightedModel> pair{scalar(1.0F, 10.0),
                                            scalar(4.0F, 30.0)};
  const ml::AggregateResult agg = ml::robust_aggregate(pair, config);
  EXPECT_EQ(agg.model.weights[0][0], ml::fed_avg(pair).weights[0][0]);
  EXPECT_TRUE(agg.rejected.empty());
}

TEST(RobustAggregate, ParsesAndValidatesKindNames) {
  EXPECT_EQ(ml::aggregator_from_string("mean"), ml::AggregatorKind::kMean);
  EXPECT_EQ(ml::aggregator_from_string("trimmed_mean"),
            ml::AggregatorKind::kTrimmedMean);
  EXPECT_EQ(ml::aggregator_from_string("median"), ml::AggregatorKind::kMedian);
  EXPECT_EQ(ml::aggregator_from_string("norm_clip"),
            ml::AggregatorKind::kNormClip);
  EXPECT_EQ(ml::aggregator_from_string("krum"), ml::AggregatorKind::kKrum);
  EXPECT_THROW((void)ml::aggregator_from_string("average"),
               std::invalid_argument);
  EXPECT_THROW(ml::robust_aggregate({}, ml::AggregatorConfig{}),
               std::invalid_argument);
}

// ----------------------------------------------------------- controller ---

adversary::AdversaryController make_controller(const std::string& ini_text,
                                               std::uint64_t seed = 7,
                                               std::size_t vehicles = 10) {
  adversary::AdversaryPlan plan = adversary::plan_from_ini(parse(ini_text));
  return adversary::AdversaryController{
      plan.resolved({}, vehicles).scaled(), util::Rng{seed}.fork("adversary")};
}

TEST(AdversaryController, InertByDefault) {
  adversary::AdversaryController inert;
  EXPECT_FALSE(inert.enabled());
  EXPECT_EQ(inert.compromised_count(), 0U);
  ml::Weights w{ml::Tensor{{1}, {1.0F}}};
  double amount = 5.0;
  const adversary::OutgoingEffect effect =
      inert.transform_outgoing(0, 100.0, w, amount);
  EXPECT_EQ(effect.clones, 0U);
  EXPECT_FALSE(effect.mutated);
  EXPECT_FLOAT_EQ(w[0][0], 1.0F);
}

TEST(AdversaryController, SameSeedDrawsTheSameCompromisedSet) {
  const std::string ini =
      "[adversary.0]\nkind = model_poison\nfraction = 0.4\n";
  adversary::AdversaryController a = make_controller(ini, 11);
  adversary::AdversaryController b = make_controller(ini, 11);
  adversary::AdversaryController c = make_controller(ini, 12);
  EXPECT_EQ(a.compromised_count(), 4U);  // floor-free: 0.4 * 10 vehicles
  std::size_t agreement = 0;
  for (std::size_t v = 0; v < 10; ++v) {
    EXPECT_EQ(a.compromised(v), b.compromised(v));
    if (a.compromised(v) == c.compromised(v)) ++agreement;
  }
  // A different seed draws a different set (10 choose 4 leaves collision
  // room, but full agreement on membership of all 10 is the same set).
  EXPECT_EQ(b.compromised_count(), 4U);
  EXPECT_EQ(c.compromised_count(), 4U);
}

TEST(AdversaryController, PoisonScalesWeightsInsideWindowOnly) {
  adversary::AdversaryController ctl = make_controller(
      "[adversary.0]\nkind = model_poison\nfraction = 1.0\nscale = -4\n"
      "start_s = 100\nend_s = 200\n");
  ASSERT_TRUE(ctl.compromised(3));
  ml::Weights w{ml::Tensor{{2}, {1.0F, -2.0F}}};
  double amount = 5.0;
  // Outside the window: untouched.
  adversary::OutgoingEffect effect = ctl.transform_outgoing(3, 50.0, w,
                                                            amount);
  EXPECT_FALSE(effect.mutated);
  EXPECT_FLOAT_EQ(w[0][0], 1.0F);
  // Inside: every coordinate multiplied by the (sign-flipping) scale.
  effect = ctl.transform_outgoing(3, 150.0, w, amount);
  EXPECT_TRUE(effect.mutated);
  EXPECT_FLOAT_EQ(w[0][0], -4.0F);
  EXPECT_FLOAT_EQ(w[0][1], 8.0F);
  EXPECT_DOUBLE_EQ(amount, 5.0);  // poisoning spoofs content, not volume
  EXPECT_EQ(ctl.counters().poisoned_updates, 1U);
}

TEST(AdversaryController, ByzantineGarbageInflatesClaimedData) {
  adversary::AdversaryController ctl = make_controller(
      "[adversary.0]\nkind = byzantine\nfraction = 1.0\nmagnitude = 10\n"
      "weight_factor = 4\n");
  ml::Weights w{ml::Tensor{{3}, {0.5F, 0.5F, 0.5F}}};
  double amount = 10.0;
  const adversary::OutgoingEffect effect =
      ctl.transform_outgoing(0, 100.0, w, amount);
  EXPECT_TRUE(effect.mutated);
  EXPECT_DOUBLE_EQ(amount, 40.0);  // buys trust under weighted mean
  bool changed = false;
  for (std::size_t i = 0; i < 3; ++i) {
    if (w[0][i] != 0.5F) changed = true;
    EXPECT_TRUE(std::isfinite(w[0][i]));  // garbage passes structural checks
  }
  EXPECT_TRUE(changed);
  EXPECT_EQ(ctl.counters().byzantine_updates, 1U);
}

TEST(AdversaryController, SybilRequestsClones) {
  adversary::AdversaryController ctl = make_controller(
      "[adversary.0]\nkind = sybil\nfraction = 1.0\nclones = 3\n");
  ml::Weights w{ml::Tensor{{1}, {1.0F}}};
  double amount = 5.0;
  const adversary::OutgoingEffect effect =
      ctl.transform_outgoing(2, 100.0, w, amount);
  EXPECT_EQ(effect.clones, 3U);
  EXPECT_FLOAT_EQ(w[0][0], 1.0F);  // clones amplify, they don't mutate
  EXPECT_EQ(ctl.counters().sybil_clones, 3U);
}

TEST(AdversaryController, JammingBlocksFlaggedChannelsInsideRadius) {
  adversary::AdversaryController ctl = make_controller(
      "[adversary.0]\nkind = jamming\nx_m = 0\ny_m = 0\nradius_m = 100\n"
      "channels = v2x\nstart_s = 0\nend_s = 1000\n");
  const mobility::Position inside{50.0, 0.0};
  const mobility::Position outside{150.0, 0.0};
  EXPECT_TRUE(ctl.jamming_blocked(comm::ChannelKind::kV2X, inside, 10.0));
  EXPECT_FALSE(ctl.jamming_blocked(comm::ChannelKind::kV2C, inside, 10.0));
  EXPECT_FALSE(ctl.jamming_blocked(comm::ChannelKind::kV2X, outside, 10.0));
  EXPECT_FALSE(ctl.jamming_blocked(comm::ChannelKind::kV2X, inside, 1000.0));
  // Jamming is pure geometry: the benign FaultHook queries stay inert.
  EXPECT_FALSE(ctl.node_down(0, 10.0));
  EXPECT_FALSE(ctl.region_blocked(comm::ChannelKind::kV2X, inside, 10.0));
}

TEST(AdversaryController, LabelFlipOnlyForFlaggedPoisonEvents) {
  adversary::AdversaryController flip = make_controller(
      "[adversary.0]\nkind = model_poison\nfraction = 1.0\n"
      "label_flip = true\nstart_s = 0\nend_s = 100\n");
  EXPECT_TRUE(flip.poison_training(0, 50.0));
  EXPECT_FALSE(flip.poison_training(0, 150.0));  // window over
  EXPECT_EQ(flip.counters().label_flip_trainings, 1U);

  adversary::AdversaryController noflip = make_controller(
      "[adversary.0]\nkind = model_poison\nfraction = 1.0\n");
  EXPECT_FALSE(noflip.poison_training(0, 50.0));
}

TEST(AdversaryController, StateRoundTripsThroughBinaryIo) {
  const std::string ini =
      "[adversary.0]\nkind = byzantine\nfraction = 1.0\nmagnitude = 5\n";
  adversary::AdversaryController original = make_controller(ini);
  ml::Weights w{ml::Tensor{{4}, {0.0F, 0.0F, 0.0F, 0.0F}}};
  double amount = 1.0;
  // Advance the RNG stream mid-attack.
  (void)original.transform_outgoing(0, 10.0, w, amount);
  (void)original.transform_outgoing(1, 11.0, w, amount);

  util::BinWriter out;
  original.save_state(out);
  adversary::AdversaryController restored = make_controller(ini);
  util::BinReader in{out.buffer()};
  restored.load_state(in);
  EXPECT_EQ(restored.counters().byzantine_updates, 2U);

  // The garbage streams continue in lockstep: bit-identical resume.
  for (int i = 0; i < 5; ++i) {
    ml::Weights wa{ml::Tensor{{4}, {0.0F, 0.0F, 0.0F, 0.0F}}};
    ml::Weights wb{ml::Tensor{{4}, {0.0F, 0.0F, 0.0F, 0.0F}}};
    double da = 1.0, db = 1.0;
    (void)original.transform_outgoing(2, 20.0 + i, wa, da);
    (void)restored.transform_outgoing(2, 20.0 + i, wb, db);
    for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(wa[0][k], wb[0][k]);
  }

  // A snapshot taken under a different plan shape is refused.
  adversary::AdversaryController other = make_controller(
      "[adversary.0]\nkind = sybil\nfraction = 0.5\n[adversary.1]\n"
      "kind = byzantine\nfraction = 0.5\n");
  util::BinReader in2{out.buffer()};
  EXPECT_THROW(other.load_state(in2), std::runtime_error);
}

// ---------------------------------------------------------- integration ---

// Full participation (always-on fleet, participants = vehicles) so every
// round aggregates all 10 contributions and the honest majority is a
// property of the attack fraction, not of per-round selection luck.
std::string adversarial_ini(const std::string& attack_sections,
                            const std::string& strategy_keys = {}) {
  return R"([scenario]
vehicles = 10
seed = 11
horizon_s = 800
trace_events = true
[city]
duration_s = 800
initial_on = 1.0
dwell_on = 1.0
[data]
dataset = blobs
train_pool = 600
test_size = 120
partition = iid
samples_per_vehicle = 40
[train]
model = logreg
epochs = 8
[strategy]
name = federated
rounds = 5
participants = 10
round_duration_s = 150
)" + strategy_keys + attack_sections;
}

TEST(AdversaryIntegration, AttackCountersAreExported) {
  const auto ini = parse(adversarial_ini(R"([adversary.0]
kind = model_poison
fraction = 0.3
scale = -4
label_flip = true
[adversary.1]
kind = sybil
fraction = 0.2
clones = 2
)"));
  const scenario::RunResult result = scenario::run_experiment(ini);
  EXPECT_EQ(result.metrics.counter("adversary_compromised_vehicles"), 4.0);
  EXPECT_GT(result.metrics.counter("adversary_poisoned_updates"), 0.0);
  EXPECT_GT(result.metrics.counter("adversary_label_flip_trainings"), 0.0);
  EXPECT_GT(result.metrics.counter("adversary_sybil_clones"), 0.0);
  // Under the undefended mean every reaching update is accepted.
  EXPECT_GT(result.metrics.counter("adversary_updates_accepted"), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("adversary_updates_rejected"), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("adversary_attack_success_rate"),
                   1.0);
}

TEST(AdversaryIntegration, RobustDefenseBeatsUndefendedMean) {
  // 30% byzantine reporters with inflated data_amount wreck the weighted
  // mean; the coordinate-median aggregate must stay usable. This is the
  // subsystem's headline claim, asserted end to end.
  const std::string attack = R"([adversary.0]
kind = byzantine
fraction = 0.3
magnitude = 25
weight_factor = 4
)";
  const scenario::RunResult undefended =
      scenario::run_experiment(parse(adversarial_ini(attack)));
  const scenario::RunResult defended = scenario::run_experiment(
      parse(adversarial_ini(attack, "aggregation = median\n")));
  EXPECT_GT(defended.final_accuracy, undefended.final_accuracy + 0.3)
      << "median=" << defended.final_accuracy
      << " mean=" << undefended.final_accuracy;
  // The clean baseline (no adversary sections) is not hurt by the defense
  // being available: defense counters stay zero without an attack.
  const scenario::RunResult clean =
      scenario::run_experiment(parse(adversarial_ini("")));
  EXPECT_GT(clean.final_accuracy, undefended.final_accuracy);
  EXPECT_DOUBLE_EQ(clean.metrics.counter("adversary_poisoned_updates"), 0.0);
}

TEST(AdversaryIntegration, KrumRejectionsAttributeToCompromisedSenders) {
  const auto ini = parse(adversarial_ini(R"([adversary.0]
kind = byzantine
fraction = 0.3
magnitude = 25
)",
                                         "aggregation = krum\n"
                                         "krum_select = 4\n"));
  const scenario::RunResult result = scenario::run_experiment(ini);
  EXPECT_GT(result.metrics.counter("defense_updates_rejected"), 0.0);
  EXPECT_GT(result.metrics.counter("adversary_updates_rejected"), 0.0);
  EXPECT_LT(result.metrics.counter("adversary_attack_success_rate"), 1.0);
}

TEST(AdversaryIntegration, JammingFailuresGetTheirOwnCause) {
  // A jamming disc over the whole map blocks V2C: failures must land on the
  // `jamming` cause, not on the benign region-outage bucket.
  const auto ini = parse(adversarial_ini(R"([adversary.0]
kind = jamming
x_m = 1000
y_m = 1000
radius_m = 100000
channels = v2c
start_s = 0
end_s = 450
)"));
  const scenario::RunResult result = scenario::run_experiment(ini);
  EXPECT_GT(result.metrics.counter("transfers_V2C_failed_jamming"), 0.0);
  EXPECT_DOUBLE_EQ(
      result.metrics.counter("transfers_V2C_failed_fault-outage"), 0.0);
}

// ------------------------------------------------------------ checkpoint --

TEST(AdversaryCheckpoint, MidAttackRoundTripIsBitIdentical) {
  const auto ini = parse(adversarial_ini(R"([adversary.0]
kind = model_poison
fraction = 0.3
scale = -4
label_flip = true
[adversary.1]
kind = byzantine
fraction = 0.2
magnitude = 10
)"));
  const fs::path snap =
      fs::temp_directory_path() / "rr_adversary_roundtrip.rrck";
  fs::remove(snap);

  auto run_full = [&](const std::string& snap_path) {
    scenario::Scenario scn{scenario::scenario_from_ini(ini)};
    auto strategy = scenario::strategy_from_ini(ini);
    auto sim = scn.make_simulator();
    sim->set_strategy(strategy);
    bool saved = false;
    if (!snap_path.empty()) {
      sim->set_autosave(150.0, [&](core::Simulator& s) {
        if (saved) return;
        saved = true;
        checkpoint::save(s, ini, snap_path);
      });
    }
    (void)sim->run();
    std::ostringstream trace, metrics;
    sim->trace().export_csv(trace);
    sim->metrics_view().export_csv(metrics);
    return std::pair<std::string, std::string>{trace.str(), metrics.str()};
  };

  const auto uninterrupted = run_full({});
  const auto snapshotting = run_full(snap.string());
  EXPECT_EQ(uninterrupted.first, snapshotting.first);
  ASSERT_TRUE(fs::exists(snap));
  const checkpoint::SnapshotInfo info = checkpoint::peek(snap.string());
  EXPECT_EQ(info.format_version, checkpoint::kFormatVersion);

  checkpoint::RestoredRun resumed = checkpoint::restore(snap.string());
  const auto report = resumed.simulator->run();
  (void)report;
  std::ostringstream trace, metrics;
  resumed.simulator->trace().export_csv(trace);
  resumed.simulator->metrics_view().export_csv(metrics);
  EXPECT_EQ(uninterrupted.first, trace.str());
  EXPECT_EQ(uninterrupted.second, metrics.str());
  fs::remove(snap);
}

TEST(AdversaryCheckpoint, PriorFormatGoldenSnapshotStillRestores) {
  // Committed fixture generated by the last release that wrote format v2,
  // BEFORE the adversary subsystem existed. Restoring it and finishing must
  // reproduce a fresh run of its embedded experiment byte-for-byte: format
  // v3 readers stay backward compatible one version.
  const fs::path dir{RR_TEST_DATA_DIR};
  const fs::path snap = dir / "checkpoint_v2_golden.rrck";
  const fs::path ini_path = dir / "checkpoint_v2_golden.ini";
  ASSERT_TRUE(fs::exists(snap)) << snap;
  ASSERT_TRUE(fs::exists(ini_path)) << ini_path;

  const checkpoint::SnapshotInfo info = checkpoint::peek(snap.string());
  EXPECT_EQ(info.format_version, 2U);
  EXPECT_LT(info.format_version, checkpoint::kFormatVersion);

  checkpoint::RestoredRun resumed = checkpoint::restore(snap.string());
  const scenario::RunResult finished = resumed.finish();
  const scenario::RunResult fresh =
      scenario::run_experiment(util::IniFile::load(ini_path.string()));
  EXPECT_DOUBLE_EQ(finished.final_accuracy, fresh.final_accuracy);
  std::ostringstream a, b;
  finished.metrics.export_csv(a);
  fresh.metrics.export_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

// -------------------------------------------------- campaign determinism --

/// 2 points x 1 seed adversarial grid: undefended mean vs median under 30%
/// poisoning, small enough for loopback tests (~1 s per job).
campaign::CampaignSpec adversarial_spec() {
  campaign::CampaignSpec spec;
  spec.name = "adversary_determinism";
  spec.base = util::IniFile::parse(R"(
[scenario]
vehicles = 8
horizon_s = 600
[city]
duration_s = 600
[data]
dataset = blobs
train_pool = 400
test_size = 80
partition = iid
samples_per_vehicle = 20
[train]
model = logreg
epochs = 1
[strategy]
name = federated
rounds = 3
participants = 4
round_duration_s = 60
[adversary.0]
kind = model_poison
fraction = 0.3
scale = -4
)");
  spec.grid = {{"strategy", "aggregation", {"mean", "median"}}};
  spec.seeds_per_point = 1;
  spec.base_seed = 41;
  return spec;
}

std::string records_bytes(const std::vector<campaign::JobRecord>& records) {
  std::string out;
  for (campaign::JobRecord record : records) {
    record.wall_seconds = 0.0;  // host wall-clock: outside the contract
    dist::encode_record(record, out);
  }
  return out;
}

TEST(AdversaryCampaign, WorkerCountDoesNotChangeTheBytes) {
  const campaign::CampaignSpec spec = adversarial_spec();
  campaign::EngineOptions serial;
  serial.workers = 1;
  campaign::EngineOptions wide;
  wide.workers = 4;
  const campaign::CampaignResult one = campaign::run_campaign(spec, serial);
  const campaign::CampaignResult four = campaign::run_campaign(spec, wide);
  ASSERT_EQ(one.records.size(), 2U);
  EXPECT_EQ(records_bytes(one.records), records_bytes(four.records));
  std::ostringstream a, b;
  campaign::write_aggregate_csv(a, campaign::summarize(one.records));
  campaign::write_aggregate_csv(b, campaign::summarize(four.records));
  EXPECT_EQ(a.str(), b.str());
}

TEST(AdversaryCampaign, DistributedRunMatchesInProcessEngine) {
  const campaign::CampaignSpec spec = adversarial_spec();
  campaign::EngineOptions local;
  local.workers = 2;
  const campaign::CampaignResult reference =
      campaign::run_campaign(spec, local);

  dist::CoordinatorOptions copts;
  copts.host = "127.0.0.1";
  dist::Coordinator coordinator{spec, copts};
  const std::uint16_t port = coordinator.port();
  ASSERT_GT(port, 0);
  dist::CoordinatorResult result;
  std::thread serve_thread{[&] { result = coordinator.serve(); }};
  dist::WorkerOptions wopts;
  wopts.host = "127.0.0.1";
  wopts.port = port;
  wopts.name = "adversary-worker";
  const dist::WorkerReport report = dist::run_worker(wopts);
  serve_thread.join();

  EXPECT_EQ(report.shutdown_reason, "campaign complete");
  ASSERT_EQ(result.records.size(), reference.records.size());
  EXPECT_EQ(records_bytes(result.records), records_bytes(reference.records));
}

}  // namespace
}  // namespace roadrunner
