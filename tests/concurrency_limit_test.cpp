// Tests for sender-side radio concurrency limits: with a limit of 1 the
// sender's transfers serialize through a queue; queued messages whose link
// broke while waiting fail asynchronously; unlimited channels behave as
// before.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/simulator.hpp"
#include "data/gaussian_blobs.hpp"
#include "ml/models.hpp"

namespace roadrunner::core {
namespace {

using mobility::IgnitionSchedule;
using mobility::Position;
using mobility::Trace;
using mobility::VehicleTrack;

struct Probe final : strategy::LearningStrategy {
  std::function<void(strategy::StrategyContext&)> start;
  std::vector<std::pair<double, std::string>> deliveries;
  std::vector<std::pair<std::string, comm::LinkStatus>> failures;

  [[nodiscard]] std::string name() const override { return "probe"; }
  void on_start(strategy::StrategyContext& ctx) override { start(ctx); }
  void on_message(strategy::StrategyContext& ctx,
                  const Message& msg) override {
    deliveries.emplace_back(ctx.now(), msg.tag);
  }
  void on_message_failed(strategy::StrategyContext&, const Message& msg,
                         comm::LinkStatus reason) override {
    failures.emplace_back(msg.tag, reason);
  }
};

struct World {
  std::shared_ptr<mobility::FleetModel> fleet;
  std::shared_ptr<const ml::Dataset> dataset;
  std::unique_ptr<Simulator> sim;
  std::shared_ptr<Probe> probe;
  AgentId cloud{}, v0{}, v1{};

  explicit World(std::size_t v2c_limit, double v1_off_at = 1e9) {
    std::vector<VehicleTrack> tracks;
    tracks.push_back({Trace{{{0.0, {0, 0}}, {1000.0, {0, 0}}}},
                      IgnitionSchedule::always_on()});
    tracks.push_back({Trace{{{0.0, {50, 0}}, {1000.0, {50, 0}}}},
                      IgnitionSchedule{{{0.0, v1_off_at}}}});
    fleet = std::make_shared<mobility::FleetModel>(std::move(tracks));
    dataset = std::make_shared<ml::Dataset>(data::make_gaussian_blobs(16));
    ml::Network proto = ml::make_logreg(16, 4);
    util::Rng rng{2};
    ml::prime_and_init(proto, {16}, rng);

    comm::Network::Config net;
    net.v2c.loss_probability = 0.0;
    net.v2c.setup_latency_s = 0.0;
    net.v2c.bandwidth_bytes_per_s = 1000.0;  // 1 KB/s: slow, easy to reason
    net.v2c.max_concurrent_per_agent = v2c_limit;

    SimulatorConfig cfg;
    cfg.horizon_s = 400.0;
    sim = std::make_unique<Simulator>(
        *fleet, net, MlService{proto, ml::DatasetView::all(dataset)}, cfg);
    cloud = sim->add_cloud();
    v0 = sim->add_vehicle(0, ml::DatasetView::all(dataset));
    v1 = sim->add_vehicle(1, ml::DatasetView::all(dataset));
    probe = std::make_shared<Probe>();
    sim->set_strategy(probe);
  }

  Message make(const std::string& tag, AgentId to) const {
    Message msg;
    msg.from = cloud;
    msg.to = to;
    msg.channel = comm::ChannelKind::kV2C;
    msg.tag = tag;
    msg.extra_bytes = 10'000 - Message::kHeaderBytes - 4;  // 10 s on wire
    return msg;
  }
};

TEST(ConcurrencyLimit, SerializesSendsThroughTheQueue) {
  World world{/*v2c_limit=*/1};
  world.probe->start = [&](strategy::StrategyContext& ctx) {
    EXPECT_TRUE(ctx.send(world.make("first", world.v0)));
    EXPECT_TRUE(ctx.send(world.make("second", world.v0)));  // queued
    EXPECT_TRUE(ctx.send(world.make("third", world.v0)));   // queued
  };
  world.sim->run();
  ASSERT_EQ(world.probe->deliveries.size(), 3U);
  // Serialized: 10 s, 20 s, 30 s instead of all at 10 s.
  EXPECT_NEAR(world.probe->deliveries[0].first, 10.0, 1e-6);
  EXPECT_NEAR(world.probe->deliveries[1].first, 20.0, 1e-6);
  EXPECT_NEAR(world.probe->deliveries[2].first, 30.0, 1e-6);
  EXPECT_DOUBLE_EQ(world.sim->metrics_view().counter("transfers_queued"),
                   2.0);
}

TEST(ConcurrencyLimit, UnlimitedChannelsDeliverConcurrently) {
  World world{/*v2c_limit=*/0};
  world.probe->start = [&](strategy::StrategyContext& ctx) {
    EXPECT_TRUE(ctx.send(world.make("a", world.v0)));
    EXPECT_TRUE(ctx.send(world.make("b", world.v0)));
  };
  world.sim->run();
  ASSERT_EQ(world.probe->deliveries.size(), 2U);
  EXPECT_NEAR(world.probe->deliveries[0].first, 10.0, 1e-6);
  EXPECT_NEAR(world.probe->deliveries[1].first, 10.0, 1e-6);
}

TEST(ConcurrencyLimit, LimitOfTwoAllowsTwoInFlight) {
  World world{/*v2c_limit=*/2};
  world.probe->start = [&](strategy::StrategyContext& ctx) {
    EXPECT_TRUE(ctx.send(world.make("a", world.v0)));
    EXPECT_TRUE(ctx.send(world.make("b", world.v0)));
    EXPECT_TRUE(ctx.send(world.make("c", world.v0)));  // queued
  };
  world.sim->run();
  ASSERT_EQ(world.probe->deliveries.size(), 3U);
  EXPECT_NEAR(world.probe->deliveries[0].first, 10.0, 1e-6);
  EXPECT_NEAR(world.probe->deliveries[1].first, 10.0, 1e-6);
  EXPECT_NEAR(world.probe->deliveries[2].first, 20.0, 1e-6);
}

TEST(ConcurrencyLimit, QueuedMessageFailsAsyncWhenLinkBreaks) {
  // Vehicle 1 powers off at t=15: the message queued behind a 10 s transfer
  // to v0 targets v1 and must fail asynchronously at dequeue time (t=10).
  World world{/*v2c_limit=*/1, /*v1_off_at=*/5.0};
  world.probe->start = [&](strategy::StrategyContext& ctx) {
    EXPECT_TRUE(ctx.send(world.make("blocker", world.v0)));
    EXPECT_TRUE(ctx.send(world.make("doomed", world.v1)));  // queued
  };
  world.sim->run();
  ASSERT_EQ(world.probe->deliveries.size(), 1U);
  EXPECT_EQ(world.probe->deliveries[0].second, "blocker");
  ASSERT_EQ(world.probe->failures.size(), 1U);
  EXPECT_EQ(world.probe->failures[0].first, "doomed");
  EXPECT_EQ(world.probe->failures[0].second,
            comm::LinkStatus::kReceiverOff);
}

TEST(ConcurrencyLimit, BacklogKeepsDrainingPastFailedStarts) {
  // Queue [doomed -> v1(off)] then [ok -> v0]: when the blocker finishes,
  // the doomed start fails and the drain continues to deliver "ok".
  World world{/*v2c_limit=*/1, /*v1_off_at=*/5.0};
  world.probe->start = [&](strategy::StrategyContext& ctx) {
    EXPECT_TRUE(ctx.send(world.make("blocker", world.v0)));
    EXPECT_TRUE(ctx.send(world.make("doomed", world.v1)));
    EXPECT_TRUE(ctx.send(world.make("ok", world.v0)));
  };
  world.sim->run();
  std::vector<std::string> delivered;
  for (const auto& [t, tag] : world.probe->deliveries) {
    delivered.push_back(tag);
  }
  EXPECT_EQ(delivered, (std::vector<std::string>{"blocker", "ok"}));
  // "ok" started right after the doomed start failed at t=10.
  EXPECT_NEAR(world.probe->deliveries[1].first, 20.0, 1e-6);
}

}  // namespace
}  // namespace roadrunner::core
