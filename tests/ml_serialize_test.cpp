#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include "ml/models.hpp"
#include "test_util.hpp"

namespace roadrunner::ml {
namespace {

TEST(Serialize, RoundTripIsIdentity) {
  util::Rng rng{1};
  Network net = make_mlp(12, 8, 3);
  net.init_params(rng);
  const Weights original = net.weights();
  const auto bytes = serialize_weights(original);
  const Weights restored = deserialize_weights(bytes);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i], original[i]) << "tensor " << i;
  }
}

TEST(Serialize, ByteSizeMatchesDeclaredFormula) {
  util::Rng rng{2};
  Network net = make_paper_cnn();
  prime_and_init(net, {3, 32, 32}, rng);
  const Weights w = net.weights();
  EXPECT_EQ(serialize_weights(w).size(), weights_byte_size(w));
}

TEST(Serialize, EmptyWeights) {
  const Weights empty;
  const auto bytes = serialize_weights(empty);
  EXPECT_EQ(bytes.size(), 4U);
  EXPECT_TRUE(deserialize_weights(bytes).empty());
}

TEST(Serialize, TruncatedHeaderThrows) {
  std::vector<std::uint8_t> bytes{1, 0};
  EXPECT_THROW(deserialize_weights(bytes), std::runtime_error);
}

TEST(Serialize, TruncatedPayloadThrows) {
  Weights w;
  w.emplace_back(std::vector<std::size_t>{4});
  auto bytes = serialize_weights(w);
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(deserialize_weights(bytes), std::runtime_error);
}

TEST(Serialize, TrailingGarbageThrows) {
  Weights w;
  w.emplace_back(std::vector<std::size_t>{2});
  auto bytes = serialize_weights(w);
  bytes.push_back(0xAB);
  EXPECT_THROW(deserialize_weights(bytes), std::runtime_error);
}

TEST(Serialize, AbsurdRankRejected) {
  // count=1, rank=99 -> rejected before any allocation.
  std::vector<std::uint8_t> bytes{1, 0, 0, 0, 99, 0, 0, 0};
  EXPECT_THROW(deserialize_weights(bytes), std::runtime_error);
}

TEST(Serialize, PreservesExactFloatBits) {
  Weights w;
  w.emplace_back(std::vector<std::size_t>{3},
                 std::vector<float>{-0.0F, 1e-38F, 3.14159265F});
  const Weights r = deserialize_weights(serialize_weights(w));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(r[0][i]),
              std::bit_cast<std::uint32_t>(w[0][i]));
  }
}

}  // namespace
}  // namespace roadrunner::ml
