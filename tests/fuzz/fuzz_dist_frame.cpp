// Fuzz target: the distributed-service wire decoders — the bytes a
// coordinator accepts from any worker (and vice versa) over TCP. The first
// input byte selects the payload decoder, mirroring the message-type byte
// of the frame header; the rest is the payload. Contract under test
// (protocol.hpp): decoders throw std::runtime_error on truncated or
// malformed payloads — BinReader overruns surface as exceptions, never as
// garbage reads, and hostile count prefixes must not turn into giant
// allocations. parse_endpoint (std::invalid_argument) rides along on the
// same bytes.

#include <stdexcept>
#include <string>

#include "dist/protocol.hpp"

#include "fuzz_main.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  namespace dist = roadrunner::dist;
  const std::uint8_t selector = data[0];
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);
  try {
    switch (selector % 9) {
      case 0: (void)dist::decode_hello(payload); break;
      case 1: (void)dist::decode_welcome(payload); break;
      case 2: (void)dist::decode_job_assign(payload); break;
      case 3: (void)dist::decode_no_work(payload); break;
      case 4: (void)dist::decode_job_result(payload); break;
      case 5: (void)dist::decode_result_ack(payload); break;
      case 6: (void)dist::decode_heartbeat(payload); break;
      case 7: (void)dist::decode_shutdown(payload); break;
      case 8: (void)dist::decode_record(payload); break;
    }
  } catch (const std::runtime_error&) {
    // Documented rejection path for corrupt or truncated payloads.
  }
  try {
    (void)dist::parse_endpoint(payload);
  } catch (const std::invalid_argument&) {
  }
  return 0;
}
