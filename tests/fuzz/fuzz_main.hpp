// Shared driver for the RR_FUZZ harnesses (DESIGN.md §15). A harness
// defines only the libFuzzer entry point:
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// Under clang with -fsanitize=fuzzer (RR_FUZZ_LIBFUZZER) that symbol is the
// whole program and libFuzzer supplies main(). Every other build — notably
// GCC with ASan/UBSan, the only toolchain guaranteed locally — gets the
// standalone main() below, which replays the files named on the command
// line (directories are walked recursively). That is what the
// fuzz_corpus_* ctest targets run: the checked-in seed corpus plus any
// minimized crash inputs, under sanitizers, on every RR_FUZZ build.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#if !defined(RR_FUZZ_LIBFUZZER)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg{argv[i]};
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  std::sort(inputs.begin(), inputs.end());
  for (const fs::path& path : inputs) {
    std::ifstream in{path, std::ios::binary};
    if (!in) {
      std::fprintf(stderr, "fuzz: cannot open %s\n", path.c_str());
      return 2;
    }
    const std::string bytes{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("fuzz: replayed %zu input(s) cleanly\n", inputs.size());
  return 0;
}

#endif  // !RR_FUZZ_LIBFUZZER
