// Fuzz target: the SUMO FCD-XML importer. Contract under test:
// load_fleet_fcd_text throws std::runtime_error with file+line context on
// any malformed export — the hand-rolled XML scanner must never index out
// of bounds, loop forever, or let a parse failure escape as a different
// exception type. Accepted exports are additionally loaded in geo mode,
// which exercises the projection path on the same coordinates.

#include <stdexcept>
#include <string>

#include "mobility/fcd.hpp"

#include "fuzz_main.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string xml(reinterpret_cast<const char*>(data), size);
  try {
    (void)roadrunner::mobility::load_fleet_fcd_text(xml);
  } catch (const std::runtime_error&) {
    return 0;  // clean rejection; geo mode would reject identically
  }
  // The export parsed: the geo variant must also terminate cleanly
  // (projection can still reject non-finite results).
  try {
    roadrunner::mobility::FcdOptions geo;
    geo.geo = true;
    (void)roadrunner::mobility::load_fleet_fcd_text(xml, geo);
  } catch (const std::runtime_error&) {
  }
  return 0;
}
