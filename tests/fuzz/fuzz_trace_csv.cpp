// Fuzz target: the CSV trace loader (the door through which real GPS data
// enters the framework). One fuzz input carries both files: everything
// before the "===IGNITION===" marker line is the traces CSV, everything
// after it the ignition CSV (no marker: ignition is empty, which the
// density check rejects unless the traces are empty too).
//
// Contract under test: load_fleet_csv_text throws std::runtime_error with
// "<file>:<line>:" context on malformed rows — hostile vehicle ids must
// neither overflow the id parser nor force giant resize() allocations.

#include <stdexcept>
#include <string>

#include "mobility/trace_file.hpp"

#include "fuzz_main.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static const std::string kMarker = "\n===IGNITION===\n";
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::string traces = text;
  std::string ignition;
  const std::size_t split = text.find(kMarker);
  if (split != std::string::npos) {
    traces = text.substr(0, split);
    ignition = text.substr(split + kMarker.size());
  }
  try {
    (void)roadrunner::mobility::load_fleet_csv_text(traces, ignition);
  } catch (const std::runtime_error&) {
    // Clean rejection with file:line context.
  }
  return 0;
}
