// Fuzz target: the INI parser and everything downstream that consumes
// analyst-written configuration. Contract under test: IniFile::parse and
// the typed getters throw std::runtime_error on malformed input, the
// planners throw std::runtime_error or std::invalid_argument on bad
// config, and *accepted* text round-trips stably through to_string().
// Anything else — another exception type, a crash, UB — is a finding.

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "adversary/adversary_plan.hpp"
#include "campaign/spec.hpp"
#include "fault/fault_plan.hpp"
#include "traffic/traffic_plan.hpp"
#include "util/ini.hpp"
#include "workload/drift_plan.hpp"

#include "fuzz_main.hpp"

namespace {

template <typename Fn>
void expect_clean_rejection(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error&) {
    // Documented rejection path.
  } catch (const std::invalid_argument&) {
    // Documented rejection path (campaign / plan validation).
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  roadrunner::util::IniFile ini;
  try {
    ini = roadrunner::util::IniFile::parse(text);
  } catch (const std::runtime_error&) {
    return 0;  // clean rejection with a line number
  }

  // Accepted input must round-trip: parse(to_string()) re-emits the same
  // text (sections and keys sorted) — this is what lets checkpoints embed
  // their own rebuild recipe.
  const std::string once = ini.to_string();
  const std::string twice = roadrunner::util::IniFile::parse(once).to_string();
  if (once != twice) std::abort();

  // Typed getters must reject malformed values without leaking stoi/stod
  // exceptions.
  for (const std::string& section : ini.sections()) {
    for (const std::string& key : ini.keys(section)) {
      expect_clean_rejection([&] { (void)ini.get_int(section, key, 0); });
      expect_clean_rejection([&] { (void)ini.get_uint64(section, key, 0); });
      expect_clean_rejection([&] { (void)ini.get_double(section, key, 0.0); });
      expect_clean_rejection([&] { (void)ini.get_bool(section, key, false); });
    }
  }

  // Chain into every planner that consumes experiment INI directly.
  expect_clean_rejection([&] { (void)roadrunner::fault::plan_from_ini(ini); });
  expect_clean_rejection(
      [&] { (void)roadrunner::adversary::plan_from_ini(ini); });
  expect_clean_rejection(
      [&] { (void)roadrunner::traffic::plan_from_ini(ini); });
  expect_clean_rejection(
      [&] { (void)roadrunner::workload::plan_from_ini(ini); });
  expect_clean_rejection(
      [&] { (void)roadrunner::campaign::campaign_from_ini(ini); });
  return 0;
}
