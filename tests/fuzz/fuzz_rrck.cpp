// Fuzz target: the RRCK snapshot container (magic, version, CRC trailer,
// section table, metadata sections) via checkpoint::peek_bytes. Contract
// under test: every malformed image is rejected with std::runtime_error —
// truncation, overlapping or overrunning sections, and hostile length
// fields must never read out of bounds or allocate unboundedly.
//
// The raw input mostly dies at the magic or CRC check, so after the first
// attempt the harness re-seals the image — stamps the magic and recomputes
// the CRC trailer — and parses again. That second pass is what reaches the
// section-table and metadata decoding with fuzzer-controlled bytes.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "checkpoint/checkpoint.hpp"
#include "util/binary_io.hpp"

#include "fuzz_main.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string image(reinterpret_cast<const char*>(data), size);
  try {
    (void)roadrunner::checkpoint::peek_bytes(image);
  } catch (const std::runtime_error&) {
  }

  // magic(4) + version(4) + count(4) + crc(4)
  if (image.size() < 16) return 0;
  image.replace(0, 4, "RRCK");
  const std::uint32_t crc =
      roadrunner::util::crc32(image.data(), image.size() - 4);
  for (int i = 0; i < 4; ++i) {
    image[image.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  try {
    (void)roadrunner::checkpoint::peek_bytes(image);
  } catch (const std::runtime_error&) {
  }
  return 0;
}
