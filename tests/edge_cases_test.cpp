// Remaining edge cases across modules: wired-channel durations, commute
// fleet helpers, OPP reporter loss handling, and registry export quoting.
#include <gtest/gtest.h>

#include <sstream>

#include "comm/network.hpp"
#include "metrics/registry.hpp"
#include "mobility/commute_model.hpp"
#include "scenario/scenario.hpp"
#include "strategy/opportunistic.hpp"

namespace roadrunner {
namespace {

TEST(Network, DurationBetweenIgnoresDegradationForCloudAndWired) {
  mobility::CityModelConfig city;
  city.duration_s = 100.0;
  const auto fleet = mobility::make_city_fleet(2, city);
  comm::Network::Config cfg;
  cfg.v2x.range_degradation = 0.9;
  cfg.v2c.range_degradation = 0.9;  // nonsensical for V2C; must be ignored
  cfg.v2c.range_m = 0.0;
  comm::Network net{fleet, cfg, util::Rng{1}};
  // Cloud endpoint: falls back to the flat duration.
  EXPECT_DOUBLE_EQ(
      net.duration_between(comm::kCloudEndpoint, 0, comm::ChannelKind::kV2C,
                           1000, 0.0),
      net.duration(comm::ChannelKind::kV2C, 1000));
  // Wired: flat as well.
  EXPECT_DOUBLE_EQ(net.duration_between(0, 1, comm::ChannelKind::kWired,
                                        1000, 0.0),
                   net.duration(comm::ChannelKind::kWired, 1000));
}

TEST(CommuteModel, FleetOnFractionEdgeCases) {
  mobility::FleetModel empty;
  EXPECT_DOUBLE_EQ(mobility::fleet_on_fraction(empty, 0.0), 0.0);
  mobility::CommuteModelConfig cfg;
  cfg.day_length_s = 4000.0;
  const auto fleet = mobility::make_commute_fleet(4, cfg);
  const double f = mobility::fleet_on_fraction(fleet, 100.0);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST(Metrics, CsvExportQuotesAwkwardNames) {
  metrics::Registry reg;
  reg.add_point("series,with comma", 1.0, 2.0);
  std::ostringstream out;
  reg.export_csv(out);
  EXPECT_NE(out.str().find("\"series,with comma\""), std::string::npos);
}

TEST(Opportunistic, ReporterPowerOffDiscardsItsCollection) {
  // Reporters that die mid-round take their collected models with them
  // (paper §5.2); the server finalizes with whatever other reporters sent.
  scenario::ScenarioConfig cfg;
  cfg.seed = 95;
  cfg.vehicles = 8;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 1200;
  cfg.test_size = 240;
  cfg.partition = "iid";
  cfg.samples_per_vehicle = 30;
  cfg.model = "logreg";
  cfg.city.duration_s = 5000.0;
  cfg.city.dwell_mean_s = 120.0;  // frequent power cycling
  cfg.city.initial_on_probability = 0.6;
  cfg.city.dwell_on_probability = 0.0;
  cfg.net.v2c.loss_probability = 0.3;  // force visible churn
  scenario::Scenario scenario{cfg};
  strategy::OpportunisticConfig opp;
  opp.round.rounds = 6;
  opp.round.participants = 3;
  opp.round.round_duration_s = 150.0;
  const auto result =
      scenario.run(std::make_shared<strategy::OpportunisticStrategy>(opp));
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 6.0);
  // With this much churn some work is necessarily discarded or lost.
  const double churn = result.metrics.counter("trainings_discarded") +
                       result.metrics.counter("opp_returns_discarded") +
                       result.metrics.counter("messages_failed");
  EXPECT_GT(churn, 0.0);
}

TEST(Scenario, RsuAgentsRegisteredFromConfig) {
  scenario::ScenarioConfig cfg;
  cfg.seed = 96;
  cfg.vehicles = 5;
  cfg.rsus = 3;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 600;
  cfg.test_size = 120;
  cfg.partition = "iid";
  cfg.samples_per_vehicle = 20;
  cfg.model = "logreg";
  cfg.city.duration_s = 500.0;
  scenario::Scenario scenario{cfg};
  auto sim = scenario.make_simulator();
  EXPECT_EQ(sim->rsu_ids().size(), 3U);
  EXPECT_EQ(sim->agent_count(), 1U + 5U + 3U);
  for (core::AgentId rsu : sim->rsu_ids()) {
    EXPECT_EQ(sim->agent(rsu).kind, core::AgentKind::kRoadsideUnit);
    EXPECT_TRUE(sim->is_on(rsu));
  }
}

}  // namespace
}  // namespace roadrunner
