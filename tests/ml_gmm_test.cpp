#include "ml/gmm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/fedavg.hpp"
#include "ml/serialize.hpp"

namespace roadrunner::ml {
namespace {

/// `n` samples from `k` well-separated spherical Gaussians in `d` dims.
DatasetView mixture_cloud(std::size_t n, std::size_t k, std::size_t d,
                          std::uint64_t seed, double radius = 6.0,
                          double spread = 0.7) {
  util::Rng rng{seed};
  Tensor x{{n, d}};
  std::vector<std::int32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % k;
    labels[i] = static_cast<std::int32_t>(c);
    for (std::size_t j = 0; j < d; ++j) {
      const double sign = ((c + j) % 2 == 0) ? 1.0 : -1.0;
      const double center =
          sign * radius * (1.0 + static_cast<double>(c)) /
          static_cast<double>(k);
      x.values()[i * d + j] =
          static_cast<float>(center + spread * rng.normal());
    }
  }
  return DatasetView::all(std::make_shared<Dataset>(
      std::move(x), std::move(labels), static_cast<std::size_t>(k)));
}

TEST(Gmm, EmImprovesLogLikelihood) {
  auto data = mixture_cloud(300, 3, 4, 11);
  util::Rng rng{1};
  GmmModel model = gmm_init(data, 3, rng);
  const double before = gmm_mean_log_likelihood(model, data);
  gmm_fit_em(model, data, 10);
  const double after = gmm_mean_log_likelihood(model, data);
  EXPECT_GE(after, before - 1e-9);
  EXPECT_TRUE(std::isfinite(after));
}

TEST(Gmm, RecoversSeparatedMixture) {
  auto data = mixture_cloud(600, 3, 2, 12);
  util::Rng rng{2};
  GmmModel model = gmm_init(data, 3, rng);
  gmm_fit_em(model, data, 25);
  // Every component grabs a share of the mass, and held-out data from the
  // same mixture scores far above data from a shifted one.
  double min_weight = 1.0;
  for (std::size_t c = 0; c < model.k(); ++c) {
    min_weight = std::min(min_weight, static_cast<double>(model.weight[c]));
  }
  EXPECT_GT(min_weight, 0.1);
  auto held_out = mixture_cloud(200, 3, 2, 13);
  auto shifted = mixture_cloud(200, 3, 2, 14, /*radius=*/20.0);
  EXPECT_GT(gmm_mean_log_likelihood(model, held_out),
            gmm_mean_log_likelihood(model, shifted) + 1.0);
}

TEST(Gmm, SuffStatMergeIsOrderInsensitive) {
  auto data = mixture_cloud(400, 3, 4, 15);
  util::Rng rng{3};
  GmmModel model = gmm_init(data, 3, rng);
  gmm_fit_em(model, data, 5);

  // Five disjoint shards accumulated under the same model.
  std::vector<GmmSuffStats> shards;
  for (std::size_t s = 0; s < 5; ++s) {
    std::vector<std::uint32_t> rows;
    for (std::uint32_t i = static_cast<std::uint32_t>(s); i < 400; i += 5) {
      rows.push_back(data.indices()[i]);
    }
    shards.push_back(gmm_accumulate(
        model, DatasetView{data.base_ptr(), std::move(rows)}));
  }

  // Merge under every rotation + the reversed order: identical pooled stats
  // to double-precision rounding (the gossip/OPP paths merge pairwise in
  // whatever order encounters happen).
  std::vector<std::size_t> order(shards.size());
  std::iota(order.begin(), order.end(), 0);
  auto merged_in = [&](const std::vector<std::size_t>& idx) {
    GmmSuffStats acc{3, 4};
    for (std::size_t i : idx) acc.merge(shards[i]);
    return acc;
  };
  const GmmSuffStats reference = merged_in(order);
  std::vector<std::vector<std::size_t>> permutations;
  for (std::size_t r = 1; r < order.size(); ++r) {
    std::vector<std::size_t> rotated = order;
    std::rotate(rotated.begin(), rotated.begin() + static_cast<long>(r),
                rotated.end());
    permutations.push_back(std::move(rotated));
  }
  permutations.emplace_back(order.rbegin(), order.rend());
  for (const auto& perm : permutations) {
    const GmmSuffStats merged = merged_in(perm);
    ASSERT_EQ(merged.k, reference.k);
    for (std::size_t c = 0; c < merged.n.size(); ++c) {
      EXPECT_NEAR(merged.n[c], reference.n[c],
                  1e-9 * (1.0 + std::abs(reference.n[c])));
    }
    for (std::size_t i = 0; i < merged.sx.size(); ++i) {
      EXPECT_NEAR(merged.sx[i], reference.sx[i],
                  1e-9 * (1.0 + std::abs(reference.sx[i])));
      EXPECT_NEAR(merged.sxx[i], reference.sxx[i],
                  1e-9 * (1.0 + std::abs(reference.sxx[i])));
    }
  }
}

TEST(Gmm, MergeValidatesShapes) {
  GmmSuffStats a{3, 4};
  GmmSuffStats wrong{2, 4};
  EXPECT_THROW(a.merge(wrong), std::invalid_argument);
}

TEST(Gmm, EncodeDecodeRoundTrip) {
  auto data = mixture_cloud(200, 3, 4, 16);
  util::Rng rng{4};
  GmmModel model = gmm_init(data, 3, rng);
  const GmmSuffStats stats = gmm_accumulate(model, data);
  const Weights w = gmm_encode(stats);
  ASSERT_TRUE(gmm_weights_valid(w));
  ASSERT_TRUE(gmm_has_mass(w));
  const GmmSuffStats back = gmm_decode(w, stats.total());
  for (std::size_t c = 0; c < stats.k; ++c) {
    // float32 transit: ~7 significant digits survive the round trip.
    EXPECT_NEAR(back.n[c], stats.n[c], 1e-4 * (1.0 + std::abs(stats.n[c])));
  }
  for (std::size_t i = 0; i < stats.sx.size(); ++i) {
    EXPECT_NEAR(back.sx[i], stats.sx[i],
                1e-4 * (1.0 + std::abs(stats.sx[i])));
    EXPECT_NEAR(back.sxx[i], stats.sxx[i],
                1e-4 * (1.0 + std::abs(stats.sxx[i])));
  }
}

TEST(Gmm, FedAvgEqualsPooledStatistics) {
  auto data = mixture_cloud(300, 3, 4, 17);
  util::Rng rng{5};
  GmmModel model = gmm_init(data, 3, rng);
  gmm_fit_em(model, data, 3);

  // Three shards of different sizes, encoded as WeightedModels the way
  // MlService ships them (normalized stats + data_amount = sample count).
  std::vector<WeightedModel> contributions;
  GmmSuffStats pooled{3, 4};
  std::size_t start = 0;
  for (const std::size_t count : {50UL, 100UL, 150UL}) {
    std::vector<std::uint32_t> rows(
        data.indices().begin() + static_cast<long>(start),
        data.indices().begin() + static_cast<long>(start + count));
    start += count;
    const GmmSuffStats stats =
        gmm_accumulate(model, DatasetView{data.base_ptr(), std::move(rows)});
    pooled.merge(stats);
    contributions.push_back(
        WeightedModel{gmm_encode(stats), static_cast<double>(count)});
  }

  const WeightedModel merged = fed_avg(contributions);
  EXPECT_DOUBLE_EQ(merged.data_amount, 300.0);
  const GmmSuffStats decoded = gmm_decode(merged.weights, merged.data_amount);
  for (std::size_t c = 0; c < pooled.k; ++c) {
    EXPECT_NEAR(decoded.n[c], pooled.n[c],
                1e-4 * (1.0 + std::abs(pooled.n[c])));
  }
  for (std::size_t i = 0; i < pooled.sx.size(); ++i) {
    EXPECT_NEAR(decoded.sx[i], pooled.sx[i],
                1e-4 * (1.0 + std::abs(pooled.sx[i])));
    EXPECT_NEAR(decoded.sxx[i], pooled.sxx[i],
                1e-4 * (1.0 + std::abs(pooled.sxx[i])));
  }
}

TEST(Gmm, ZeroWeightsAreTheUnfitSentinel) {
  const Weights zero = gmm_zero_weights(3, 4);
  EXPECT_TRUE(gmm_weights_valid(zero));
  EXPECT_FALSE(gmm_has_mass(zero));
  EXPECT_THROW(gmm_model_from_weights(zero), std::invalid_argument);

  // Merging the sentinel into a fitted model is a no-op on the pooled
  // stats: data_amount 0 contributes nothing.
  auto data = mixture_cloud(100, 3, 4, 18);
  util::Rng rng{6};
  GmmModel model = gmm_init(data, 3, rng);
  const GmmSuffStats stats = gmm_accumulate(model, data);
  const WeightedModel fitted{gmm_encode(stats),
                             static_cast<double>(data.size())};
  const WeightedModel merged = fed_avg({fitted, WeightedModel{zero, 0.0}});
  const GmmSuffStats decoded = gmm_decode(merged.weights, merged.data_amount);
  for (std::size_t c = 0; c < stats.k; ++c) {
    EXPECT_NEAR(decoded.n[c], stats.n[c], 1e-4 * (1.0 + stats.n[c]));
  }
}

TEST(Gmm, SerializeRoundTripsThroughMlSerialize) {
  auto data = mixture_cloud(150, 3, 4, 19);
  util::Rng rng{7};
  GmmModel model = gmm_init(data, 3, rng);
  const Weights w = gmm_encode(gmm_accumulate(model, data));
  const Weights back = deserialize_weights(serialize_weights(w));
  ASSERT_TRUE(gmm_weights_valid(back));
  ASSERT_EQ(back.size(), w.size());
  for (std::size_t t = 0; t < w.size(); ++t) {
    ASSERT_TRUE(back[t].same_shape(w[t]));
    for (std::size_t i = 0; i < w[t].size(); ++i) {
      EXPECT_EQ(back[t][i], w[t][i]);  // byte-exact float transit
    }
  }
}

TEST(Gmm, InitWithFewerSamplesThanComponents) {
  auto data = mixture_cloud(2, 2, 3, 20);
  util::Rng rng{8};
  // k = 5 > n = 2: the first two components seed from the samples, the
  // surplus three get zero weight — the model still has exactly k
  // components so its encodings stay merge-compatible fleet-wide.
  GmmModel model = gmm_init(data, 5, rng);
  ASSERT_EQ(model.k(), 5U);
  double mass = 0.0;
  for (std::size_t c = 0; c < 5; ++c) {
    mass += model.weight[c];
  }
  EXPECT_NEAR(mass, 1.0, 1e-6);
  EXPECT_TRUE(std::isfinite(gmm_mean_log_likelihood(model, data)));
  EXPECT_THROW(gmm_init(data, 0, rng), std::invalid_argument);
}

TEST(Gmm, VarianceFloorHolds) {
  // Ten copies of the same point: every variance collapses onto the floor
  // instead of zero (which would blow the log-density to +inf).
  Tensor x{{10, 2}, std::vector<float>(20, 3.0F)};
  auto data = DatasetView::all(std::make_shared<Dataset>(
      std::move(x), std::vector<std::int32_t>(10, 0), 1));
  util::Rng rng{9};
  const double floor = 1e-2;
  GmmModel model = gmm_init(data, 2, rng, floor);
  gmm_fit_em(model, data, 5, floor);
  for (std::size_t i = 0; i < model.var.size(); ++i) {
    EXPECT_GE(model.var[i], static_cast<float>(floor) * 0.999F);
  }
  EXPECT_TRUE(std::isfinite(gmm_mean_log_likelihood(model, data)));
}

}  // namespace
}  // namespace roadrunner::ml
