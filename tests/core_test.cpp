// Core Simulator tests: event queue semantics, message lifecycle (delivery
// timing, mid-transfer failure), training lifecycle (busy state, power-off
// discard), timers, encounter/power events, and determinism.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/event_queue.hpp"
#include "core/simulator.hpp"
#include "data/gaussian_blobs.hpp"
#include "ml/models.hpp"

namespace roadrunner::core {
namespace {

// ------------------------------------------------------------ event queue --

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.executed_count(), 3U);
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(7.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 4) q.schedule(q.current_time() + 1.0, chain);
  };
  q.schedule(0.0, chain);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 4);
  EXPECT_DOUBLE_EQ(q.current_time(), 3.0);
}

TEST(EventQueue, RejectsPastAndNull) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_next();
  EXPECT_THROW(q.schedule(4.0, [] {}), std::logic_error);
  EXPECT_NO_THROW(q.schedule(5.0, [] {}));  // same time is fine
  EXPECT_THROW(q.schedule(9.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, EmptyQueueThrows) {
  EventQueue q;
  EXPECT_THROW(q.run_next(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

TEST(SimTime, Formatting) {
  EXPECT_EQ(format_time(3661.5), "1:01:01.500");
  EXPECT_EQ(format_time(0.0), "0:00:00.000");
}

// -------------------------------------------------- simulator test fixture --

using mobility::IgnitionSchedule;
using mobility::Trace;
using mobility::VehicleTrack;

/// Records every callback so tests can assert on the exact event sequence.
struct ScriptedStrategy final : strategy::LearningStrategy {
  std::function<void(strategy::StrategyContext&)> start;
  std::vector<std::string> log;
  std::vector<Message> received;
  std::vector<std::pair<Message, comm::LinkStatus>> failed;
  std::vector<std::pair<AgentId, strategy::TrainingOutcome>> trainings;
  std::vector<AgentId> training_failures;
  std::function<void(strategy::StrategyContext&, AgentId, int)> timer_hook;

  [[nodiscard]] std::string name() const override { return "scripted"; }
  void on_start(strategy::StrategyContext& ctx) override {
    if (start) start(ctx);
  }
  void on_message(strategy::StrategyContext& ctx,
                  const Message& msg) override {
    received.push_back(msg);
    log.push_back("msg:" + msg.tag + "@" + std::to_string(ctx.now()));
  }
  void on_message_failed(strategy::StrategyContext&, const Message& msg,
                         comm::LinkStatus reason) override {
    failed.emplace_back(msg, reason);
  }
  void on_training_complete(strategy::StrategyContext&, AgentId id,
                            const strategy::TrainingOutcome& o) override {
    trainings.emplace_back(id, o);
  }
  void on_training_failed(strategy::StrategyContext&, AgentId id,
                          int) override {
    training_failures.push_back(id);
  }
  void on_timer(strategy::StrategyContext& ctx, AgentId id,
                int timer_id) override {
    log.push_back("timer:" + std::to_string(timer_id));
    if (timer_hook) timer_hook(ctx, id, timer_id);
  }
  void on_encounter_begin(strategy::StrategyContext&, AgentId a,
                          AgentId b) override {
    log.push_back("enc+" + std::to_string(a) + "-" + std::to_string(b));
  }
  void on_encounter_end(strategy::StrategyContext&, AgentId a,
                        AgentId b) override {
    log.push_back("enc-" + std::to_string(a) + "-" + std::to_string(b));
  }
  void on_power_on(strategy::StrategyContext&, AgentId id) override {
    log.push_back("on:" + std::to_string(id));
  }
  void on_power_off(strategy::StrategyContext&, AgentId id) override {
    log.push_back("off:" + std::to_string(id));
  }
};

struct SimFixture {
  std::shared_ptr<mobility::FleetModel> fleet;
  std::shared_ptr<const ml::Dataset> dataset;
  std::unique_ptr<Simulator> sim;
  std::shared_ptr<ScriptedStrategy> strategy;
  AgentId cloud{}, v0{}, v1{};

  /// Vehicle 0: parked at origin, always on. Vehicle 1: parked at (100,0),
  /// on during [0, off_at). Lossless channels.
  explicit SimFixture(double off_at = 1e9, double horizon = 400.0,
                      double v2c_bandwidth = 1e6) {
    std::vector<VehicleTrack> tracks;
    tracks.push_back({Trace{{{0.0, {0, 0}}, {1000.0, {0, 0}}}},
                      IgnitionSchedule::always_on()});
    tracks.push_back({Trace{{{0.0, {100, 0}}, {1000.0, {100, 0}}}},
                      IgnitionSchedule{{{0.0, off_at}}}});
    fleet = std::make_shared<mobility::FleetModel>(std::move(tracks));

    data::GaussianBlobConfig bc;
    dataset = std::make_shared<ml::Dataset>(data::make_gaussian_blobs(64, bc));

    ml::Network proto = ml::make_logreg(16, 4);
    util::Rng rng{3};
    ml::prime_and_init(proto, {16}, rng);
    MlService ml_service{proto, ml::DatasetView::all(dataset)};

    comm::Network::Config net;
    net.v2c.loss_probability = 0.0;
    net.v2x.loss_probability = 0.0;
    net.v2c.bandwidth_bytes_per_s = v2c_bandwidth;
    net.v2c.setup_latency_s = 1.0;
    net.v2x.setup_latency_s = 0.5;

    SimulatorConfig cfg;
    cfg.horizon_s = horizon;
    cfg.seed = 5;
    sim = std::make_unique<Simulator>(*fleet, net, std::move(ml_service), cfg);
    cloud = sim->add_cloud();
    v0 = sim->add_vehicle(0, ml::DatasetView{dataset, {0, 1, 2, 3}});
    v1 = sim->add_vehicle(1, ml::DatasetView{dataset, {4, 5, 6, 7, 8}});
    strategy = std::make_shared<ScriptedStrategy>();
    sim->set_strategy(strategy);
  }
};

// ----------------------------------------------------------- registration --

TEST(Simulator, AgentRegistrationRules) {
  SimFixture f;
  EXPECT_EQ(f.sim->agent_count(), 3U);
  EXPECT_EQ(f.sim->cloud_id(), f.cloud);
  EXPECT_EQ(f.sim->vehicle_ids().size(), 2U);
  EXPECT_EQ(f.sim->agent(f.v0).kind, AgentKind::kVehicle);
  EXPECT_EQ(f.sim->agent(f.cloud).kind, AgentKind::kCloudServer);
}

TEST(Simulator, RejectsDuplicateCloudAndBoundNodes) {
  SimFixture f;
  EXPECT_THROW(f.sim->add_cloud(), std::logic_error);
  EXPECT_THROW(f.sim->add_vehicle(0, ml::DatasetView{f.dataset, {}}),
               std::invalid_argument);
  EXPECT_THROW(f.sim->add_rsu(0), std::invalid_argument);  // node 0 = vehicle
}

// -------------------------------------------------------- message lifecycle --

TEST(Simulator, MessageDeliveredAfterTransferDuration) {
  SimFixture f;
  f.strategy->start = [&](strategy::StrategyContext& ctx) {
    Message msg;
    msg.from = f.cloud;
    msg.to = f.v0;
    msg.channel = comm::ChannelKind::kV2C;
    msg.tag = "ping";
    msg.extra_bytes = 2'000'000;  // 2 s at 1 MB/s + 1 s latency
    EXPECT_TRUE(ctx.send(std::move(msg)));
  };
  f.sim->run();
  ASSERT_EQ(f.strategy->received.size(), 1U);
  EXPECT_EQ(f.strategy->received[0].tag, "ping");
  // wire = header(256) + empty weights(4) + 2e6 bytes => 1 + 2.00026 s.
  const auto it = std::find_if(
      f.strategy->log.begin(), f.strategy->log.end(),
      [](const std::string& e) { return e.rfind("msg:ping", 0) == 0; });
  ASSERT_NE(it, f.strategy->log.end());
  const double at = std::stod(it->substr(9));
  EXPECT_NEAR(at, 3.0, 0.01);
}

TEST(Simulator, MidTransferPowerOffFailsDelivery) {
  // Vehicle 1 powers off at t=5; a slow transfer sent at t=0 arrives later.
  SimFixture f{/*off_at=*/5.0, /*horizon=*/100.0, /*v2c_bandwidth=*/1e5};
  f.strategy->start = [&](strategy::StrategyContext& ctx) {
    Message msg;
    msg.from = f.cloud;
    msg.to = f.v1;
    msg.channel = comm::ChannelKind::kV2C;
    msg.tag = "slow";
    msg.extra_bytes = 1'000'000;  // 10 s at 100 KB/s
    EXPECT_TRUE(ctx.send(std::move(msg)));
  };
  f.sim->run();
  EXPECT_TRUE(f.strategy->received.empty());
  ASSERT_EQ(f.strategy->failed.size(), 1U);
  EXPECT_EQ(f.strategy->failed[0].second, comm::LinkStatus::kReceiverOff);
  const auto& stats = f.sim->network().stats(comm::ChannelKind::kV2C);
  EXPECT_EQ(stats.transfers_attempted, 1U);
  EXPECT_EQ(stats.transfers_failed, 1U);
  EXPECT_EQ(stats.transfers_delivered, 0U);
}

TEST(Simulator, ImmediateLinkFailureReturnsFalse) {
  SimFixture f;
  f.strategy->start = [&](strategy::StrategyContext& ctx) {
    Message msg;
    msg.from = f.v0;
    msg.to = f.v1;
    msg.channel = comm::ChannelKind::kV2X;
    msg.tag = "too-far";
    // Default V2X range is 200 m and the vehicles are 100 m apart, so this
    // succeeds; shrink the range via a fresh fixture is cumbersome — instead
    // aim at an invalid pair: vehicle -> vehicle over V2C.
    msg.channel = comm::ChannelKind::kV2C;
    EXPECT_FALSE(ctx.send(std::move(msg)));
  };
  f.sim->run();
  EXPECT_TRUE(f.strategy->received.empty());
}

// ------------------------------------------------------- training lifecycle --

TEST(Simulator, TrainingLifecycleAndBusyState) {
  SimFixture f;
  f.strategy->start = [&](strategy::StrategyContext& ctx) {
    ctx.set_model(f.v0, ctx.fresh_model(), 0.0);
    EXPECT_TRUE(ctx.start_training(f.v0, 42));
    EXPECT_TRUE(ctx.is_busy(f.v0));
    EXPECT_FALSE(ctx.start_training(f.v0, 43));  // busy
  };
  f.sim->run();
  ASSERT_EQ(f.strategy->trainings.size(), 1U);
  const auto& [id, outcome] = f.strategy->trainings[0];
  EXPECT_EQ(id, f.v0);
  EXPECT_EQ(outcome.round_tag, 42);
  EXPECT_DOUBLE_EQ(outcome.data_amount, 4.0);
  EXPECT_GT(outcome.duration_s, 0.0);
  EXPECT_GT(outcome.report.samples_seen, 0U);
  EXPECT_FALSE(f.sim->agent(f.v0).model.empty());
  EXPECT_DOUBLE_EQ(f.sim->agent(f.v0).model_data_amount, 4.0);
}

TEST(Simulator, TrainingRejectedWithoutModelOrData) {
  SimFixture f;
  f.strategy->start = [&](strategy::StrategyContext& ctx) {
    EXPECT_FALSE(ctx.start_training(f.v0, 1));  // no model yet
    ctx.set_model(f.cloud, ctx.fresh_model(), 0.0);
    EXPECT_FALSE(ctx.start_training(f.cloud, 1));  // cloud has no data
  };
  f.sim->run();
  EXPECT_TRUE(f.strategy->trainings.empty());
}

TEST(Simulator, TrainingDiscardedWhenVehiclePowersOff) {
  SimFixture f{/*off_at=*/2.0};
  f.strategy->start = [&](strategy::StrategyContext& ctx) {
    ctx.set_model(f.v1, ctx.fresh_model(), 0.0);
    // OBU overhead is 1 s + compute; with logreg flops it finishes after
    // ~1 s... ensure the discard by powering off earlier than the overhead:
    // off_at=2.0, duration >= 1.0; use many epochs to stretch the duration.
    ml::TrainConfig slow = ctx.train_config();
    slow.epochs = 2000;  // ~>1 s simulated
    EXPECT_TRUE(ctx.start_training(f.v1, 7, slow));
  };
  f.sim->run();
  if (!f.strategy->training_failures.empty()) {
    EXPECT_EQ(f.strategy->training_failures[0], f.v1);
    EXPECT_TRUE(f.sim->agent(f.v1).model.empty() ||
                f.sim->metrics_view().counter("trainings_discarded") == 1.0);
  } else {
    // Duration shorter than the power-off: training completed legitimately.
    EXPECT_FALSE(f.strategy->trainings.empty());
  }
}

// -------------------------------------------------------- timers and stop --

TEST(Simulator, TimersFireInOrder) {
  SimFixture f;
  f.strategy->start = [&](strategy::StrategyContext& ctx) {
    ctx.schedule_timer(f.cloud, 20.0, 2);
    ctx.schedule_timer(f.cloud, 10.0, 1);
    ctx.schedule_timer(f.cloud, 30.0, 3);
  };
  f.strategy->timer_hook = [&](strategy::StrategyContext& ctx, AgentId,
                               int timer_id) {
    if (timer_id == 3) ctx.request_stop();
  };
  const auto report = f.sim->run();
  std::vector<std::string> timers;
  for (const auto& entry : f.strategy->log) {
    if (entry.rfind("timer:", 0) == 0) timers.push_back(entry);
  }
  EXPECT_EQ(timers,
            (std::vector<std::string>{"timer:1", "timer:2", "timer:3"}));
  EXPECT_TRUE(report.stopped_by_strategy);
  EXPECT_DOUBLE_EQ(report.sim_end_time_s, 30.0);
}

TEST(Simulator, HorizonStopsRun) {
  SimFixture f{1e9, /*horizon=*/50.0};
  const auto report = f.sim->run();
  EXPECT_LE(report.sim_end_time_s, 50.0);
  EXPECT_FALSE(report.stopped_by_strategy);
}

TEST(Simulator, RunTwiceThrows) {
  SimFixture f{1e9, 10.0};
  f.sim->run();
  EXPECT_THROW(f.sim->run(), std::logic_error);
}

// --------------------------------------------------- encounters and power --

TEST(Simulator, PowerEventsEmitted) {
  SimFixture f{/*off_at=*/50.0, /*horizon=*/100.0};
  f.sim->run();
  bool saw_off = false;
  for (const auto& e : f.strategy->log) {
    if (e == "off:" + std::to_string(f.v1)) saw_off = true;
  }
  EXPECT_TRUE(saw_off);
}

TEST(Simulator, EncounterBeginAndEndTrackProximityAndPower) {
  // Vehicles 100 m apart (within default 200 m V2X range); vehicle 1 turns
  // off at t=50 -> encounter must begin early and end when it powers off.
  SimFixture f{/*off_at=*/50.0, /*horizon=*/100.0};
  f.sim->run();
  const std::string begin =
      "enc+" + std::to_string(std::min(f.v0, f.v1)) + "-" +
      std::to_string(std::max(f.v0, f.v1));
  const std::string end =
      "enc-" + std::to_string(std::min(f.v0, f.v1)) + "-" +
      std::to_string(std::max(f.v0, f.v1));
  const auto b = std::find(f.strategy->log.begin(), f.strategy->log.end(),
                           begin);
  const auto e = std::find(f.strategy->log.begin(), f.strategy->log.end(),
                           end);
  ASSERT_NE(b, f.strategy->log.end());
  ASSERT_NE(e, f.strategy->log.end());
  EXPECT_LT(b, e);
  EXPECT_GE(f.sim->metrics_view().counter("encounters"), 1.0);
}

}  // namespace
}  // namespace roadrunner::core
