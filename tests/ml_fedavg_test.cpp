// Federated Averaging tests, including the associativity property the
// paper's OPP strategy depends on (§5.2: "FL uses Federated Averaging,
// which is mathematically associative, to aggregate a new model through
// intermediate aggregation").
#include "ml/fedavg.hpp"

#include <gtest/gtest.h>

#include "ml/models.hpp"
#include "test_util.hpp"

namespace roadrunner::ml {
namespace {

Weights random_weights(std::uint64_t seed) {
  util::Rng rng{seed};
  Network net = make_mlp(6, 8, 3);
  net.init_params(rng);
  return net.weights();
}

void expect_weights_near(const Weights& a, const Weights& b,
                         float tol = 1e-5F) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_TRUE(a[t].same_shape(b[t]));
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      ASSERT_NEAR(a[t][i], b[t][i], tol) << "tensor " << t << " elem " << i;
    }
  }
}

TEST(FedAvg, WeightedMeanOfScalars) {
  WeightedModel a{{Tensor{{1}, {1.0F}}}, 10.0};
  WeightedModel b{{Tensor{{1}, {4.0F}}}, 30.0};
  const WeightedModel avg = fed_avg({a, b});
  EXPECT_FLOAT_EQ(avg.weights[0][0], (1.0F * 10 + 4.0F * 30) / 40);
  EXPECT_DOUBLE_EQ(avg.data_amount, 40.0);
}

TEST(FedAvg, SingleContributionIsIdentity) {
  WeightedModel a{random_weights(1), 80.0};
  const WeightedModel avg = fed_avg({a});
  expect_weights_near(avg.weights, a.weights, 1e-7F);
  EXPECT_DOUBLE_EQ(avg.data_amount, 80.0);
}

TEST(FedAvg, ZeroWeightContributionIgnored) {
  WeightedModel a{random_weights(1), 50.0};
  WeightedModel b{random_weights(2), 0.0};
  const WeightedModel avg = fed_avg({a, b});
  expect_weights_near(avg.weights, a.weights, 1e-7F);
}

TEST(FedAvg, ValidatesInput) {
  EXPECT_THROW(fed_avg(std::vector<WeightedModel>{}), std::invalid_argument);
  WeightedModel a{random_weights(1), 10.0};
  WeightedModel negative{random_weights(2), -1.0};
  EXPECT_THROW(fed_avg({a, negative}), std::invalid_argument);
  WeightedModel zero{random_weights(2), 0.0};
  EXPECT_THROW(fed_avg({zero}), std::invalid_argument);
  WeightedModel mismatched{{Tensor{{2}}}, 5.0};
  EXPECT_THROW(fed_avg({a, mismatched}), std::invalid_argument);
}

// The OPP-critical property: aggregating intermediate aggregates equals the
// flat aggregate (paper Fig. 3 step 7), for arbitrary groupings.
class FedAvgAssociativity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FedAvgAssociativity, HierarchicalEqualsFlat) {
  util::Rng rng{GetParam()};
  const std::size_t n = 2 + rng.next_below(6);
  std::vector<WeightedModel> contributions;
  for (std::size_t i = 0; i < n; ++i) {
    contributions.push_back(WeightedModel{
        random_weights(GetParam() * 100 + i),
        static_cast<double>(20 + rng.next_below(100)),
    });
  }
  const WeightedModel flat = fed_avg(contributions);

  // Random split into two groups, each pre-aggregated (as reporters do).
  std::vector<WeightedModel> group_a, group_b;
  for (std::size_t i = 0; i < n; ++i) {
    (i == 0 || rng.bernoulli(0.5) ? group_a : group_b)
        .push_back(contributions[i]);
  }
  std::vector<WeightedModel> partials;
  partials.push_back(fed_avg(group_a));
  if (!group_b.empty()) partials.push_back(fed_avg(group_b));
  const WeightedModel hierarchical = fed_avg(partials);

  expect_weights_near(hierarchical.weights, flat.weights, 5e-5F);
  EXPECT_NEAR(hierarchical.data_amount, flat.data_amount, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Groupings, FedAvgAssociativity,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(FedAvg, PairwiseChainEqualsFlatForEqualGrouping) {
  // A reporter folding returns in one-by-one (pairwise fed_avg chain) must
  // match the flat average of all of them.
  std::vector<WeightedModel> all;
  for (std::uint64_t i = 0; i < 5; ++i) {
    all.push_back(WeightedModel{random_weights(i), 10.0 * (i + 1)});
  }
  WeightedModel chained = all[0];
  for (std::size_t i = 1; i < all.size(); ++i) {
    chained = fed_avg(chained, all[i]);
  }
  const WeightedModel flat = fed_avg(all);
  expect_weights_near(chained.weights, flat.weights, 5e-5F);
}

}  // namespace
}  // namespace roadrunner::ml
