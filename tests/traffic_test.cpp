// Traffic subsystem tests: plan grammar (parsing, unknown-key rejection,
// dense numbering, regime gating), the queue-aware fleet generator's
// guarantees (free-flow degenerates to make_city_fleet bit-identically,
// signal phases are deterministic, queues drain in FIFO order, vehicles
// that never stop keep bit-identical tracks, platoon followers are
// headway-shifted leader replays), and the end-to-end contracts: a
// signalized experiment exports traffic_*/platoon_* counters and measurably
// shifts the learning outcome vs free-flow, mid-red-phase snapshots
// round-trip bit-identically (format v5), the committed v4 golden snapshot
// still restores, forks cannot swap the traffic plan under saved state, and
// traffic campaigns stay byte-identical across worker counts and across the
// distributed coordinator path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "campaign/spec.hpp"
#include "checkpoint/checkpoint.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "mobility/city_model.hpp"
#include "scenario/experiment.hpp"
#include "traffic/traffic_model.hpp"
#include "traffic/traffic_plan.hpp"
#include "util/ini.hpp"

#ifndef RR_TEST_DATA_DIR
#define RR_TEST_DATA_DIR "tests/data"
#endif

namespace roadrunner {
namespace {

namespace fs = std::filesystem;

util::IniFile parse(const std::string& text) {
  return util::IniFile::parse(text);
}

// ------------------------------------------------------------ parsing -----

TEST(TrafficPlanParse, EmptyIniYieldsUnconfiguredPlan) {
  const traffic::TrafficPlan plan =
      traffic::plan_from_ini(parse("[scenario]\nvehicles = 3\n"));
  EXPECT_FALSE(plan.configured());
  EXPECT_FALSE(plan.active());
  EXPECT_TRUE(plan.signals.empty());
  EXPECT_EQ(plan.platoons.count, 0U);
}

TEST(TrafficPlanParse, FullGrammarRoundTrip) {
  const traffic::TrafficPlan plan = traffic::plan_from_ini(parse(R"(
[traffic]
regime = platooned
headway_s = 2.0
startup_s = 1.5
spacing_m = 6.0
[traffic.0]
gx = 2
gy = 3
controller = fixed
green_ns_s = 25
green_ew_s = 35
offset_s = 10
[traffic.1]
gx = 4
gy = 1
controller = actuated
min_green_s = 6
max_green_s = 50
extend_s = 3
[platoon]
count = 2
size = 3
headway_s = 0.8
join_probability = 0.5
leave_probability = 0.25
split_probability = 0.1
)"));
  EXPECT_EQ(plan.regime, traffic::Regime::kPlatooned);
  EXPECT_DOUBLE_EQ(plan.headway_s, 2.0);
  EXPECT_DOUBLE_EQ(plan.startup_s, 1.5);
  EXPECT_DOUBLE_EQ(plan.spacing_m, 6.0);
  ASSERT_EQ(plan.signals.size(), 2U);
  EXPECT_EQ(plan.signals[0].gx, 2);
  EXPECT_EQ(plan.signals[0].gy, 3);
  EXPECT_EQ(plan.signals[0].controller, traffic::ControllerKind::kFixedTime);
  EXPECT_DOUBLE_EQ(plan.signals[0].green_ns_s, 25.0);
  EXPECT_DOUBLE_EQ(plan.signals[0].green_ew_s, 35.0);
  EXPECT_DOUBLE_EQ(plan.signals[0].offset_s, 10.0);
  EXPECT_EQ(plan.signals[1].controller, traffic::ControllerKind::kActuated);
  EXPECT_DOUBLE_EQ(plan.signals[1].min_green_s, 6.0);
  EXPECT_DOUBLE_EQ(plan.signals[1].max_green_s, 50.0);
  EXPECT_DOUBLE_EQ(plan.signals[1].extend_s, 3.0);
  EXPECT_EQ(plan.platoons.count, 2U);
  EXPECT_EQ(plan.platoons.size, 3U);
  EXPECT_DOUBLE_EQ(plan.platoons.headway_s, 0.8);
  EXPECT_TRUE(plan.configured());
  EXPECT_TRUE(plan.signals_active());
  EXPECT_TRUE(plan.platoons_active());
}

TEST(TrafficPlanParse, RegimeGatesActivation) {
  const std::string sections = R"(
[traffic.0]
gx = 1
gy = 1
[platoon]
count = 1
size = 2
)";
  const auto with = [&](const std::string& regime) {
    return traffic::plan_from_ini(
        parse("[traffic]\nregime = " + regime + "\n" + sections));
  };
  const traffic::TrafficPlan free_flow = with("free_flow");
  EXPECT_TRUE(free_flow.configured());
  EXPECT_FALSE(free_flow.signals_active());
  EXPECT_FALSE(free_flow.platoons_active());
  EXPECT_FALSE(free_flow.active());

  const traffic::TrafficPlan signalized = with("signalized");
  EXPECT_TRUE(signalized.signals_active());
  EXPECT_FALSE(signalized.platoons_active());  // isolates the queueing effect

  const traffic::TrafficPlan platooned = with("platooned");
  EXPECT_TRUE(platooned.signals_active());
  EXPECT_TRUE(platooned.platoons_active());

  const traffic::TrafficPlan all = with("auto");
  EXPECT_TRUE(all.signals_active());
  EXPECT_TRUE(all.platoons_active());
}

TEST(TrafficPlanParse, RejectsUnknownKeysAndKinds) {
  EXPECT_THROW(traffic::plan_from_ini(parse("[traffic]\nheadway = 2\n")),
               std::runtime_error);
  EXPECT_THROW(traffic::plan_from_ini(parse("[traffic]\nregime = chaos\n")),
               std::runtime_error);
  EXPECT_THROW(traffic::plan_from_ini(
                   parse("[traffic.0]\ngx = 1\ngy = 1\ncolour = red\n")),
               std::runtime_error);
  EXPECT_THROW(traffic::plan_from_ini(parse(
                   "[traffic.0]\ngx = 1\ngy = 1\ncontroller = psychic\n")),
               std::runtime_error);
  EXPECT_THROW(
      traffic::plan_from_ini(parse("[platoon]\ncount = 1\nsze = 3\n")),
      std::runtime_error);
}

TEST(TrafficPlanParse, RejectsNumberingGapAndDuplicates) {
  // [traffic.0] + [traffic.2] skips 1: rejected like fault/adversary plans.
  EXPECT_THROW(traffic::plan_from_ini(parse(R"(
[traffic.0]
gx = 1
gy = 1
[traffic.2]
gx = 2
gy = 2
)")),
               std::runtime_error);
  // Two signals on the same intersection make queue ownership ambiguous.
  EXPECT_THROW(traffic::plan_from_ini(parse(R"(
[traffic.0]
gx = 1
gy = 1
[traffic.1]
gx = 1
gy = 1
)")),
               std::runtime_error);
}

TEST(TrafficPlanParse, ValidatesPlatoonShape) {
  EXPECT_THROW(traffic::plan_from_ini(parse("[platoon]\ncount = -1\n")),
               std::runtime_error);
  // A "platoon" of one vehicle is just a vehicle.
  EXPECT_THROW(
      traffic::plan_from_ini(parse("[platoon]\ncount = 1\nsize = 1\n")),
      std::runtime_error);
}

// ------------------------------------------------------- fleet generation --

mobility::CityModelConfig test_city(std::uint64_t seed = 11) {
  mobility::CityModelConfig city;
  city.city_size_m = 600.0;   // 5x5 intersection grid (block 150 m)
  city.block_size_m = 150.0;
  city.duration_s = 1800.0;
  city.seed = seed;
  return city;
}

traffic::TrafficPlan signal_plan() {
  return traffic::plan_from_ini(parse(R"(
[traffic]
regime = signalized
[traffic.0]
gx = 1
gy = 1
green_ns_s = 20
green_ew_s = 20
[traffic.1]
gx = 2
gy = 2
controller = actuated
[traffic.2]
gx = 3
gy = 1
[traffic.3]
gx = 1
gy = 3
[traffic.4]
gx = 2
gy = 1
controller = actuated
)"));
}

bool same_track(const mobility::VehicleTrack& a,
                const mobility::VehicleTrack& b) {
  const auto& sa = a.trace.samples();
  const auto& sb = b.trace.samples();
  if (sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].time_s != sb[i].time_s || !(sa[i].position == sb[i].position))
      return false;
  }
  const auto& ia = a.ignition.intervals();
  const auto& ib = b.ignition.intervals();
  if (ia.size() != ib.size()) return false;
  for (std::size_t i = 0; i < ia.size(); ++i) {
    if (ia[i].start_s != ib[i].start_s || ia[i].end_s != ib[i].end_s)
      return false;
  }
  return true;
}

TEST(TrafficFleet, InactivePlanIsBitIdenticalToCityFleet) {
  const auto city = test_city();
  traffic::TrafficPlan plan = signal_plan();
  plan.regime = traffic::Regime::kFreeFlow;  // configured but inert
  const traffic::TrafficFleet shaped =
      traffic::make_traffic_fleet(16, city, plan);
  const mobility::FleetModel baseline = mobility::make_city_fleet(16, city);
  EXPECT_TRUE(shaped.timeline.configured);
  EXPECT_TRUE(shaped.timeline.empty());
  EXPECT_EQ(shaped.timeline.total_stops, 0U);
  ASSERT_EQ(shaped.fleet.vehicle_count(), baseline.vehicle_count());
  for (std::size_t v = 0; v < baseline.vehicle_count(); ++v) {
    EXPECT_TRUE(same_track(shaped.fleet.vehicle(v), baseline.vehicle(v)))
        << "vehicle " << v;
  }
}

TEST(TrafficFleet, SignalizedFleetStopsAndIsDeterministic) {
  const auto city = test_city();
  const traffic::TrafficPlan plan = signal_plan();
  const traffic::TrafficFleet a = traffic::make_traffic_fleet(24, city, plan);
  const traffic::TrafficFleet b = traffic::make_traffic_fleet(24, city, plan);

  EXPECT_EQ(a.timeline.signal_count, 5U);
  EXPECT_GT(a.timeline.phases.size(), 10U);
  EXPECT_GT(a.timeline.total_stops, 0U);
  EXPECT_GT(a.timeline.max_queue_len, 0U);
  EXPECT_GT(a.timeline.total_stop_time_s, 0.0);
  EXPECT_EQ(a.timeline.total_stops, a.timeline.stops.size());

  // Same inputs, same timeline — field for field.
  ASSERT_EQ(a.timeline.phases.size(), b.timeline.phases.size());
  for (std::size_t i = 0; i < a.timeline.phases.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timeline.phases[i].time_s, b.timeline.phases[i].time_s);
    EXPECT_EQ(a.timeline.phases[i].signal, b.timeline.phases[i].signal);
    EXPECT_EQ(a.timeline.phases[i].ns_green, b.timeline.phases[i].ns_green);
    EXPECT_EQ(a.timeline.phases[i].ns_queue, b.timeline.phases[i].ns_queue);
    EXPECT_EQ(a.timeline.phases[i].ew_queue, b.timeline.phases[i].ew_queue);
  }
  ASSERT_EQ(a.timeline.stops.size(), b.timeline.stops.size());
  for (std::size_t i = 0; i < a.timeline.stops.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timeline.stops[i].arrive_s,
                     b.timeline.stops[i].arrive_s);
    EXPECT_DOUBLE_EQ(a.timeline.stops[i].depart_s,
                     b.timeline.stops[i].depart_s);
    EXPECT_EQ(a.timeline.stops[i].vehicle, b.timeline.stops[i].vehicle);
  }
  for (std::size_t v = 0; v < a.fleet.vehicle_count(); ++v) {
    EXPECT_TRUE(same_track(a.fleet.vehicle(v), b.fleet.vehicle(v)));
  }

  // Phase changes are time-ordered: the runtime schedules them by index.
  for (std::size_t i = 1; i < a.timeline.phases.size(); ++i) {
    EXPECT_LE(a.timeline.phases[i - 1].time_s, a.timeline.phases[i].time_s);
  }
}

TEST(TrafficFleet, QueuesDrainInFifoOrder) {
  const traffic::TrafficFleet shaped =
      traffic::make_traffic_fleet(24, test_city(), signal_plan());
  ASSERT_GT(shaped.timeline.stops.size(), 0U);
  // Per approach (signal, axis): sort stops by arrival; departures must
  // follow the same order — nobody overtakes inside the queue.
  std::map<std::pair<std::uint32_t, bool>, std::vector<traffic::StopRecord>>
      approaches;
  for (const traffic::StopRecord& stop : shaped.timeline.stops) {
    EXPECT_GT(stop.depart_s, stop.arrive_s);
    approaches[{stop.signal, stop.ns_axis}].push_back(stop);
  }
  for (auto& [key, stops] : approaches) {
    std::sort(stops.begin(), stops.end(),
              [](const traffic::StopRecord& a, const traffic::StopRecord& b) {
                return a.arrive_s < b.arrive_s;
              });
    for (std::size_t i = 1; i < stops.size(); ++i) {
      EXPECT_LT(stops[i - 1].depart_s, stops[i].depart_s)
          << "overtake at signal " << key.first;
    }
  }
}

TEST(TrafficFleet, UnstoppedVehiclesKeepBitIdenticalTracks) {
  const auto city = test_city();
  const traffic::TrafficFleet shaped =
      traffic::make_traffic_fleet(24, city, signal_plan());
  const mobility::FleetModel baseline = mobility::make_city_fleet(24, city);
  std::vector<bool> stopped(24, false);
  for (const traffic::StopRecord& stop : shaped.timeline.stops) {
    stopped[stop.vehicle] = true;
  }
  std::size_t untouched = 0;
  for (std::size_t v = 0; v < 24; ++v) {
    if (stopped[v]) continue;
    ++untouched;
    EXPECT_TRUE(same_track(shaped.fleet.vehicle(v), baseline.vehicle(v)))
        << "vehicle " << v << " never stopped but its track changed";
  }
  EXPECT_GT(untouched, 0U);  // the grid is sparse enough that someone cruises
}

TEST(TrafficFleet, RejectsOffGridSignalsAndOversizedPlatoons) {
  const auto city = test_city();
  traffic::TrafficPlan off_grid;
  off_grid.signals.push_back({.gx = 7, .gy = 0});  // grid is 5x5
  EXPECT_THROW(traffic::make_traffic_fleet(8, city, off_grid),
               std::invalid_argument);

  traffic::TrafficPlan too_many;
  too_many.platoons.count = 3;
  too_many.platoons.size = 4;  // 12 platoon vehicles out of 8
  EXPECT_THROW(traffic::make_traffic_fleet(8, city, too_many),
               std::invalid_argument);
}

TEST(TrafficFleet, FollowersAreHeadwayShiftedLeaderReplays) {
  const auto city = test_city(29);
  traffic::TrafficPlan plan;
  plan.regime = traffic::Regime::kPlatooned;
  plan.platoons.count = 2;
  plan.platoons.size = 3;
  plan.platoons.headway_s = 1.25;
  const traffic::TrafficFleet shaped =
      traffic::make_traffic_fleet(12, city, plan);
  EXPECT_EQ(shaped.timeline.platoon_count, 2U);
  // No join/leave/split probability: exactly one formation per platoon.
  ASSERT_EQ(shaped.timeline.maneuvers.size(), 2U);
  for (const traffic::Maneuver& m : shaped.timeline.maneuvers) {
    EXPECT_EQ(m.kind, traffic::ManeuverKind::kFormation);
    EXPECT_EQ(m.size_after, 3U);
  }
  // Platoons own the tail of the vehicle range: leaders at 6 and 9.
  for (std::size_t p = 0; p < 2; ++p) {
    const std::size_t leader = 6 + p * 3;
    const mobility::VehicleTrack& lead = shaped.fleet.vehicle(leader);
    for (std::size_t k = 1; k < 3; ++k) {
      const double shift = static_cast<double>(k) * 1.25;
      const mobility::VehicleTrack& follower =
          shaped.fleet.vehicle(leader + k);
      const auto& samples = follower.trace.samples();
      ASSERT_GT(samples.size(), 2U);
      for (std::size_t i = 1; i < samples.size(); ++i) {
        const mobility::Position expect =
            lead.trace.position_at(samples[i].time_s - shift);
        EXPECT_NEAR(samples[i].position.x, expect.x, 1e-9);
        EXPECT_NEAR(samples[i].position.y, expect.y, 1e-9);
      }
    }
  }
}

TEST(TrafficFleet, ManeuverSizesStayConsistent) {
  const auto city = test_city(31);
  traffic::TrafficPlan plan;
  plan.regime = traffic::Regime::kPlatooned;
  plan.platoons.count = 2;
  plan.platoons.size = 4;
  plan.platoons.join_probability = 1.0;
  plan.platoons.leave_probability = 1.0;
  plan.platoons.split_probability = 1.0;
  const traffic::TrafficFleet shaped =
      traffic::make_traffic_fleet(16, city, plan);
  // join + leave + split certain: 4 maneuvers per platoon.
  EXPECT_EQ(shaped.timeline.maneuvers.size(), 8U);
  std::map<std::uint32_t, std::uint32_t> size_of;
  for (const traffic::Maneuver& m : shaped.timeline.maneuvers) {
    switch (m.kind) {
      case traffic::ManeuverKind::kFormation:
        size_of[m.platoon] = m.size_after;
        break;
      case traffic::ManeuverKind::kJoin:
        EXPECT_EQ(m.size_after, size_of[m.platoon] + 1);
        size_of[m.platoon] = m.size_after;
        break;
      case traffic::ManeuverKind::kLeave:
        EXPECT_EQ(m.size_after, size_of[m.platoon] - 1);
        size_of[m.platoon] = m.size_after;
        break;
      case traffic::ManeuverKind::kSplit:
        EXPECT_LT(m.size_after, size_of[m.platoon]);
        size_of[m.platoon] = m.size_after;
        break;
    }
    EXPECT_GE(m.size_after, 1U);  // the leader never leaves its own platoon
  }
}

// -------------------------------------------------------- experiments -----

std::string traffic_ini(const std::string& regime) {
  return R"([scenario]
vehicles = 16
rsus = 1
seed = 37
horizon_s = 900

[city]
size_m = 600
block_m = 150
duration_s = 900
initial_on = 1.0

[workload]
kind = telemetry
objective = density
dims = 3
components = 2
rate_per_s = 1.0
recent_window = 120
eval_every_s = 60
eval_samples = 100

[train]
epochs = 1

[strategy]
name = federated
rounds = 15
participants = 4
round_duration_s = 60

[traffic]
regime = )" + regime +
         R"(
[traffic.0]
gx = 1
gy = 1
green_ns_s = 20
green_ew_s = 20
[traffic.1]
gx = 2
gy = 2
controller = actuated
[traffic.2]
gx = 3
gy = 1
[traffic.3]
gx = 1
gy = 3

[platoon]
count = 2
size = 3
join_probability = 1.0
leave_probability = 1.0
split_probability = 1.0
)";
}

TEST(TrafficExperiment, SignalizedRunExportsTrafficCounters) {
  const scenario::RunResult result =
      scenario::run_experiment(parse(traffic_ini("platooned")));
  EXPECT_DOUBLE_EQ(result.metrics.counter("traffic_signals"), 4.0);
  EXPECT_GT(result.metrics.counter("traffic_phase_changes"), 0.0);
  EXPECT_GT(result.metrics.counter("traffic_total_stops"), 0.0);
  EXPECT_GT(result.metrics.counter("traffic_total_stop_time_s"), 0.0);
  EXPECT_GT(result.metrics.counter("traffic_max_queue_len"), 0.0);
  EXPECT_GT(result.metrics.counter("traffic_mean_stop_s"), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("platoon_count"), 2.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("platoon_maneuvers"), 8.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("platoon_joins"), 2.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("platoon_leaves"), 2.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("platoon_splits"), 2.0);
  ASSERT_TRUE(result.metrics.has_series("traffic_queue_len"));
  ASSERT_TRUE(result.metrics.has_series("platoon_members"));
}

TEST(TrafficExperiment, FreeFlowKeepsCountersAtZeroButPresent) {
  // regime=free_flow must export the same counter set (zeros), so a regime
  // sweep aggregates into one CSV column set.
  const scenario::RunResult result =
      scenario::run_experiment(parse(traffic_ini("free_flow")));
  EXPECT_DOUBLE_EQ(result.metrics.counter("traffic_total_stops"), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("traffic_phase_changes"), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("platoon_maneuvers"), 0.0);
  const std::vector<std::string> names = result.metrics.counter_names();
  const auto has = [&](const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("traffic_signals"));
  EXPECT_TRUE(has("traffic_max_queue_len"));
  EXPECT_TRUE(has("platoon_count"));
  EXPECT_TRUE(has("platoon_members_final"));
}

TEST(TrafficExperiment, SignalsMeasurablyShiftTheOutcome) {
  const scenario::RunResult free_flow =
      scenario::run_experiment(parse(traffic_ini("free_flow")));
  const scenario::RunResult signalized =
      scenario::run_experiment(parse(traffic_ini("signalized")));
  // Queueing reshapes encounter opportunities: the metrics streams cannot
  // be byte-identical, and the final score moves.
  std::ostringstream a, b;
  free_flow.metrics.export_csv(a);
  signalized.metrics.export_csv(b);
  EXPECT_NE(a.str(), b.str());
  EXPECT_NE(free_flow.final_accuracy, signalized.final_accuracy);
}

TEST(TrafficExperiment, SameSeedSameMetricsBytes) {
  const auto ini = parse(traffic_ini("platooned"));
  const scenario::RunResult a = scenario::run_experiment(ini);
  const scenario::RunResult b = scenario::run_experiment(ini);
  std::ostringstream csv_a, csv_b;
  a.metrics.export_csv(csv_a);
  b.metrics.export_csv(csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(TrafficExperiment, RejectsTrafficPlanOnExternalFleet) {
  auto cfg = scenario::scenario_from_ini(parse(traffic_ini("signalized")));
  cfg.external_fleet = std::make_shared<mobility::FleetModel>(
      mobility::make_city_fleet(16, test_city()));
  EXPECT_THROW(scenario::Scenario{cfg}, std::invalid_argument);
}

// ---------------------------------------------- campaign determinism ------

campaign::CampaignSpec traffic_spec() {
  campaign::CampaignSpec spec;
  spec.name = "traffic_determinism";
  spec.base = util::IniFile::parse(traffic_ini("auto"));
  spec.grid = {
      {"traffic", "regime", {"free_flow", "signalized", "platooned"}}};
  spec.seeds_per_point = 1;
  spec.base_seed = 41;
  return spec;
}

std::string records_bytes(const std::vector<campaign::JobRecord>& records) {
  std::string out;
  for (campaign::JobRecord record : records) {
    record.wall_seconds = 0.0;  // host wall-clock: outside the contract
    dist::encode_record(record, out);
  }
  return out;
}

TEST(TrafficCampaign, WorkerCountDoesNotChangeTheBytes) {
  const campaign::CampaignSpec spec = traffic_spec();
  campaign::EngineOptions serial;
  serial.workers = 1;
  campaign::EngineOptions wide;
  wide.workers = 4;
  const campaign::CampaignResult one = campaign::run_campaign(spec, serial);
  const campaign::CampaignResult four = campaign::run_campaign(spec, wide);
  ASSERT_EQ(one.records.size(), 3U);
  EXPECT_EQ(records_bytes(one.records), records_bytes(four.records));
  std::ostringstream a, b;
  campaign::write_aggregate_csv(a, campaign::summarize(one.records));
  campaign::write_aggregate_csv(b, campaign::summarize(four.records));
  EXPECT_EQ(a.str(), b.str());
}

TEST(TrafficCampaign, DistributedRunMatchesInProcessEngine) {
  const campaign::CampaignSpec spec = traffic_spec();
  campaign::EngineOptions local;
  local.workers = 2;
  const campaign::CampaignResult reference =
      campaign::run_campaign(spec, local);

  dist::CoordinatorOptions copts;
  copts.host = "127.0.0.1";
  dist::Coordinator coordinator{spec, copts};
  const std::uint16_t port = coordinator.port();
  ASSERT_GT(port, 0);
  dist::CoordinatorResult result;
  std::thread serve_thread{[&] { result = coordinator.serve(); }};
  dist::WorkerOptions wopts;
  wopts.host = "127.0.0.1";
  wopts.port = port;
  wopts.name = "traffic-worker";
  const dist::WorkerReport report = dist::run_worker(wopts);
  serve_thread.join();

  EXPECT_EQ(report.shutdown_reason, "campaign complete");
  ASSERT_EQ(result.records.size(), reference.records.size());
  EXPECT_EQ(records_bytes(result.records), records_bytes(reference.records));
}

// ----------------------------------------------------------- checkpoint ---

TEST(TrafficCheckpoint, MidRedPhaseRoundTripIsBitIdentical) {
  const auto ini = parse(traffic_ini("platooned"));
  const fs::path snap = fs::temp_directory_path() / "rr_traffic_rt.rrck";
  fs::remove(snap);

  auto run_full = [&](const std::string& snap_path) {
    scenario::Scenario scn{scenario::scenario_from_ini(ini)};
    auto strategy = scenario::strategy_from_ini(ini);
    auto sim = scn.make_simulator();
    sim->set_strategy(strategy);
    bool saved = false;
    if (!snap_path.empty()) {
      // 450 s: inside the signal cycle (every axis has pending phase
      // events), platoon maneuvers split across the save point — the live
      // phase vector, queue gauges, and platoon sizes are all mid-flight.
      sim->set_autosave(450.0, [&](core::Simulator& s) {
        if (saved) return;
        saved = true;
        checkpoint::save(s, ini, snap_path);
      });
    }
    (void)sim->run();
    std::ostringstream trace, metrics;
    sim->trace().export_csv(trace);
    sim->metrics_view().export_csv(metrics);
    return std::pair<std::string, std::string>{trace.str(), metrics.str()};
  };

  const auto uninterrupted = run_full({});
  const auto snapshotting = run_full(snap.string());
  EXPECT_EQ(uninterrupted.first, snapshotting.first);
  ASSERT_TRUE(fs::exists(snap));
  const checkpoint::SnapshotInfo info = checkpoint::peek(snap.string());
  EXPECT_EQ(info.format_version, checkpoint::kFormatVersion);

  checkpoint::RestoredRun resumed = checkpoint::restore(snap.string());
  (void)resumed.simulator->run();
  std::ostringstream trace, metrics;
  resumed.simulator->trace().export_csv(trace);
  resumed.simulator->metrics_view().export_csv(metrics);
  EXPECT_EQ(uninterrupted.first, trace.str());
  EXPECT_EQ(uninterrupted.second, metrics.str());
  fs::remove(snap);
}

TEST(TrafficCheckpoint, ForkCannotSwapTheTrafficPlan) {
  const auto ini = parse(traffic_ini("platooned"));
  const fs::path snap = fs::temp_directory_path() / "rr_traffic_fork.rrck";
  fs::remove(snap);
  {
    scenario::Scenario scn{scenario::scenario_from_ini(ini)};
    auto sim = scn.make_simulator();
    sim->set_strategy(scenario::strategy_from_ini(ini));
    checkpoint::save(*sim, ini, snap.string());
  }
  // Deactivating the plan under saved signal/queue state must be rejected:
  // the snapshot carries a traffic section the rebuilt run cannot absorb.
  EXPECT_THROW(
      checkpoint::fork(snap.string(), {{"traffic.regime", "free_flow"}}),
      std::runtime_error);
  // Harmless overrides still fork fine.
  checkpoint::RestoredRun what_if =
      checkpoint::fork(snap.string(), {{"network.v2c_loss", "0.2"}});
  EXPECT_NE(what_if.simulator, nullptr);
  fs::remove(snap);
}

TEST(TrafficCheckpoint, PriorFormatGoldenSnapshotStillRestores) {
  // Committed fixture generated by the last release that wrote format v4,
  // BEFORE the traffic section existed. Restoring it and finishing must
  // reproduce a fresh run of its embedded experiment byte-for-byte: format
  // v5 readers stay backward compatible one version.
  const fs::path dir{RR_TEST_DATA_DIR};
  const fs::path snap = dir / "checkpoint_v4_golden.rrck";
  const fs::path ini_path = dir / "checkpoint_v4_golden.ini";
  ASSERT_TRUE(fs::exists(snap)) << snap;
  ASSERT_TRUE(fs::exists(ini_path)) << ini_path;

  const checkpoint::SnapshotInfo info = checkpoint::peek(snap.string());
  EXPECT_EQ(info.format_version, 4U);
  EXPECT_LT(info.format_version, checkpoint::kFormatVersion);

  checkpoint::RestoredRun resumed = checkpoint::restore(snap.string());
  const scenario::RunResult finished = resumed.finish();
  const scenario::RunResult fresh =
      scenario::run_experiment(util::IniFile::load(ini_path.string()));
  EXPECT_DOUBLE_EQ(finished.final_accuracy, fresh.final_accuracy);
  std::ostringstream a, b;
  finished.metrics.export_csv(a);
  fresh.metrics.export_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace roadrunner
