#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace roadrunner::util {
namespace {

TEST(AsciiChart, EmptyInputYieldsEmptyString) {
  EXPECT_EQ(ascii_chart({}), "");
  EXPECT_EQ(ascii_chart({{"empty", '*', {}}}), "");
}

TEST(AsciiChart, ContainsMarkersAxesAndLegend) {
  PlotSeries s;
  s.label = "accuracy";
  s.marker = 'a';
  s.points = {{0.0, 0.1}, {50.0, 0.5}, {100.0, 0.9}};
  const std::string chart = ascii_chart({s});
  EXPECT_NE(chart.find('a'), std::string::npos);
  EXPECT_NE(chart.find("a = accuracy"), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);   // axis corner
  EXPECT_NE(chart.find("100"), std::string::npos);  // x-max label
}

TEST(AsciiChart, RisingSeriesPutsLaterPointsHigher) {
  PlotSeries s;
  s.label = "ramp";
  s.marker = '*';
  s.points = {{0.0, 0.0}, {10.0, 1.0}};
  PlotOptions opt;
  opt.width = 20;
  opt.height = 10;
  opt.y_max = 1.0;
  const std::string chart = ascii_chart({s}, opt);
  // The first marker row (top of chart) must hold the later (x=10) point:
  // its column index is the last one; the x=0 point sits on the bottom row.
  const auto first_star = chart.find('*');
  const auto last_star = chart.rfind('*');
  ASSERT_NE(first_star, std::string::npos);
  // Top row contains the high-y point at the right edge; bottom row the
  // low-y point at the left edge — so the first '*' in reading order must
  // appear at a larger column than the last one.
  const auto line_of = [&](std::size_t pos) {
    return std::count(chart.begin(),
                      chart.begin() + static_cast<std::ptrdiff_t>(pos), '\n');
  };
  EXPECT_LT(line_of(first_star), line_of(last_star));
}

TEST(AsciiChart, ClampsOutOfRangeValues) {
  PlotSeries s;
  s.label = "spiky";
  s.points = {{0.0, -5.0}, {1.0, 99.0}};
  PlotOptions opt;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  EXPECT_NO_THROW(ascii_chart({s}, opt));
}

TEST(AsciiChart, MultipleSeriesUseTheirMarkers) {
  PlotSeries a{"a", 'x', {{0, 0.2}, {1, 0.3}}};
  PlotSeries b{"b", 'y', {{0, 0.7}, {1, 0.8}}};
  const std::string chart = ascii_chart({a, b});
  EXPECT_NE(chart.find('x'), std::string::npos);
  EXPECT_NE(chart.find('y'), std::string::npos);
}

}  // namespace
}  // namespace roadrunner::util
