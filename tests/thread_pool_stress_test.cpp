// Stress tests for util::ThreadPool's exception path and completion
// handshake. These are the scenarios the ThreadSanitizer CI lane watches:
// a throwing task racing long-running tasks, the first-exception-wins
// contract, and the pool staying deadlock-free and reusable afterwards.
// The 100x repetition is the point — the original completion handshake had
// a narrow window (notify after the waiter could already have destroyed
// the condition variable) that only a tight loop makes observable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "util/thread_pool.hpp"

namespace roadrunner::util {
namespace {

TEST(ThreadPoolStress, FirstExceptionWinsNoDeadlockPoolReusable) {
  ThreadPool pool{4};
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> executed{0};
    std::atomic<int> throwers_started{0};
    try {
      pool.parallel_for(32, [&](std::size_t i) {
        executed.fetch_add(1);
        if (i % 7 == 3) {
          // Several tasks throw; exactly one exception may escape.
          const int order = throwers_started.fetch_add(1);
          throw std::runtime_error{"boom " + std::to_string(order)};
        }
        // Long tasks interleave with the throwers: spin a little so the
        // exception is in flight while work is still being claimed.
        volatile std::size_t sink = 0;
        for (std::size_t k = 0; k < 2000; ++k) sink += k;
        (void)sink;
      });
      FAIL() << "parallel_for must rethrow (round " << round << ")";
    } catch (const std::runtime_error& e) {
      // First exception wins: the message is one of the thrown ones.
      EXPECT_EQ(std::string{e.what()}.rfind("boom ", 0), 0U) << e.what();
    }
    // Exceptions do not cancel remaining indices: every task ran.
    EXPECT_EQ(executed.load(), 32) << "round " << round;
    EXPECT_GE(throwers_started.load(), 1) << "round " << round;

    // The pool must be immediately reusable with no residue: a clean
    // follow-up batch completes and touches every index exactly once.
    std::atomic<int> clean{0};
    pool.parallel_for(16, [&](std::size_t) { clean.fetch_add(1); });
    EXPECT_EQ(clean.load(), 16) << "round " << round;
    EXPECT_EQ(pool.pending(), 0U) << "round " << round;
  }
}

TEST(ThreadPoolStress, AllTasksThrow) {
  ThreadPool pool{3};
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> executed{0};
    EXPECT_THROW(
        pool.parallel_for(8,
                          [&](std::size_t) {
                            executed.fetch_add(1);
                            throw std::logic_error{"every task throws"};
                          }),
        std::logic_error);
    EXPECT_EQ(executed.load(), 8);
  }
}

TEST(ThreadPoolStress, SingleShardFallbackPropagates) {
  // count <= 1 runs inline on the caller; the contract must not differ.
  ThreadPool pool{2};
  EXPECT_THROW(
      pool.parallel_for(1, [](std::size_t) { throw std::domain_error{"x"}; }),
      std::domain_error);
  std::atomic<int> ran{0};
  pool.parallel_for(1, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolStress, ConcurrentParallelForFromManyClients) {
  // Two client threads sharing one pool: completion signals must never
  // cross wires (each waiter sees only its own batch). Uses a second pool
  // as the client driver so the test itself stays rr-lint clean.
  ThreadPool clients{2};
  ThreadPool shared{4};
  for (int round = 0; round < 25; ++round) {
    std::atomic<int> total{0};
    clients.parallel_for(2, [&](std::size_t client) {
      for (int rep = 0; rep < 10; ++rep) {
        try {
          shared.parallel_for(12, [&](std::size_t i) {
            total.fetch_add(1);
            if (client == 0 && i == 5) throw std::runtime_error{"c0"};
          });
        } catch (const std::runtime_error&) {
          // client 0's throws must never surface in client 1's waits —
          // checked implicitly: client 1 reaching here would FAIL below.
          EXPECT_EQ(client, 0U);
        }
      }
    });
    EXPECT_EQ(total.load(), 2 * 10 * 12);
  }
}

}  // namespace
}  // namespace roadrunner::util
