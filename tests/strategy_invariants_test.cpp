// Cross-strategy invariants, parameterized over every shipped strategy:
//  * same-seed runs are byte-identical (whole-framework determinism);
//  * channel accounting conserves: attempted = delivered + failed + in
//    flight at horizon, and delivered bytes never exceed attempted bytes;
//  * standard counters are present and non-negative.
// A new strategy added to the factory is automatically covered.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/experiment.hpp"

namespace roadrunner {
namespace {

util::IniFile experiment_for(const std::string& strategy) {
  util::IniFile ini;
  ini.set("scenario", "vehicles", "10");
  ini.set("scenario", "seed", "91");
  ini.set("scenario", "rsus", "4");
  ini.set("city", "duration_s", "4000");
  ini.set("city", "size_m", "1200");
  ini.set("data", "dataset", "blobs");
  ini.set("data", "train_pool", "1400");
  ini.set("data", "test_size", "280");
  ini.set("data", "partition", "class_skew");
  ini.set("data", "samples_per_vehicle", "30");
  ini.set("data", "classes_per_vehicle", "2");
  ini.set("train", "model", "logreg");
  ini.set("train", "epochs", "1");
  ini.set("strategy", "name", strategy);
  ini.set("strategy", "rounds", "4");
  ini.set("strategy", "participants", "3");
  ini.set("strategy", "round_duration_s", "40");
  // Time-boxed strategies:
  ini.set("strategy", "duration_s", "1200");
  ini.set("strategy", "retrain_interval_s", "150");
  ini.set("strategy", "eval_interval_s", "400");
  ini.set("strategy", "train_interval_s", "150");
  ini.set("strategy", "clusters", "4");
  return ini;
}

class StrategyInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyInvariants, SameSeedRunsAreByteIdentical) {
  const auto ini = experiment_for(GetParam());
  const auto a = scenario::run_experiment(ini);
  const auto b = scenario::run_experiment(ini);
  std::ostringstream sa, sb;
  a.metrics.export_csv(sa);
  b.metrics.export_csv(sb);
  EXPECT_EQ(sa.str(), sb.str());
  for (std::size_t k = 0; k < comm::kChannelKindCount; ++k) {
    const auto kind = static_cast<comm::ChannelKind>(k);
    EXPECT_EQ(a.channel(kind).bytes_delivered, b.channel(kind).bytes_delivered)
        << comm::to_string(kind);
  }
}

TEST_P(StrategyInvariants, ChannelAccountingConserves) {
  const auto result = scenario::run_experiment(experiment_for(GetParam()));
  for (std::size_t k = 0; k < comm::kChannelKindCount; ++k) {
    const auto& s = result.channel(static_cast<comm::ChannelKind>(k));
    // Transfers still on the wire at the horizon are neither delivered nor
    // failed, so <= rather than ==.
    EXPECT_LE(s.transfers_delivered + s.transfers_failed,
              s.transfers_attempted);
    EXPECT_LE(s.bytes_delivered, s.bytes_attempted);
  }
}

TEST_P(StrategyInvariants, StandardCountersSane) {
  const auto result = scenario::run_experiment(experiment_for(GetParam()));
  for (const auto& name : result.metrics.counter_names()) {
    EXPECT_GE(result.metrics.counter(name), 0.0) << name;
  }
  EXPECT_GT(result.report.events_executed, 0U);
  EXPECT_GT(result.report.sim_end_time_s, 0.0);
  // Every strategy performs some compute (training or clustering).
  EXPECT_GT(result.metrics.counter("trainings_completed") +
                result.metrics.counter("computations_completed"),
            0.0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyInvariants,
                         ::testing::Values("federated", "opportunistic",
                                           "rsu_assisted", "gossip",
                                           "centralized",
                                           "federated_clustering"));

}  // namespace
}  // namespace roadrunner
