// Tests for the fleet-model substrate: geometry, traces, ignition
// schedules, the spatial index (property-tested against brute force), the
// synthetic city generator, and trace-file round trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "mobility/city_model.hpp"
#include "mobility/fleet_model.hpp"
#include "mobility/spatial_index.hpp"
#include "mobility/trace_file.hpp"

namespace roadrunner::mobility {
namespace {

// ------------------------------------------------------------------- geo --

TEST(Geo, DistanceAndLerp) {
  const Position a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance_squared(a, b), 25.0);
  const Position mid = lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 1.5);
  EXPECT_DOUBLE_EQ(mid.y, 2.0);
}

TEST(Geo, ProjectUnprojectRoundTrip) {
  const GeoPoint ref = kGothenburgCenter;
  const GeoPoint p{57.72, 11.99};
  const Position xy = project(p, ref);
  const GeoPoint back = unproject(xy, ref);
  EXPECT_NEAR(back.latitude_deg, p.latitude_deg, 1e-9);
  EXPECT_NEAR(back.longitude_deg, p.longitude_deg, 1e-9);
  // ~1.1 km north, ~0.9 km east of the centre — sanity of magnitudes.
  EXPECT_NEAR(xy.y, 1236.0, 20.0);
  EXPECT_GT(xy.x, 500.0);
}

// ----------------------------------------------------------------- trace --

TEST(Trace, InterpolatesLinearly) {
  Trace t{{{0.0, {0, 0}}, {10.0, {100, 0}}, {20.0, {100, 50}}}};
  EXPECT_EQ(t.position_at(5.0), (Position{50, 0}));
  EXPECT_EQ(t.position_at(15.0), (Position{100, 25}));
}

TEST(Trace, ClampsOutsideSpan) {
  Trace t{{{10.0, {1, 2}}, {20.0, {3, 4}}}};
  EXPECT_EQ(t.position_at(0.0), (Position{1, 2}));
  EXPECT_EQ(t.position_at(99.0), (Position{3, 4}));
  EXPECT_DOUBLE_EQ(t.start_time(), 10.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 20.0);
}

TEST(Trace, RandomAccessAfterSequentialAccess) {
  std::vector<TraceSample> samples;
  for (int i = 0; i <= 100; ++i) {
    samples.push_back({static_cast<double>(i), {static_cast<double>(i), 0}});
  }
  Trace t{std::move(samples)};
  // Sweep forward (warms the cursor), then jump backwards.
  for (int i = 0; i <= 100; ++i) {
    EXPECT_DOUBLE_EQ(t.position_at(i + 0.5).x,
                     std::min(100.0, i + 0.5));
  }
  EXPECT_DOUBLE_EQ(t.position_at(3.25).x, 3.25);
  EXPECT_DOUBLE_EQ(t.position_at(97.75).x, 97.75);
  EXPECT_DOUBLE_EQ(t.position_at(3.25).x, 3.25);
}

TEST(Trace, RejectsNonMonotonicSamples) {
  EXPECT_THROW((Trace{{{1.0, {}}, {1.0, {}}}}), std::invalid_argument);
  Trace t{{{1.0, {}}}};
  EXPECT_THROW(t.append({0.5, {}}), std::invalid_argument);
  EXPECT_NO_THROW(t.append({1.5, {}}));
}

TEST(Trace, PathLengthAndSpeed) {
  Trace t{{{0.0, {0, 0}}, {10.0, {30, 40}}, {20.0, {30, 40}}}};
  EXPECT_DOUBLE_EQ(t.path_length(), 50.0);
  EXPECT_DOUBLE_EQ(t.speed_at(5.0), 5.0);
  EXPECT_DOUBLE_EQ(t.speed_at(15.0), 0.0);  // parked segment
  EXPECT_DOUBLE_EQ(t.speed_at(25.0), 0.0);  // outside span
}

TEST(Trace, EmptyTraceThrows) {
  Trace t;
  EXPECT_THROW((void)t.position_at(0.0), std::logic_error);
  EXPECT_THROW((void)t.start_time(), std::logic_error);
}

// -------------------------------------------------------------- ignition --

TEST(Ignition, IsOnWithinIntervals) {
  IgnitionSchedule s{{{10, 20}, {30, 40}}};
  EXPECT_FALSE(s.is_on(5));
  EXPECT_TRUE(s.is_on(10));
  EXPECT_TRUE(s.is_on(19.999));
  EXPECT_FALSE(s.is_on(20));  // end-exclusive
  EXPECT_TRUE(s.is_on(35));
  EXPECT_FALSE(s.is_on(45));
}

TEST(Ignition, AlwaysOn) {
  const auto s = IgnitionSchedule::always_on();
  EXPECT_TRUE(s.is_on(0));
  EXPECT_TRUE(s.is_on(1e9));
  EXPECT_FALSE(s.next_transition(0).has_value());
  EXPECT_DOUBLE_EQ(s.on_duration(3, 8), 5.0);
}

TEST(Ignition, NextTransition) {
  IgnitionSchedule s{{{10, 20}, {30, 40}}};
  EXPECT_DOUBLE_EQ(s.next_transition(0).value(), 10.0);
  EXPECT_DOUBLE_EQ(s.next_transition(10).value(), 20.0);
  EXPECT_DOUBLE_EQ(s.next_transition(25).value(), 30.0);
  EXPECT_FALSE(s.next_transition(40).has_value());
}

TEST(Ignition, OnDuration) {
  IgnitionSchedule s{{{10, 20}, {30, 40}}};
  EXPECT_DOUBLE_EQ(s.on_duration(0, 50), 20.0);
  EXPECT_DOUBLE_EQ(s.on_duration(15, 35), 10.0);
  EXPECT_DOUBLE_EQ(s.on_duration(21, 29), 0.0);
  EXPECT_DOUBLE_EQ(s.on_duration(50, 10), 0.0);
}

TEST(Ignition, RejectsBadIntervals) {
  EXPECT_THROW((IgnitionSchedule{{{10, 10}}}), std::invalid_argument);
  EXPECT_THROW((IgnitionSchedule{{{10, 20}, {15, 25}}}),
               std::invalid_argument);
}

// ---------------------------------------------------------- spatial index --

std::vector<std::pair<std::size_t, std::size_t>> brute_force_pairs(
    const std::vector<Position>& pts, double radius) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (distance(pts[i], pts[j]) <= radius) out.emplace_back(i, j);
    }
  }
  return out;
}

class SpatialIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpatialIndexProperty, PairsMatchBruteForce) {
  util::Rng rng{GetParam()};
  const std::size_t n = 20 + rng.next_below(180);
  const double radius = rng.uniform(20.0, 300.0);
  std::vector<Position> pts(n);
  for (auto& p : pts) {
    p = {rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)};
  }
  SpatialIndex index{pts, radius};
  auto fast = index.pairs_within(radius);
  auto slow = brute_force_pairs(pts, radius);
  std::sort(fast.begin(), fast.end());
  std::sort(slow.begin(), slow.end());
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, SpatialIndexProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(SpatialIndex, WithinMatchesBruteForce) {
  util::Rng rng{123};
  std::vector<Position> pts(100);
  for (auto& p : pts) {
    p = {rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)};
  }
  SpatialIndex index{pts, 60.0};
  const Position query{250, 250};
  auto got = index.within(query, 60.0);
  std::sort(got.begin(), got.end());
  std::vector<std::size_t> expect;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (distance(pts[i], query) <= 60.0) expect.push_back(i);
  }
  EXPECT_EQ(got, expect);
}

TEST(SpatialIndex, ExcludeParameter) {
  std::vector<Position> pts{{0, 0}, {1, 0}, {2, 0}};
  SpatialIndex index{pts, 10.0};
  const auto got = index.within({0, 0}, 10.0, /*exclude=*/0);
  EXPECT_EQ(got.size(), 2U);
  for (std::size_t i : got) EXPECT_NE(i, 0U);
}

// Regression for DESIGN.md §10: query results must come out in sorted-id
// order — a pure function of the geometric content — no matter how points
// were fed to the constructor (insertion order is what shapes the hash
// map's bucket layout, which used to leak into pairs_within's order).
TEST(SpatialIndex, DeterministicOrderUnderInsertionPermutation) {
  util::Rng rng{2026};
  std::vector<Position> pts(120);
  for (auto& p : pts) {
    p = {rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0)};
  }
  const double radius = 75.0;
  const std::vector<Position> queries{
      {100, 100}, {400, 400}, {799, 1}, {0, 0}, {250, 600}};

  std::vector<std::size_t> order(pts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Canonical answers from the identity ordering, as position sequences.
  std::vector<std::vector<std::pair<double, double>>> canonical_within;
  std::vector<std::pair<double, double>> canonical_pair_points;

  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Position> permuted(pts.size());
    for (std::size_t i = 0; i < order.size(); ++i) permuted[i] = pts[order[i]];
    SpatialIndex index{permuted, radius};

    // within(): exactly the brute-force answer in ascending id order —
    // not merely the same set.
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const auto got = index.within(queries[qi], radius);
      std::vector<std::size_t> expect;
      for (std::size_t i = 0; i < permuted.size(); ++i) {
        if (distance(permuted[i], queries[qi]) <= radius) expect.push_back(i);
      }
      EXPECT_EQ(got, expect) << "trial " << trial << " query " << qi;
      // Cross-permutation: the answer identifies the same physical points.
      std::vector<std::pair<double, double>> points;
      points.reserve(got.size());
      for (std::size_t i : got) points.emplace_back(permuted[i].x, permuted[i].y);
      std::sort(points.begin(), points.end());
      if (trial == 0) {
        canonical_within.push_back(points);
      } else {
        EXPECT_EQ(points, canonical_within[qi]) << "trial " << trial;
      }
    }

    // pairs_within(): exactly the sorted brute-force pair list.
    auto got_pairs = index.pairs_within(radius);
    auto expect_pairs = brute_force_pairs(permuted, radius);
    std::sort(expect_pairs.begin(), expect_pairs.end());
    EXPECT_EQ(got_pairs, expect_pairs) << "trial " << trial;
    std::vector<std::pair<double, double>> pair_points;
    for (const auto& [i, j] : got_pairs) {
      pair_points.emplace_back(permuted[i].x + permuted[j].x,
                               permuted[i].y + permuted[j].y);
    }
    std::sort(pair_points.begin(), pair_points.end());
    if (trial == 0) {
      canonical_pair_points = pair_points;
    } else {
      EXPECT_EQ(pair_points, canonical_pair_points) << "trial " << trial;
    }

    rng.shuffle(order);
  }
}

TEST(SpatialIndex, RejectsRadiusBeyondCellSize) {
  std::vector<Position> pts{{0, 0}};
  SpatialIndex index{pts, 50.0};
  EXPECT_THROW(index.pairs_within(51.0), std::invalid_argument);
  EXPECT_THROW(index.within({0, 0}, 51.0), std::invalid_argument);
  EXPECT_THROW((SpatialIndex{pts, 0.0}), std::invalid_argument);
}

// -------------------------------------------------------------- city model --

TEST(CityModel, DeterministicGivenSeed) {
  CityModelConfig cfg;
  cfg.duration_s = 2000.0;
  const auto a = make_city_fleet(5, cfg);
  const auto b = make_city_fleet(5, cfg);
  for (NodeId v = 0; v < 5; ++v) {
    for (double t : {0.0, 500.0, 1500.0}) {
      EXPECT_EQ(a.position_of(v, t), b.position_of(v, t));
      EXPECT_EQ(a.is_on(v, t), b.is_on(v, t));
    }
  }
}

TEST(CityModel, VehiclesStayInsideCity) {
  CityModelConfig cfg;
  cfg.city_size_m = 2000.0;
  cfg.duration_s = 4000.0;
  const auto fleet = make_city_fleet(10, cfg);
  for (NodeId v = 0; v < 10; ++v) {
    for (double t = 0; t <= 4000.0; t += 50.0) {
      const Position p = fleet.position_of(v, t);
      EXPECT_GE(p.x, -1e-6);
      EXPECT_GE(p.y, -1e-6);
      EXPECT_LE(p.x, cfg.city_size_m + cfg.block_size_m);
      EXPECT_LE(p.y, cfg.city_size_m + cfg.block_size_m);
    }
  }
}

TEST(CityModel, SpeedsWithinConfiguredBand) {
  CityModelConfig cfg;
  cfg.duration_s = 3000.0;
  util::Rng rng{8};
  const auto track = make_city_vehicle(cfg, rng);
  const auto& samples = track.trace.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = samples[i].time_s - samples[i - 1].time_s;
    const double d = distance(samples[i].position, samples[i - 1].position);
    if (d < 1e-9) continue;  // dwell segment
    const double speed = d / dt;
    EXPECT_GE(speed, 0.25 * cfg.speed_mean_mps - 1e-6);
    EXPECT_LE(speed, 2.0 * cfg.speed_mean_mps + 1e-6);
  }
}

TEST(CityModel, VehiclesAreOnWhileMoving) {
  CityModelConfig cfg;
  cfg.duration_s = 3000.0;
  util::Rng rng{9};
  const auto track = make_city_vehicle(cfg, rng);
  const auto& samples = track.trace.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double d = distance(samples[i].position, samples[i - 1].position);
    if (d < 1e-9) continue;
    const double mid =
        0.5 * (samples[i].time_s + samples[i - 1].time_s);
    if (mid >= cfg.duration_s) continue;
    EXPECT_TRUE(track.ignition.is_on(mid))
        << "vehicle moving while off at t=" << mid;
  }
}

TEST(CityModel, DutyCycleIsPlausible) {
  CityModelConfig cfg;
  cfg.duration_s = 20000.0;
  const auto fleet = make_city_fleet(30, cfg);
  double on_total = 0.0;
  for (NodeId v = 0; v < 30; ++v) {
    on_total += fleet.vehicle(v).ignition.on_duration(0, cfg.duration_s);
  }
  const double duty = on_total / (30 * cfg.duration_s);
  EXPECT_GT(duty, 0.1);
  EXPECT_LT(duty, 0.9);
}

TEST(CityModel, GridRsusWithinCity) {
  CityModelConfig cfg;
  cfg.duration_s = 100.0;
  auto fleet = make_city_fleet(2, cfg);
  const auto rsus = add_grid_rsus(fleet, cfg, 5);
  ASSERT_EQ(rsus.size(), 5U);
  EXPECT_EQ(fleet.node_count(), 7U);
  for (NodeId r : rsus) {
    EXPECT_FALSE(fleet.is_vehicle(r));
    EXPECT_TRUE(fleet.is_on(r, 0.0));
    const Position p = fleet.position_of(r, 0.0);
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, cfg.city_size_m);
  }
}

TEST(CityModel, TinyCityClampsTripLengthInsteadOfHanging) {
  // Regression: a city smaller than min_trip_blocks used to spin forever
  // in destination rejection sampling.
  CityModelConfig cfg;
  cfg.city_size_m = 150.0;  // 2x2 grid, Manhattan diameter 2
  cfg.block_size_m = 100.0;
  cfg.duration_s = 2000.0;
  cfg.min_trip_blocks = 3;   // larger than the whole city
  cfg.max_trip_blocks = 14;
  util::Rng rng{77};
  const auto track = make_city_vehicle(cfg, rng);
  EXPECT_GT(track.trace.sample_count(), 1U);
  // One-block city (single intersection) cannot host trips at all.
  cfg.city_size_m = 50.0;
  EXPECT_THROW(make_city_vehicle(cfg, rng), std::invalid_argument);
}

TEST(CityModel, ValidatesConfig) {
  CityModelConfig cfg;
  cfg.block_size_m = 0.0;
  util::Rng rng{1};
  EXPECT_THROW(make_city_vehicle(cfg, rng), std::invalid_argument);
  cfg = CityModelConfig{};
  cfg.min_trip_blocks = 5;
  cfg.max_trip_blocks = 3;
  EXPECT_THROW(make_city_vehicle(cfg, rng), std::invalid_argument);
}

// ------------------------------------------------------------- fleet model --

TEST(FleetModel, EncountersRequireBothOnAndInRange) {
  std::vector<VehicleTrack> tracks;
  // Two vehicles parked 100 m apart; one on, one off until t=50.
  tracks.push_back({Trace{{{0.0, {0, 0}}, {100.0, {0, 0}}}},
                    IgnitionSchedule{{{0.0, 100.0}}}});
  tracks.push_back({Trace{{{0.0, {100, 0}}, {100.0, {100, 0}}}},
                    IgnitionSchedule{{{50.0, 100.0}}}});
  FleetModel fleet{std::move(tracks)};

  EXPECT_TRUE(fleet.encounters(10.0, 200.0).empty());  // second vehicle off
  const auto at60 = fleet.encounters(60.0, 200.0);
  ASSERT_EQ(at60.size(), 1U);
  EXPECT_EQ(at60[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_TRUE(fleet.encounters(60.0, 50.0).empty());  // out of range
}

TEST(FleetModel, StaticNodesAlwaysOnAndEncounterable) {
  std::vector<VehicleTrack> tracks;
  tracks.push_back({Trace{{{0.0, {0, 0}}, {10.0, {0, 0}}}},
                    IgnitionSchedule::always_on()});
  FleetModel fleet{std::move(tracks)};
  const NodeId rsu = fleet.add_static_node({50, 0});
  EXPECT_EQ(rsu, 1U);
  EXPECT_FALSE(fleet.is_vehicle(rsu));
  EXPECT_TRUE(fleet.is_on(rsu, 123.0));
  const auto enc = fleet.encounters(5.0, 100.0);
  ASSERT_EQ(enc.size(), 1U);
}

TEST(FleetModel, NextPowerTransitionAcrossFleet) {
  std::vector<VehicleTrack> tracks;
  tracks.push_back({Trace{{{0.0, {0, 0}}, {1.0, {0, 0}}}},
                    IgnitionSchedule{{{20.0, 30.0}}}});
  tracks.push_back({Trace{{{0.0, {9, 9}}, {1.0, {9, 9}}}},
                    IgnitionSchedule{{{5.0, 8.0}}}});
  FleetModel fleet{std::move(tracks)};
  EXPECT_DOUBLE_EQ(fleet.next_power_transition(0.0).value(), 5.0);
  EXPECT_DOUBLE_EQ(fleet.next_power_transition(6.0).value(), 8.0);
  EXPECT_DOUBLE_EQ(fleet.next_power_transition(10.0).value(), 20.0);
  EXPECT_FALSE(fleet.next_power_transition(31.0).has_value());
}

TEST(FleetModel, RejectsEmptyTraces) {
  std::vector<VehicleTrack> tracks(1);
  EXPECT_THROW(FleetModel{std::move(tracks)}, std::invalid_argument);
}

// -------------------------------------------------------------- trace file --

TEST(TraceFile, SaveLoadRoundTrip) {
  CityModelConfig cfg;
  cfg.duration_s = 1500.0;
  const auto fleet = make_city_fleet(4, cfg);
  const std::string traces = ::testing::TempDir() + "/rr_traces.csv";
  const std::string ignition = ::testing::TempDir() + "/rr_ignition.csv";
  save_fleet_csv(fleet, traces, ignition);
  const auto loaded = load_fleet_csv(traces, ignition);
  ASSERT_EQ(loaded.vehicle_count(), 4U);
  for (NodeId v = 0; v < 4; ++v) {
    for (double t : {0.0, 700.0, 1400.0}) {
      const Position a = fleet.position_of(v, t);
      const Position b = loaded.position_of(v, t);
      EXPECT_NEAR(a.x, b.x, 1e-6);
      EXPECT_NEAR(a.y, b.y, 1e-6);
      EXPECT_EQ(fleet.is_on(v, t), loaded.is_on(v, t));
    }
  }
  std::filesystem::remove(traces);
  std::filesystem::remove(ignition);
}

TEST(TraceFile, MissingFileThrows) {
  EXPECT_THROW(load_fleet_csv("/no/such/traces.csv", "/no/such/ign.csv"),
               std::runtime_error);
}

TEST(TraceFile, SparseVehicleIdsRejected) {
  const std::string traces = ::testing::TempDir() + "/rr_sparse.csv";
  const std::string ignition = ::testing::TempDir() + "/rr_sparse_ign.csv";
  {
    std::ofstream t{traces};
    t << "vehicle_id,time_s,x_m,y_m\n0,0,0,0\n0,1,1,1\n2,0,5,5\n2,1,6,6\n";
    std::ofstream i{ignition};
    i << "vehicle_id,start_s,end_s\n0,0,1\n";
  }
  EXPECT_THROW(load_fleet_csv(traces, ignition), std::runtime_error);
  std::filesystem::remove(traces);
  std::filesystem::remove(ignition);
}

TEST(TraceFile, GeoVariantProjectsAroundReference) {
  const std::string traces = ::testing::TempDir() + "/rr_geo.csv";
  const std::string ignition = ::testing::TempDir() + "/rr_geo_ign.csv";
  {
    std::ofstream t{traces};
    t << "vehicle_id,time_s,lat,lon\n";
    t << "0,0," << kGothenburgCenter.latitude_deg << ','
      << kGothenburgCenter.longitude_deg << "\n";
    t << "0,10,57.7179,11.9746\n";  // ~1 km north
    std::ofstream i{ignition};
    i << "vehicle_id,start_s,end_s\n0,0,10\n";
  }
  const auto fleet =
      load_fleet_csv_geo(traces, ignition, kGothenburgCenter);
  const Position start = fleet.position_of(0, 0.0);
  const Position end = fleet.position_of(0, 10.0);
  EXPECT_NEAR(start.x, 0.0, 1e-6);
  EXPECT_NEAR(start.y, 0.0, 1e-6);
  EXPECT_NEAR(end.y, 1000.0, 15.0);
  std::filesystem::remove(traces);
  std::filesystem::remove(ignition);
}

}  // namespace
}  // namespace roadrunner::mobility
