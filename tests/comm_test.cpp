// Communication-model tests: channel durations, link viability in every
// failure mode (Req. 3: "communication may or may not be possible at a
// given point in time, and may fail at any time"), coverage dead zones, and
// byte accounting.
#include <gtest/gtest.h>

#include "comm/network.hpp"
#include "mobility/fleet_model.hpp"

namespace roadrunner::comm {
namespace {

using mobility::FleetModel;
using mobility::IgnitionSchedule;
using mobility::NodeId;
using mobility::Position;
using mobility::Trace;
using mobility::VehicleTrack;

/// Two vehicles 100 m apart: #0 always on, #1 on only during [50, 100).
/// One RSU at (1000, 0).
FleetModel tiny_fleet() {
  std::vector<VehicleTrack> tracks;
  tracks.push_back({Trace{{{0.0, {0, 0}}, {200.0, {0, 0}}}},
                    IgnitionSchedule::always_on()});
  tracks.push_back({Trace{{{0.0, {100, 0}}, {200.0, {100, 0}}}},
                    IgnitionSchedule{{{50.0, 100.0}}}});
  FleetModel fleet{std::move(tracks)};
  fleet.add_static_node({1000, 0});
  return fleet;
}

Network::Config lossless() {
  Network::Config cfg;
  cfg.v2c.loss_probability = 0.0;
  cfg.v2x.loss_probability = 0.0;
  return cfg;
}

TEST(Channel, TransferDurationFormula) {
  ChannelConfig c;
  c.bandwidth_bytes_per_s = 1000.0;
  c.setup_latency_s = 0.5;
  EXPECT_DOUBLE_EQ(transfer_duration(c, 2000), 2.5);
  c.bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(transfer_duration(c, 1), std::invalid_argument);
}

TEST(Channel, Defaults) {
  EXPECT_DOUBLE_EQ(default_v2x().range_m, 200.0);  // paper §5.2
  EXPECT_EQ(default_v2c().range_m, 0.0);           // unlimited
  EXPECT_EQ(to_string(ChannelKind::kV2C), "V2C");
  EXPECT_EQ(to_string(LinkStatus::kOutOfRange), "out-of-range");
}

TEST(Network, V2cConnectsCloudToAnyPoweredNode) {
  const auto fleet = tiny_fleet();
  Network net{fleet, lossless(), util::Rng{1}};
  EXPECT_TRUE(net.check_link(kCloudEndpoint, 0, ChannelKind::kV2C, 0.0).ok());
  EXPECT_TRUE(net.check_link(0, kCloudEndpoint, ChannelKind::kV2C, 0.0).ok());
  // Vehicle 1 is off at t=0 ...
  EXPECT_EQ(net.check_link(kCloudEndpoint, 1, ChannelKind::kV2C, 0.0).status,
            LinkStatus::kReceiverOff);
  EXPECT_EQ(net.check_link(1, kCloudEndpoint, ChannelKind::kV2C, 0.0).status,
            LinkStatus::kSenderOff);
  // ... and reachable at t=60.
  EXPECT_TRUE(net.check_link(kCloudEndpoint, 1, ChannelKind::kV2C, 60.0).ok());
}

TEST(Network, V2cRejectsNonCloudPairs) {
  const auto fleet = tiny_fleet();
  Network net{fleet, lossless(), util::Rng{1}};
  EXPECT_EQ(net.check_link(0, 1, ChannelKind::kV2C, 0.0).status,
            LinkStatus::kBadEndpoints);
  EXPECT_EQ(net.check_link(kCloudEndpoint, kCloudEndpoint,
                           ChannelKind::kV2C, 0.0)
                .status,
            LinkStatus::kBadEndpoints);
}

TEST(Network, V2xRangeGate) {
  const auto fleet = tiny_fleet();
  auto cfg = lossless();
  cfg.v2x.range_m = 150.0;
  Network net{fleet, cfg, util::Rng{1}};
  // 100 m apart, both on at t=60: within 150 m range.
  EXPECT_TRUE(net.check_link(0, 1, ChannelKind::kV2X, 60.0).ok());
  // RSU is 1000 m away: out of range.
  EXPECT_EQ(net.check_link(0, 2, ChannelKind::kV2X, 60.0).status,
            LinkStatus::kOutOfRange);
}

TEST(Network, V2xPowerGate) {
  const auto fleet = tiny_fleet();
  Network net{fleet, lossless(), util::Rng{1}};
  EXPECT_EQ(net.check_link(0, 1, ChannelKind::kV2X, 0.0).status,
            LinkStatus::kReceiverOff);
  EXPECT_EQ(net.check_link(1, 0, ChannelKind::kV2X, 0.0).status,
            LinkStatus::kSenderOff);
}

TEST(Network, V2xRejectsCloudAndSelf) {
  const auto fleet = tiny_fleet();
  Network net{fleet, lossless(), util::Rng{1}};
  EXPECT_EQ(net.check_link(0, kCloudEndpoint, ChannelKind::kV2X, 0.0).status,
            LinkStatus::kBadEndpoints);
  EXPECT_EQ(net.check_link(0, 0, ChannelKind::kV2X, 0.0).status,
            LinkStatus::kBadEndpoints);
}

TEST(Network, WiredConnectsOnlyRsuAndCloud) {
  const auto fleet = tiny_fleet();
  Network net{fleet, lossless(), util::Rng{1}};
  EXPECT_TRUE(net.check_link(2, kCloudEndpoint, ChannelKind::kWired, 0.0).ok());
  EXPECT_TRUE(net.check_link(kCloudEndpoint, 2, ChannelKind::kWired, 0.0).ok());
  EXPECT_EQ(net.check_link(0, kCloudEndpoint, ChannelKind::kWired, 0.0).status,
            LinkStatus::kBadEndpoints);
}

TEST(Network, CoverageDeadZoneBlocksV2c) {
  const auto fleet = tiny_fleet();
  auto cfg = lossless();
  cfg.coverage = CoverageModel{{DeadZone{{0, 0}, 50.0}}};  // tunnel at origin
  Network net{fleet, cfg, util::Rng{1}};
  EXPECT_EQ(net.check_link(kCloudEndpoint, 0, ChannelKind::kV2C, 0.0).status,
            LinkStatus::kNoCoverage);
  // Vehicle 1 at (100, 0) is outside the dead zone.
  EXPECT_TRUE(net.check_link(kCloudEndpoint, 1, ChannelKind::kV2C, 60.0).ok());
  // Dead zones do not affect V2X.
  EXPECT_TRUE(net.check_link(0, 1, ChannelKind::kV2X, 60.0).ok());
}

TEST(Network, RollDeliveryAppliesRandomLoss) {
  const auto fleet = tiny_fleet();
  auto cfg = lossless();
  cfg.v2c.loss_probability = 1.0;
  Network net{fleet, cfg, util::Rng{1}};
  EXPECT_EQ(net.roll_delivery(kCloudEndpoint, 0, ChannelKind::kV2C, 0.0).status,
            LinkStatus::kRandomLoss);
  cfg.v2c.loss_probability = 0.0;
  Network net2{fleet, cfg, util::Rng{1}};
  EXPECT_TRUE(
      net2.roll_delivery(kCloudEndpoint, 0, ChannelKind::kV2C, 0.0).ok());
}

TEST(Network, StatsAccounting) {
  const auto fleet = tiny_fleet();
  Network net{fleet, lossless(), util::Rng{1}};
  net.record_attempt(ChannelKind::kV2X, 1000);
  net.record_attempt(ChannelKind::kV2X, 500);
  net.record_delivery(ChannelKind::kV2X, 1000);
  net.record_failure(ChannelKind::kV2X, LinkStatus::kOutOfRange);
  const auto& s = net.stats(ChannelKind::kV2X);
  EXPECT_EQ(s.transfers_attempted, 2U);
  EXPECT_EQ(s.bytes_attempted, 1500U);
  EXPECT_EQ(s.transfers_delivered, 1U);
  EXPECT_EQ(s.bytes_delivered, 1000U);
  EXPECT_EQ(s.transfers_failed, 1U);
  EXPECT_EQ(s.failed_by_cause[static_cast<std::size_t>(
                LinkStatus::kOutOfRange)],
            1U);
  // Other channels untouched.
  EXPECT_EQ(net.stats(ChannelKind::kV2C).transfers_attempted, 0U);
}

TEST(Coverage, DefaultHasFullCoverage) {
  CoverageModel cov;
  EXPECT_TRUE(cov.has_coverage({1e9, -1e9}));
}

TEST(Coverage, DeadZoneBoundary) {
  CoverageModel cov{{DeadZone{{0, 0}, 100.0}}};
  EXPECT_FALSE(cov.has_coverage({0, 0}));
  EXPECT_FALSE(cov.has_coverage({100, 0}));  // boundary inclusive
  EXPECT_TRUE(cov.has_coverage({100.1, 0}));
  EXPECT_THROW((CoverageModel{{DeadZone{{0, 0}, -1.0}}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace roadrunner::comm
