// Tests for the framework extensions: generic HU computations, federated
// clustering (the unsupervised path), selection policies, data provenance,
// per-vehicle compute metrics, and distance-dependent V2X bandwidth.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "data/gaussian_blobs.hpp"
#include "ml/models.hpp"
#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "strategy/federated_clustering.hpp"

namespace roadrunner {
namespace {

using core::AgentId;
using core::MlService;
using core::Simulator;
using core::SimulatorConfig;
using mobility::IgnitionSchedule;
using mobility::Position;
using mobility::Trace;
using mobility::VehicleTrack;

// --------------------------------------------------- start_computation ----

struct ComputeProbeStrategy final : strategy::LearningStrategy {
  std::function<void(strategy::StrategyContext&)> start;
  [[nodiscard]] std::string name() const override { return "probe"; }
  void on_start(strategy::StrategyContext& ctx) override { start(ctx); }
};

struct ComputeWorld {
  std::shared_ptr<mobility::FleetModel> fleet;
  std::shared_ptr<const ml::Dataset> dataset;
  std::unique_ptr<Simulator> sim;
  AgentId v0{};

  explicit ComputeWorld(double off_at = 1e9) {
    std::vector<VehicleTrack> tracks;
    tracks.push_back({Trace{{{0.0, {0, 0}}, {1000.0, {0, 0}}}},
                      IgnitionSchedule{{{0.0, off_at}}}});
    fleet = std::make_shared<mobility::FleetModel>(std::move(tracks));
    dataset = std::make_shared<ml::Dataset>(data::make_gaussian_blobs(32));
    ml::Network proto = ml::make_logreg(16, 4);
    util::Rng rng{1};
    ml::prime_and_init(proto, {16}, rng);
    SimulatorConfig cfg;
    cfg.horizon_s = 500.0;
    sim = std::make_unique<Simulator>(
        *fleet, comm::Network::Config{},
        MlService{proto, ml::DatasetView::all(dataset)}, cfg);
    sim->add_cloud();
    v0 = sim->add_vehicle(0, ml::DatasetView::all(dataset));
  }
};

TEST(StartComputation, RunsWorkAfterHuChargedDuration) {
  ComputeWorld world;
  double completed_at = -1.0;
  bool success_flag = false;
  auto probe = std::make_shared<ComputeProbeStrategy>();
  probe->start = [&](strategy::StrategyContext& ctx) {
    // OBU: 1 s overhead + 2e9 flops / 2e9 flops/s = 2 s.
    EXPECT_TRUE(ctx.start_computation(
        world.v0, 2'000'000'000ULL,
        [&](strategy::StrategyContext& inner, bool ok) {
          completed_at = inner.now();
          success_flag = ok;
        }));
    EXPECT_TRUE(ctx.is_busy(world.v0));
    // Second computation rejected while busy.
    EXPECT_FALSE(ctx.start_computation(
        world.v0, 1, [](strategy::StrategyContext&, bool) {}));
  };
  world.sim->set_strategy(probe);
  world.sim->run();
  EXPECT_NEAR(completed_at, 2.0, 1e-9);
  EXPECT_TRUE(success_flag);
  EXPECT_DOUBLE_EQ(world.sim->metrics_view().counter("computations_completed"),
                   1.0);
}

TEST(StartComputation, ReportsFailureWhenVehiclePowersOff) {
  ComputeWorld world{/*off_at=*/1.5};
  bool callback_ran = false;
  bool success_flag = true;
  auto probe = std::make_shared<ComputeProbeStrategy>();
  probe->start = [&](strategy::StrategyContext& ctx) {
    EXPECT_TRUE(ctx.start_computation(
        world.v0, 2'000'000'000ULL,  // finishes at t=2 > off_at=1.5
        [&](strategy::StrategyContext&, bool ok) {
          callback_ran = true;
          success_flag = ok;
        }));
  };
  world.sim->set_strategy(probe);
  world.sim->run();
  EXPECT_TRUE(callback_ran);
  EXPECT_FALSE(success_flag);
  EXPECT_DOUBLE_EQ(world.sim->metrics_view().counter("computations_discarded"),
                   1.0);
}

TEST(StartComputation, NullWorkThrows) {
  ComputeWorld world;
  auto probe = std::make_shared<ComputeProbeStrategy>();
  probe->start = [&](strategy::StrategyContext& ctx) {
    EXPECT_THROW(ctx.start_computation(world.v0, 1, nullptr),
                 std::invalid_argument);
  };
  world.sim->set_strategy(probe);
  world.sim->run();
}

// -------------------------------------------------- federated clustering --

scenario::ScenarioConfig clustering_scenario() {
  scenario::ScenarioConfig cfg;
  cfg.seed = 31;
  cfg.vehicles = 12;
  cfg.dataset = "blobs";
  cfg.blob_config.num_classes = 4;
  cfg.blob_config.dimensions = 12;
  cfg.blob_config.center_radius = 6.0;  // separable clusters
  cfg.blob_config.spread = 1.0;
  cfg.train_pool_size = 1800;
  cfg.test_size = 400;
  cfg.partition = "iid";
  cfg.samples_per_vehicle = 60;
  cfg.model = "logreg";  // architecture unused by the clustering strategy
  cfg.city.duration_s = 4000.0;
  return cfg;
}

TEST(FederatedClustering, InertiaDropsAndPurityRises) {
  scenario::Scenario scenario{clustering_scenario()};
  strategy::FederatedClusteringConfig cfg;
  cfg.round.rounds = 6;
  cfg.round.participants = 4;
  cfg.round.round_duration_s = 30.0;
  cfg.clusters = 4;
  const auto result = scenario.run(
      std::make_shared<strategy::FederatedClusteringStrategy>(cfg));

  const auto& inertia = result.metrics.series("inertia");
  const auto& purity = result.metrics.series("purity");
  ASSERT_GE(inertia.size(), 3U);
  ASSERT_EQ(inertia.size(), purity.size());
  EXPECT_LT(inertia.back().value, inertia.front().value);
  EXPECT_GT(purity.back().value, 0.85);  // well-separated blobs
  // Centroid sets travelled over V2C like any model.
  EXPECT_GT(result.channel(comm::ChannelKind::kV2C).bytes_delivered, 0U);
}

TEST(FederatedClustering, ValidatesConfig) {
  strategy::FederatedClusteringConfig cfg;
  cfg.clusters = 0;
  EXPECT_THROW(strategy::FederatedClusteringStrategy{cfg},
               std::invalid_argument);
}

// ------------------------------------------------------ selection policy --

TEST(SelectionPolicy, RoundRobinCoversTheFleet) {
  auto cfg = clustering_scenario();
  cfg.vehicles = 10;
  // Pin every vehicle in place and on, so availability never filters.
  cfg.city.initial_on_probability = 1.0;
  cfg.city.dwell_on_probability = 1.0;
  scenario::Scenario scenario{cfg};

  strategy::RoundConfig round;
  round.rounds = 5;
  round.participants = 2;
  round.selection = strategy::SelectionPolicy::kRoundRobin;
  round.round_duration_s = 30.0;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  // 5 rounds x 2 participants over 10 always-available vehicles =>
  // every vehicle contributed exactly once.
  const auto& prov = result.metrics.series("unique_data_contributors");
  ASSERT_FALSE(prov.empty());
  EXPECT_GE(prov.back().value, 9.0);  // tolerate one lost reply
}

TEST(SelectionPolicy, UniformRandomRevisitsVehicles) {
  auto cfg = clustering_scenario();
  cfg.vehicles = 10;
  cfg.city.initial_on_probability = 1.0;
  cfg.city.dwell_on_probability = 1.0;
  scenario::Scenario scenario{cfg};
  strategy::RoundConfig round;
  round.rounds = 5;
  round.participants = 2;
  round.selection = strategy::SelectionPolicy::kUniformRandom;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  const auto& prov = result.metrics.series("unique_data_contributors");
  ASSERT_FALSE(prov.empty());
  // Random selection with replacement across rounds almost surely repeats
  // someone within 10 draws over 10 vehicles.
  EXPECT_LT(prov.back().value, 10.0);
  // Provenance is monotone non-decreasing.
  for (std::size_t i = 1; i < prov.size(); ++i) {
    EXPECT_GE(prov[i].value, prov[i - 1].value);
  }
}

// ------------------------------------------------- per-vehicle compute ----

TEST(ComputeMetrics, PerVehicleWorkloadExported) {
  scenario::Scenario scenario{clustering_scenario()};
  strategy::RoundConfig round;
  round.rounds = 3;
  round.participants = 4;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  const double total = result.metrics.counter("compute_s_vehicle_total");
  const double mx = result.metrics.counter("compute_s_vehicle_max");
  EXPECT_GT(total, 0.0);
  EXPECT_GT(mx, 0.0);
  EXPECT_LE(mx, total);
  // The per-vehicle counters exist and sum to the total.
  double sum = 0.0;
  for (std::size_t v = 1; v <= 12; ++v) {
    sum += result.metrics.counter("compute_s_vehicle_" + std::to_string(v));
  }
  EXPECT_NEAR(sum, total, 1e-9);
}

// --------------------------------------- distance-dependent bandwidth ----

TEST(RangeDegradation, SlowsTransfersNearRangeEdge) {
  comm::ChannelConfig cfg;
  cfg.bandwidth_bytes_per_s = 1000.0;
  cfg.setup_latency_s = 0.0;
  cfg.range_m = 200.0;
  cfg.range_degradation = 0.5;
  // At distance 0: full bandwidth.
  EXPECT_DOUBLE_EQ(comm::transfer_duration(cfg, 1000, 0.0), 1.0);
  // At the range edge: factor 1 - 0.5 = 0.5 -> twice as slow.
  EXPECT_DOUBLE_EQ(comm::transfer_duration(cfg, 1000, 200.0), 2.0);
  // Factor floored at 0.1.
  cfg.range_degradation = 10.0;
  EXPECT_DOUBLE_EQ(comm::transfer_duration(cfg, 1000, 200.0), 10.0);
  // Disabled when degradation is 0.
  cfg.range_degradation = 0.0;
  EXPECT_DOUBLE_EQ(comm::transfer_duration(cfg, 1000, 200.0), 1.0);
}

TEST(RangeDegradation, AppliedInsideSimulatedTransfers) {
  // Two static vehicles 180 m apart; V2X with heavy degradation must make
  // the same payload take visibly longer than with none.
  auto build = [&](double degradation) {
    std::vector<VehicleTrack> tracks;
    tracks.push_back({Trace{{{0.0, {0, 0}}, {500.0, {0, 0}}}},
                      IgnitionSchedule::always_on()});
    tracks.push_back({Trace{{{0.0, {180, 0}}, {500.0, {180, 0}}}},
                      IgnitionSchedule::always_on()});
    auto fleet =
        std::make_shared<mobility::FleetModel>(std::move(tracks));
    auto dataset =
        std::make_shared<ml::Dataset>(data::make_gaussian_blobs(16));
    ml::Network proto = ml::make_logreg(16, 4);
    util::Rng rng{2};
    ml::prime_and_init(proto, {16}, rng);
    comm::Network::Config net;
    net.v2x.loss_probability = 0.0;
    net.v2x.setup_latency_s = 0.0;
    net.v2x.bandwidth_bytes_per_s = 1e5;
    net.v2x.range_degradation = degradation;
    SimulatorConfig cfg;
    cfg.horizon_s = 400.0;
    auto sim = std::make_unique<Simulator>(
        *fleet, net, MlService{proto, ml::DatasetView::all(dataset)}, cfg);
    sim->add_cloud();
    sim->add_vehicle(0, ml::DatasetView::all(dataset));
    sim->add_vehicle(1, ml::DatasetView::all(dataset));
    return std::pair{std::move(fleet), std::move(sim)};
  };

  double arrival_plain = -1.0, arrival_degraded = -1.0;
  for (double* arrival : {&arrival_plain, &arrival_degraded}) {
    const double degradation = arrival == &arrival_plain ? 0.0 : 0.9;
    auto [fleet, sim] = build(degradation);
    auto probe = std::make_shared<ComputeProbeStrategy>();
    auto* sim_ptr = sim.get();
    probe->start = [sim_ptr, arrival](strategy::StrategyContext& ctx) {
      core::Message msg;
      msg.from = 1;  // agent ids: 0=cloud, 1=vehicle0, 2=vehicle1
      msg.to = 2;
      msg.channel = comm::ChannelKind::kV2X;
      msg.tag = "payload";
      msg.extra_bytes = 1'000'000;
      EXPECT_TRUE(ctx.send(std::move(msg)));
      (void)sim_ptr;
      (void)arrival;
    };
    // Capture delivery time via a tiny strategy subclass.
    struct Catcher final : strategy::LearningStrategy {
      double* at;
      std::function<void(strategy::StrategyContext&)> start;
      explicit Catcher(double* a) : at{a} {}
      [[nodiscard]] std::string name() const override { return "catch"; }
      void on_start(strategy::StrategyContext& ctx) override { start(ctx); }
      void on_message(strategy::StrategyContext& ctx,
                      const core::Message&) override {
        *at = ctx.now();
        ctx.request_stop();
      }
    };
    auto catcher = std::make_shared<Catcher>(arrival);
    catcher->start = probe->start;
    sim->set_strategy(catcher);
    sim->run();
  }
  ASSERT_GT(arrival_plain, 0.0);
  ASSERT_GT(arrival_degraded, 0.0);
  // 180/200 * 0.9 = 0.81 degradation -> ~5.3x slower.
  EXPECT_GT(arrival_degraded, 3.0 * arrival_plain);
}

}  // namespace
}  // namespace roadrunner
