#include "ml/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace roadrunner::ml {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t{{2, 3}};
  EXPECT_EQ(t.size(), 6U);
  EXPECT_EQ(t.rank(), 2U);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, ConstructWithDataValidatesSize) {
  EXPECT_NO_THROW((Tensor{{2, 2}, {1, 2, 3, 4}}));
  EXPECT_THROW((Tensor{{2, 2}, {1, 2, 3}}), std::invalid_argument);
}

TEST(Tensor, ShapeVolume) {
  EXPECT_EQ(shape_volume({}), 0U);
  EXPECT_EQ(shape_volume({5}), 5U);
  EXPECT_EQ(shape_volume({2, 3, 4}), 24U);
  EXPECT_EQ(shape_volume({2, 0, 4}), 0U);
}

TEST(Tensor, MultiIndexAccessors) {
  Tensor t{{2, 3}, {0, 1, 2, 3, 4, 5}};
  EXPECT_EQ(t.at2(0, 2), 2.0F);
  EXPECT_EQ(t.at2(1, 0), 3.0F);
  Tensor u{{2, 2, 2, 2}};
  u.at4(1, 0, 1, 0) = 9.0F;
  EXPECT_EQ(u[((1 * 2 + 0) * 2 + 1) * 2 + 0], 9.0F);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t{{3}};
  EXPECT_NO_THROW((void)t.at(2));
  EXPECT_THROW((void)t.at(3), std::out_of_range);
  EXPECT_THROW((void)t.dim(1), std::out_of_range);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t{{2, 3}, {0, 1, 2, 3, 4, 5}};
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3U);
  EXPECT_EQ(r[4], 4.0F);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a{{2}, {1, 2}};
  Tensor b{{2}, {10, 20}};
  EXPECT_EQ((a + b)[1], 22.0F);
  EXPECT_EQ((b - a)[0], 9.0F);
  EXPECT_EQ((a * 3.0F)[1], 6.0F);
  a.add_scaled_(b, 0.5F);
  EXPECT_EQ(a[0], 6.0F);
  EXPECT_EQ(a[1], 12.0F);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a{{2}};
  Tensor b{{3}};
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.sub_(b), std::invalid_argument);
  EXPECT_THROW(a.add_scaled_(b, 1.0F), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t{{4}, {-1, 2, -3, 4}};
  EXPECT_DOUBLE_EQ(t.sum(), 2.0);
  EXPECT_EQ(t.max(), 4.0F);
  EXPECT_EQ(t.min(), -3.0F);
  EXPECT_NEAR(t.norm(), std::sqrt(1.0 + 4 + 9 + 16), 1e-12);
}

TEST(Tensor, EqualityAndShapeString) {
  Tensor a{{2, 2}, {1, 2, 3, 4}};
  Tensor b = a;
  EXPECT_EQ(a, b);
  b[0] = 9.0F;
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.shape_string(), "[2x2]");
}

TEST(Matmul, KnownProduct) {
  Tensor a{{2, 3}, {1, 2, 3, 4, 5, 6}};
  Tensor b{{3, 2}, {7, 8, 9, 10, 11, 12}};
  Tensor c = matmul(a, b);
  ASSERT_EQ(c.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_EQ(c.at2(0, 0), 58.0F);
  EXPECT_EQ(c.at2(0, 1), 64.0F);
  EXPECT_EQ(c.at2(1, 0), 139.0F);
  EXPECT_EQ(c.at2(1, 1), 154.0F);
}

TEST(Matmul, ShapeErrors) {
  Tensor a{{2, 3}};
  Tensor b{{2, 2}};
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  Tensor c{{3}};
  EXPECT_THROW(matmul(a, c), std::invalid_argument);
}

TEST(Matmul, AccumulateFlag) {
  Tensor a{{1, 1}, {2}};
  Tensor b{{1, 1}, {3}};
  Tensor c{{1, 1}, {100}};
  matmul_into(a, b, c, /*accumulate=*/true);
  EXPECT_EQ(c[0], 106.0F);
  matmul_into(a, b, c, /*accumulate=*/false);
  EXPECT_EQ(c[0], 6.0F);
}

// Property: the transposed variants agree with explicit transposition.
class MatmulVariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatmulVariants, TransposedVariantsAgree) {
  util::Rng rng{GetParam()};
  const std::size_t m = 1 + rng.next_below(6);
  const std::size_t k = 1 + rng.next_below(6);
  const std::size_t n = 1 + rng.next_below(6);

  auto fill = [&](Tensor& t) {
    for (float& v : t.values()) {
      v = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
  };
  Tensor a{{m, k}}, b{{k, n}};
  fill(a);
  fill(b);
  const Tensor expect = matmul(a, b);

  // matmul_at: pass a stored as [k, m].
  Tensor a_t{{k, m}};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) a_t.at2(j, i) = a.at2(i, j);
  }
  const Tensor via_at = matmul_at(a_t, b);
  ASSERT_EQ(via_at.shape(), expect.shape());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(via_at[i], expect[i], 1e-4);
  }

  // matmul_bt: pass b stored as [n, k].
  Tensor b_t{{n, k}};
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < n; ++j) b_t.at2(j, i) = b.at2(i, j);
  }
  const Tensor via_bt = matmul_bt(a, b_t);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(via_bt[i], expect[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, MatmulVariants,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace roadrunner::ml
