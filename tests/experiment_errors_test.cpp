// Error-path coverage for the INI -> experiment pipeline and for the
// CSV-safety guarantees underneath it: strict numeric parsing that names
// the offending `section.key`, rejection of unknown strategy/optimizer
// names, and metrics::Registry name validation (commas survive export via
// RFC-4180 quoting; newlines are rejected at the source because the CSV
// readers are line-oriented).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "metrics/registry.hpp"
#include "scenario/experiment.hpp"
#include "util/csv.hpp"
#include "util/ini.hpp"

namespace roadrunner {
namespace {

/// EXPECT_THROW plus a substring check on the exception message.
template <typename Fn>
void expect_throw_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected an exception mentioning '" << needle << "'";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

// ------------------------------------------------------- strict numerics --

TEST(IniStrictNumerics, MalformedIntegerNamesSectionAndKey) {
  const auto ini = util::IniFile::parse("[scenario]\nvehicles = abc\n");
  expect_throw_containing(
      [&] { (void)ini.get_int("scenario", "vehicles", 1); },
      "scenario.vehicles");
}

TEST(IniStrictNumerics, TrailingGarbageIsAnErrorNotATruncation) {
  const auto ini = util::IniFile::parse("[strategy]\nrounds = 12abc\n");
  EXPECT_THROW((void)ini.get_int("strategy", "rounds", 1),
               std::runtime_error);
  const auto bad_double =
      util::IniFile::parse("[city]\nduration_s = 3.5x\n");
  expect_throw_containing(
      [&] { (void)bad_double.get_double("city", "duration_s", 0.0); },
      "city.duration_s");
}

TEST(IniStrictNumerics, AbsentKeysStillFallBack) {
  const util::IniFile ini;
  EXPECT_EQ(ini.get_int("a", "b", 7), 7);
  EXPECT_DOUBLE_EQ(ini.get_double("a", "b", 2.5), 2.5);
  EXPECT_EQ(ini.get_uint64("a", "b", 9U), 9U);
}

TEST(IniStrictNumerics, Uint64CoversTheFullSeedRange) {
  // Derived campaign seeds routinely exceed int64; get_uint64 must accept
  // the full range and reject negatives rather than wrapping.
  const auto ini = util::IniFile::parse(
      "[scenario]\nseed = 18446744073709551615\nbad = -3\n");
  EXPECT_EQ(ini.get_uint64("scenario", "seed", 0),
            18446744073709551615ULL);
  expect_throw_containing(
      [&] { (void)ini.get_uint64("scenario", "bad", 0); }, "scenario.bad");
}

// ------------------------------------------------ experiment error paths --

TEST(ExperimentErrors, UnknownStrategyNameThrows) {
  const auto ini =
      util::IniFile::parse("[strategy]\nname = federated_quantum\n");
  expect_throw_containing(
      [&] { (void)scenario::strategy_from_ini(ini); }, "federated_quantum");
}

TEST(ExperimentErrors, UnknownOptimizerThrows) {
  const auto ini = util::IniFile::parse("[train]\noptimizer = adamax\n");
  expect_throw_containing([&] { (void)scenario::scenario_from_ini(ini); },
                          "adamax");
}

TEST(ExperimentErrors, MalformedScenarioNumericNamesTheKey) {
  const auto ini =
      util::IniFile::parse("[scenario]\nvehicles = twelve\n");
  expect_throw_containing(
      [&] { (void)scenario::scenario_from_ini(ini); },
      "scenario.vehicles");
}

TEST(ExperimentErrors, MalformedDataNumericNamesTheKey) {
  const auto ini = util::IniFile::parse("[data]\ntrain_pool = 10e\n");
  expect_throw_containing(
      [&] { (void)scenario::scenario_from_ini(ini); }, "data.train_pool");
}

TEST(ExperimentErrors, UnknownDatasetSurfacesFromScenarioBuild) {
  auto ini = util::IniFile::parse(
      "[scenario]\nvehicles = 4\n[data]\ndataset = imagenet\n");
  expect_throw_containing([&] { (void)scenario::run_experiment(ini); },
                          "imagenet");
}

// ------------------------------------------------- registry name safety --

TEST(RegistryNames, NewlineAndEmptyNamesAreRejected) {
  metrics::Registry registry;
  EXPECT_THROW(registry.add_point("acc\nuracy", 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(registry.add_point("acc\ruracy", 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(registry.add_point("", 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(registry.increment("count\ner"), std::invalid_argument);
  EXPECT_THROW(registry.set_counter("", 3.0), std::invalid_argument);
  // Nothing leaked into the registry from the rejected calls.
  EXPECT_TRUE(registry.series_names().empty());
  EXPECT_TRUE(registry.counter_names().empty());
}

TEST(RegistryNames, CommaAndQuoteNamesRoundTripThroughExportCsv) {
  metrics::Registry registry;
  registry.add_point("loss, validation", 1.0, 0.5);
  registry.increment("odd \"quoted\" counter", 2.0);

  std::ostringstream out;
  registry.export_csv(out);
  std::istringstream in{out.str()};
  const auto rows = util::read_csv(in);

  ASSERT_EQ(rows.size(), 3U);  // header + 1 series point + 1 counter
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"kind", "name", "time_s", "value"}));
  EXPECT_EQ(rows[1][0], "series");
  EXPECT_EQ(rows[1][1], "loss, validation");  // comma intact, not sheared
  EXPECT_EQ(rows[2][0], "counter");
  EXPECT_EQ(rows[2][1], "odd \"quoted\" counter");
}

}  // namespace
}  // namespace roadrunner
