// Tests for the INI parser and the config-file-driven experiment layer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "scenario/experiment.hpp"
#include "strategy/federated.hpp"
#include "util/ini.hpp"

namespace roadrunner {
namespace {

using util::IniFile;

// --------------------------------------------------------------- IniFile --

TEST(Ini, ParsesSectionsKeysAndComments) {
  const auto ini = IniFile::parse(R"(
# full-line comment
[alpha]
x = 1
name = fleet one   ; trailing comment
[beta]             # section comment
y=2.5
flag = true
)");
  EXPECT_TRUE(ini.has("alpha", "x"));
  EXPECT_EQ(ini.get_int("alpha", "x", 0), 1);
  EXPECT_EQ(ini.get("alpha", "name", ""), "fleet one");
  EXPECT_DOUBLE_EQ(ini.get_double("beta", "y", 0), 2.5);
  EXPECT_TRUE(ini.get_bool("beta", "flag", false));
  EXPECT_FALSE(ini.has("alpha", "y"));
  EXPECT_EQ(ini.get_int("gamma", "z", 9), 9);
}

TEST(Ini, SectionAndKeyEnumeration) {
  const auto ini = IniFile::parse("[a]\nk1=1\nk2=2\n[b]\n");
  EXPECT_EQ(ini.sections(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(ini.keys("a"), (std::vector<std::string>{"k1", "k2"}));
  EXPECT_TRUE(ini.keys("b").empty());
}

TEST(Ini, LaterKeyWins) {
  const auto ini = IniFile::parse("[s]\nk = 1\nk = 2\n");
  EXPECT_EQ(ini.get_int("s", "k", 0), 2);
}

TEST(Ini, SetAndRoundTrip) {
  IniFile ini;
  ini.set("s", "k", "v");
  EXPECT_EQ(ini.get("s", "k", ""), "v");
}

TEST(Ini, MalformedInputThrowsWithLineNumber) {
  try {
    IniFile::parse("[ok]\nx=1\n[broken\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
  }
  EXPECT_THROW(IniFile::parse("novalue\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("= nokey\n"), std::runtime_error);
  EXPECT_THROW((void)IniFile::parse("[s]\nb = maybe\n").get_bool("s", "b", false),
               std::runtime_error);
}

TEST(Ini, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/rr_test.ini";
  {
    std::ofstream out{path};
    out << "[s]\nk = 42\n";
  }
  const auto ini = IniFile::load(path);
  EXPECT_EQ(ini.get_int("s", "k", 0), 42);
  std::filesystem::remove(path);
  EXPECT_THROW(IniFile::load("/no/such/file.ini"), std::runtime_error);
}

// ---------------------------------------------------------- experiments --

constexpr const char* kSmallExperiment = R"(
[scenario]
vehicles = 12
seed = 5
[city]
duration_s = 3000
[data]
dataset = blobs
train_pool = 1500
test_size = 300
partition = iid
samples_per_vehicle = 30
[train]
model = logreg
epochs = 1
[strategy]
name = federated
rounds = 4
participants = 3
round_duration_s = 30
)";

TEST(Experiment, ScenarioFromIniMapsAllSections) {
  const auto ini = IniFile::parse(R"(
[scenario]
vehicles = 77
rsus = 3
seed = 9
[city]
size_m = 2500
dwell_s = 123
[data]
dataset = images
partition = dirichlet
dirichlet_alpha = 0.25
[train]
model = paper_cnn
optimizer = adam
lr = 0.001
proximal_mu = 0.1
[network]
v2x_range = 333
v2c_loss = 0.07
)");
  const auto cfg = scenario::scenario_from_ini(ini);
  EXPECT_EQ(cfg.vehicles, 77U);
  EXPECT_EQ(cfg.rsus, 3U);
  EXPECT_EQ(cfg.seed, 9U);
  EXPECT_DOUBLE_EQ(cfg.city.city_size_m, 2500.0);
  EXPECT_DOUBLE_EQ(cfg.city.dwell_mean_s, 123.0);
  EXPECT_EQ(cfg.dataset, "images");
  EXPECT_EQ(cfg.partition, "dirichlet");
  EXPECT_DOUBLE_EQ(cfg.dirichlet_alpha, 0.25);
  EXPECT_EQ(cfg.model, "paper_cnn");
  EXPECT_EQ(cfg.train.optimizer, ml::OptimizerKind::kAdam);
  EXPECT_FLOAT_EQ(cfg.train.learning_rate, 0.001F);
  EXPECT_FLOAT_EQ(cfg.train.proximal_mu, 0.1F);
  EXPECT_DOUBLE_EQ(cfg.net.v2x.range_m, 333.0);
  EXPECT_DOUBLE_EQ(cfg.net.v2c.loss_probability, 0.07);
}

TEST(Experiment, StrategyFactoryBuildsEveryStrategy) {
  for (const char* name :
       {"federated", "opportunistic", "rsu_assisted", "gossip",
        "centralized", "federated_clustering"}) {
    IniFile ini;
    ini.set("strategy", "name", name);
    const auto strat = scenario::strategy_from_ini(ini);
    ASSERT_NE(strat, nullptr) << name;
  }
  IniFile bad;
  bad.set("strategy", "name", "quantum");
  EXPECT_THROW(scenario::strategy_from_ini(bad), std::runtime_error);
  IniFile bad_opt;
  bad_opt.set("train", "optimizer", "lbfgs");
  EXPECT_THROW(scenario::scenario_from_ini(bad_opt), std::runtime_error);
}

TEST(Experiment, EndToEndRunFromIni) {
  const auto ini = IniFile::parse(kSmallExperiment);
  const auto result = scenario::run_experiment(ini);
  EXPECT_EQ(result.strategy_name, "federated");
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 4.0);
  EXPECT_GT(result.final_accuracy, 0.2);
}

TEST(Experiment, IniRunMatchesProgrammaticRun) {
  // The INI path and the direct-config path must produce identical results.
  const auto ini = IniFile::parse(kSmallExperiment);
  const auto via_ini = scenario::run_experiment(ini);

  scenario::ScenarioConfig cfg;
  cfg.vehicles = 12;
  cfg.seed = 5;
  cfg.city.duration_s = 3000;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 1500;
  cfg.test_size = 300;
  cfg.partition = "iid";
  cfg.samples_per_vehicle = 30;
  cfg.model = "logreg";
  cfg.train.epochs = 1;
  strategy::RoundConfig round;
  round.rounds = 4;
  round.participants = 3;
  round.round_duration_s = 30;
  scenario::Scenario scenario{cfg};
  const auto direct =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));

  EXPECT_EQ(via_ini.final_accuracy, direct.final_accuracy);
  EXPECT_EQ(via_ini.channel(comm::ChannelKind::kV2C).bytes_delivered,
            direct.channel(comm::ChannelKind::kV2C).bytes_delivered);
}

TEST(Experiment, RoundRobinSelectionFromIni) {
  auto ini = IniFile::parse(kSmallExperiment);
  ini.set("strategy", "selection", "round_robin");
  const auto result = scenario::run_experiment(ini);
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 4.0);
}

}  // namespace
}  // namespace roadrunner
