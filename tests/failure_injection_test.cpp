// Failure-injection tests: the framework must keep producing sound results
// when the environment degrades — heavy random loss, cellular dead zones,
// fleets that are mostly parked, and vehicles with extreme duty cycles
// (Req. 3: communication "may fail at any time"; Req. 1: vehicles become
// unavailable).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "checkpoint/checkpoint.hpp"
#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "strategy/gossip.hpp"
#include "strategy/opportunistic.hpp"

namespace roadrunner {
namespace {

scenario::ScenarioConfig harsh_base(std::uint64_t seed) {
  scenario::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.vehicles = 15;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 2000;
  cfg.test_size = 400;
  cfg.partition = "class_skew";
  cfg.samples_per_vehicle = 40;
  cfg.classes_per_vehicle = 2;
  cfg.model = "logreg";
  cfg.city.duration_s = 8000.0;
  return cfg;
}

strategy::RoundConfig few_rounds() {
  strategy::RoundConfig round;
  round.rounds = 6;
  round.participants = 4;
  round.round_duration_s = 30.0;
  return round;
}

TEST(FailureInjection, HeavyRandomLossDegradesButNeverWedges) {
  auto cfg = harsh_base(41);
  cfg.net.v2c.loss_probability = 0.4;  // 40% of deliveries drop
  scenario::Scenario scenario{cfg};
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(few_rounds()));
  // All rounds still complete (timeouts close out lost participants)...
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 6.0);
  // ...and failures actually happened.
  EXPECT_GT(result.channel(comm::ChannelKind::kV2C).transfers_failed, 0U);
  // Contributions per round may drop to zero in bad rounds but the series
  // exists for every finalized round.
  EXPECT_EQ(result.metrics.series("contributions_per_round").size(), 6U);
}

TEST(FailureInjection, TotalLossMeansNoContributionsButCleanTermination) {
  auto cfg = harsh_base(42);
  cfg.net.v2c.loss_probability = 1.0;  // nothing ever arrives
  scenario::Scenario scenario{cfg};
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(few_rounds()));
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 6.0);
  for (const auto& p : result.metrics.series("contributions_per_round")) {
    EXPECT_DOUBLE_EQ(p.value, 0.0);
  }
  // The global model never improves beyond its initialization.
  const auto& acc = result.metrics.series("accuracy");
  EXPECT_NEAR(acc.back().value, acc.front().value, 1e-12);
}

TEST(FailureInjection, CityWideDeadZoneBlocksAllV2c) {
  auto cfg = harsh_base(43);
  cfg.net.coverage = comm::CoverageModel{
      {comm::DeadZone{{cfg.city.city_size_m / 2, cfg.city.city_size_m / 2},
                      cfg.city.city_size_m * 2}}};
  scenario::Scenario scenario{cfg};
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(few_rounds()));
  EXPECT_EQ(result.channel(comm::ChannelKind::kV2C).bytes_delivered, 0U);
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 6.0);
}

TEST(FailureInjection, MostlyParkedFleetStillFinishes) {
  auto cfg = harsh_base(44);
  cfg.city.initial_on_probability = 0.05;
  cfg.city.dwell_mean_s = 2000.0;  // long parked periods
  cfg.city.dwell_on_probability = 0.0;
  scenario::Scenario scenario{cfg};
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(few_rounds()));
  // Rounds may idle waiting for an available vehicle, but the run
  // terminates (either all rounds done or the horizon hit) without hanging.
  EXPECT_LE(result.metrics.counter("rounds_completed"), 6.0);
  EXPECT_LE(result.report.sim_end_time_s, cfg.city.duration_s + 1.0);
}

TEST(FailureInjection, OppSurvivesFlakyV2x) {
  auto cfg = harsh_base(45);
  cfg.net.v2x.loss_probability = 0.5;
  scenario::Scenario scenario{cfg};
  strategy::OpportunisticConfig opp;
  opp.round.rounds = 4;
  opp.round.participants = 3;
  opp.round.round_duration_s = 120.0;
  const auto result =
      scenario.run(std::make_shared<strategy::OpportunisticStrategy>(opp));
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 4.0);
  // Lost offers/returns are accounted, not silently dropped.
  const double offers_lost = result.metrics.counter("opp_offers_lost");
  const double returns_lost =
      result.metrics.counter("opp_returns_discarded");
  const double exchanges = result.metrics.counter("opp_v2x_exchanges");
  EXPECT_GE(offers_lost + returns_lost + exchanges, 0.0);
  // Conservation: every delivered V2X transfer is an offer, a return, or a
  // gossip-free control message — in OPP only offers and returns exist, so
  // deliveries >= successful exchanges * 2 is impossible to violate.
  EXPECT_GE(
      result.channel(comm::ChannelKind::kV2X).transfers_delivered,
      static_cast<std::uint64_t>(exchanges));
}

TEST(FailureInjection, ZeroV2xRangeDisablesEncounters) {
  auto cfg = harsh_base(46);
  cfg.net.v2x.range_m = 0.0;  // V2X radio absent (V2C-only fleet, §1)
  scenario::Scenario scenario{cfg};
  strategy::OpportunisticConfig opp;
  opp.round.rounds = 3;
  opp.round.participants = 3;
  opp.round.round_duration_s = 60.0;
  const auto result =
      scenario.run(std::make_shared<strategy::OpportunisticStrategy>(opp));
  EXPECT_DOUBLE_EQ(result.metrics.counter("encounters"), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("opp_v2x_exchanges"), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 3.0);
}

// ===================================================================
// Scripted faults (src/fault/): determinism, per-cause accounting,
// checkpointing across a fault window, crash state loss, stragglers, and
// payload corruption.

/// Small experiment INI with a hole for `[fault.N]` sections.
std::string fault_ini(const std::string& strategy,
                      const std::string& fault_sections) {
  return R"([scenario]
vehicles = 10
seed = 11
horizon_s = 900
trace_events = true
[city]
duration_s = 900
[data]
dataset = blobs
train_pool = 600
test_size = 120
partition = iid
samples_per_vehicle = 40
[train]
model = logreg
epochs = 1
[strategy]
name = )" + strategy +
         R"(
rounds = 6
participants = 3
round_duration_s = 120
)" + fault_sections;
}

constexpr const char* kMixedFaults = R"([fault.0]
kind = node_outage
target = cloud
start_s = 100
end_s = 400
[fault.1]
kind = channel_degrade
channel = v2c
loss = 0.3
bandwidth_factor = 0.5
start_s = 400
end_s = 700
[fault.2]
kind = payload_corruption
channel = v2c
probability = 0.5
start_s = 500
end_s = 900
[fault.3]
kind = vehicle_crash
vehicle = 2
at_s = 450
reboot_after_s = 60
lose_model = true
lose_data = true
)";

struct FaultRunDigest {
  std::string trace_csv;
  std::string metrics_csv;
  std::uint64_t events = 0;
};

/// Runs `ini` start to finish; optionally snapshots once at the first
/// autosave tick and keeps running (same shape as the checkpoint tests).
FaultRunDigest run_ini(const util::IniFile& ini,
                       const std::string& snap_path = {}) {
  scenario::Scenario scn{scenario::scenario_from_ini(ini)};
  auto sim = scn.make_simulator();
  sim->set_strategy(scenario::strategy_from_ini(ini));
  bool saved = false;
  if (!snap_path.empty()) {
    sim->set_autosave(150.0, [&](core::Simulator& s) {
      if (saved) return;
      saved = true;
      checkpoint::save(s, ini, snap_path);
    });
  }
  const auto report = sim->run();
  FaultRunDigest d;
  std::ostringstream trace;
  sim->trace().export_csv(trace);
  d.trace_csv = trace.str();
  std::ostringstream metrics;
  sim->metrics_view().export_csv(metrics);
  d.metrics_csv = metrics.str();
  d.events = report.events_executed;
  return d;
}

TEST(ScriptedFaults, SameSeedAndPlanReproduceTheExactRun) {
  const auto ini = util::IniFile::parse(fault_ini("federated", kMixedFaults));
  const FaultRunDigest first = run_ini(ini);
  const FaultRunDigest second = run_ini(ini);
  EXPECT_FALSE(first.trace_csv.empty());
  EXPECT_EQ(first.trace_csv, second.trace_csv);
  EXPECT_EQ(first.metrics_csv, second.metrics_csv);
  EXPECT_EQ(first.events, second.events);
}

TEST(ScriptedFaults, PerCauseCountersExplainEveryFailure) {
  auto cfg = scenario::scenario_from_ini(
      util::IniFile::parse(fault_ini("federated", kMixedFaults)));
  scenario::Scenario scenario{cfg};
  strategy::RoundConfig round;
  round.rounds = 6;
  round.participants = 3;
  round.round_duration_s = 120.0;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));

  // The cloud outage shows up under its own cause...
  const auto& v2c = result.channel(comm::ChannelKind::kV2C);
  EXPECT_GT(v2c.failed_by_cause[static_cast<std::size_t>(
                comm::LinkStatus::kFaultOutage)],
            0U);
  // ...and every failure on every channel is attributed to exactly one
  // cause (the kOk slot stays empty).
  for (std::size_t k = 0; k < comm::kChannelKindCount; ++k) {
    const auto& s = result.channel(static_cast<comm::ChannelKind>(k));
    std::uint64_t attributed = 0;
    for (std::uint64_t count : s.failed_by_cause) attributed += count;
    EXPECT_EQ(attributed, s.transfers_failed);
    EXPECT_EQ(s.failed_by_cause[0], 0U);
  }
  // The breakdown is surfaced in the metrics registry too.
  EXPECT_GT(result.metrics.counter("transfers_V2C_failed_fault-outage"), 0.0);
  // Time-to-recover was measured for the finite outage windows.
  EXPECT_FALSE(result.metrics.series("fault_recovery_s").empty());
  // Model staleness percentiles exist and are ordered.
  const double p50 = result.metrics.counter("stale_model_age_p50_s");
  const double p90 = result.metrics.counter("stale_model_age_p90_s");
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, result.metrics.counter("stale_model_age_max_s"));
}

TEST(ScriptedFaults, CheckpointTakenMidOutageResumesBitIdentically) {
  const auto ini = util::IniFile::parse(fault_ini("federated", kMixedFaults));
  const auto snap =
      std::filesystem::temp_directory_path() / "rr_fault_mid_outage.rrck";
  std::filesystem::remove(snap);

  const FaultRunDigest uninterrupted = run_ini(ini);
  // The snapshot fires at t=150, inside the 100..400 s cloud outage.
  const FaultRunDigest snapshotting = run_ini(ini, snap.string());
  EXPECT_EQ(uninterrupted.trace_csv, snapshotting.trace_csv);
  ASSERT_TRUE(std::filesystem::exists(snap));
  const auto info = checkpoint::peek(snap.string());
  EXPECT_GE(info.sim_time_s, 100.0);
  EXPECT_LT(info.sim_time_s, 400.0);

  checkpoint::RestoredRun resumed = checkpoint::restore(snap.string());
  const auto report = resumed.simulator->run();
  std::ostringstream trace;
  resumed.simulator->trace().export_csv(trace);
  std::ostringstream metrics;
  resumed.simulator->metrics_view().export_csv(metrics);
  EXPECT_EQ(uninterrupted.trace_csv, trace.str());
  EXPECT_EQ(uninterrupted.metrics_csv, metrics.str());
  EXPECT_EQ(uninterrupted.events, report.events_executed);
  std::filesystem::remove(snap);
}

TEST(ScriptedFaults, CrashLosesRoundBasedVehicleState) {
  // Round-based family: the crashed vehicle loses its data view (it always
  // has one) and any model it trained; the campaign still terminates.
  auto cfg = scenario::scenario_from_ini(util::IniFile::parse(
      fault_ini("federated", R"([fault.0]
kind = vehicle_crash
vehicle = 4
at_s = 300
reboot_after_s = 120
lose_model = true
lose_data = true
)")));
  scenario::Scenario scenario{cfg};
  strategy::RoundConfig round;
  round.rounds = 6;
  round.participants = 3;
  round.round_duration_s = 120.0;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  EXPECT_DOUBLE_EQ(result.metrics.counter("vehicle_crashes"), 1.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("crash_data_views_lost"), 1.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 6.0);
}

TEST(ScriptedFaults, CrashLosesGossipModelState) {
  // Opportunistic/peer family: every vehicle trains a local model from the
  // start, so a late crash always destroys one.
  auto cfg = scenario::scenario_from_ini(util::IniFile::parse(
      fault_ini("gossip", R"([fault.0]
kind = vehicle_crash
vehicle = 4
at_s = 600
reboot_after_s = 60
lose_model = true
)")));
  scenario::Scenario scenario{cfg};
  strategy::GossipConfig gcfg;
  const auto result =
      scenario.run(std::make_shared<strategy::GossipStrategy>(gcfg));
  EXPECT_DOUBLE_EQ(result.metrics.counter("vehicle_crashes"), 1.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("crash_models_lost"), 1.0);
}

TEST(ScriptedFaults, ExtremeStragglersStopContributionsEntirely) {
  strategy::RoundConfig round;
  round.rounds = 4;
  round.participants = 3;
  round.round_duration_s = 120.0;

  auto base_cfg = scenario::scenario_from_ini(
      util::IniFile::parse(fault_ini("federated", "")));
  scenario::Scenario baseline{base_cfg};
  const auto healthy =
      baseline.run(std::make_shared<strategy::FederatedStrategy>(round));
  double healthy_contribs = 0.0;
  for (const auto& p : healthy.metrics.series("contributions_per_round")) {
    healthy_contribs += p.value;
  }
  EXPECT_GT(healthy_contribs, 0.0);

  // A fleet-wide 10^6x slowdown: no training ever finishes inside a round,
  // so every round closes empty — but the run still terminates cleanly.
  auto slow_cfg = scenario::scenario_from_ini(util::IniFile::parse(
      fault_ini("federated", R"([fault.0]
kind = hu_straggler
vehicle = all
slowdown = 1e6
)")));
  scenario::Scenario slowed{slow_cfg};
  const auto crawling =
      slowed.run(std::make_shared<strategy::FederatedStrategy>(round));
  for (const auto& p : crawling.metrics.series("contributions_per_round")) {
    EXPECT_DOUBLE_EQ(p.value, 0.0);
  }
}

TEST(ScriptedFaults, CorruptedPayloadsAreDetectedAndDiscarded) {
  auto cfg = scenario::scenario_from_ini(util::IniFile::parse(
      fault_ini("federated", R"([fault.0]
kind = payload_corruption
channel = v2c
probability = 1.0
)")));
  scenario::Scenario scenario{cfg};
  strategy::RoundConfig round;
  round.rounds = 4;
  round.participants = 3;
  round.round_duration_s = 120.0;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  const double corrupted = result.metrics.counter("messages_corrupted");
  EXPECT_GT(corrupted, 0.0);
  // Every corrupted delivery was caught by the strategy's integrity check.
  EXPECT_DOUBLE_EQ(result.metrics.counter("corrupted_payloads_discarded"),
                   corrupted);
  // With every V2C payload corrupted the global model never improves.
  const auto& acc = result.metrics.series("accuracy");
  EXPECT_NEAR(acc.back().value, acc.front().value, 1e-12);
}

}  // namespace
}  // namespace roadrunner
