// Failure-injection tests: the framework must keep producing sound results
// when the environment degrades — heavy random loss, cellular dead zones,
// fleets that are mostly parked, and vehicles with extreme duty cycles
// (Req. 3: communication "may fail at any time"; Req. 1: vehicles become
// unavailable).
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "strategy/opportunistic.hpp"

namespace roadrunner {
namespace {

scenario::ScenarioConfig harsh_base(std::uint64_t seed) {
  scenario::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.vehicles = 15;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 2000;
  cfg.test_size = 400;
  cfg.partition = "class_skew";
  cfg.samples_per_vehicle = 40;
  cfg.classes_per_vehicle = 2;
  cfg.model = "logreg";
  cfg.city.duration_s = 8000.0;
  return cfg;
}

strategy::RoundConfig few_rounds() {
  strategy::RoundConfig round;
  round.rounds = 6;
  round.participants = 4;
  round.round_duration_s = 30.0;
  return round;
}

TEST(FailureInjection, HeavyRandomLossDegradesButNeverWedges) {
  auto cfg = harsh_base(41);
  cfg.net.v2c.loss_probability = 0.4;  // 40% of deliveries drop
  scenario::Scenario scenario{cfg};
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(few_rounds()));
  // All rounds still complete (timeouts close out lost participants)...
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 6.0);
  // ...and failures actually happened.
  EXPECT_GT(result.channel(comm::ChannelKind::kV2C).transfers_failed, 0U);
  // Contributions per round may drop to zero in bad rounds but the series
  // exists for every finalized round.
  EXPECT_EQ(result.metrics.series("contributions_per_round").size(), 6U);
}

TEST(FailureInjection, TotalLossMeansNoContributionsButCleanTermination) {
  auto cfg = harsh_base(42);
  cfg.net.v2c.loss_probability = 1.0;  // nothing ever arrives
  scenario::Scenario scenario{cfg};
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(few_rounds()));
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 6.0);
  for (const auto& p : result.metrics.series("contributions_per_round")) {
    EXPECT_DOUBLE_EQ(p.value, 0.0);
  }
  // The global model never improves beyond its initialization.
  const auto& acc = result.metrics.series("accuracy");
  EXPECT_NEAR(acc.back().value, acc.front().value, 1e-12);
}

TEST(FailureInjection, CityWideDeadZoneBlocksAllV2c) {
  auto cfg = harsh_base(43);
  cfg.net.coverage = comm::CoverageModel{
      {comm::DeadZone{{cfg.city.city_size_m / 2, cfg.city.city_size_m / 2},
                      cfg.city.city_size_m * 2}}};
  scenario::Scenario scenario{cfg};
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(few_rounds()));
  EXPECT_EQ(result.channel(comm::ChannelKind::kV2C).bytes_delivered, 0U);
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 6.0);
}

TEST(FailureInjection, MostlyParkedFleetStillFinishes) {
  auto cfg = harsh_base(44);
  cfg.city.initial_on_probability = 0.05;
  cfg.city.dwell_mean_s = 2000.0;  // long parked periods
  cfg.city.dwell_on_probability = 0.0;
  scenario::Scenario scenario{cfg};
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(few_rounds()));
  // Rounds may idle waiting for an available vehicle, but the run
  // terminates (either all rounds done or the horizon hit) without hanging.
  EXPECT_LE(result.metrics.counter("rounds_completed"), 6.0);
  EXPECT_LE(result.report.sim_end_time_s, cfg.city.duration_s + 1.0);
}

TEST(FailureInjection, OppSurvivesFlakyV2x) {
  auto cfg = harsh_base(45);
  cfg.net.v2x.loss_probability = 0.5;
  scenario::Scenario scenario{cfg};
  strategy::OpportunisticConfig opp;
  opp.round.rounds = 4;
  opp.round.participants = 3;
  opp.round.round_duration_s = 120.0;
  const auto result =
      scenario.run(std::make_shared<strategy::OpportunisticStrategy>(opp));
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 4.0);
  // Lost offers/returns are accounted, not silently dropped.
  const double offers_lost = result.metrics.counter("opp_offers_lost");
  const double returns_lost =
      result.metrics.counter("opp_returns_discarded");
  const double exchanges = result.metrics.counter("opp_v2x_exchanges");
  EXPECT_GE(offers_lost + returns_lost + exchanges, 0.0);
  // Conservation: every delivered V2X transfer is an offer, a return, or a
  // gossip-free control message — in OPP only offers and returns exist, so
  // deliveries >= successful exchanges * 2 is impossible to violate.
  EXPECT_GE(
      result.channel(comm::ChannelKind::kV2X).transfers_delivered,
      static_cast<std::uint64_t>(exchanges));
}

TEST(FailureInjection, ZeroV2xRangeDisablesEncounters) {
  auto cfg = harsh_base(46);
  cfg.net.v2x.range_m = 0.0;  // V2X radio absent (V2C-only fleet, §1)
  scenario::Scenario scenario{cfg};
  strategy::OpportunisticConfig opp;
  opp.round.rounds = 3;
  opp.round.participants = 3;
  opp.round.round_duration_s = 60.0;
  const auto result =
      scenario.run(std::make_shared<strategy::OpportunisticStrategy>(opp));
  EXPECT_DOUBLE_EQ(result.metrics.counter("encounters"), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("opp_v2x_exchanges"), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 3.0);
}

}  // namespace
}  // namespace roadrunner
