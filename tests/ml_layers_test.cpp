// Gradient checks and behaviour tests for every layer. Each layer's
// analytic backward pass is validated against central finite differences
// through a softmax cross-entropy head — the strongest correctness evidence
// the ML substrate has.
#include "ml/layers.hpp"

#include <gtest/gtest.h>

#include "ml/loss.hpp"
#include "ml/net.hpp"
#include "test_util.hpp"

namespace roadrunner::ml {
namespace {

using roadrunner::testing::expect_gradients_match;
using roadrunner::testing::randomize;

Network single_layer_net(std::unique_ptr<Layer> layer) {
  Network net;
  net.append(std::move(layer));
  return net;
}

TEST(Linear, ForwardMatchesManualComputation) {
  Linear lin{2, 3};
  util::Rng rng{1};
  lin.init_params(rng);
  // Overwrite with known weights.
  *lin.params()[0] = Tensor{{3, 2}, {1, 2, 3, 4, 5, 6}};
  *lin.params()[1] = Tensor{{3}, {0.5, -0.5, 1.0}};
  Tensor x{{1, 2}, {10, 20}};
  Tensor y = lin.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 3}));
  EXPECT_FLOAT_EQ(y[0], 1 * 10 + 2 * 20 + 0.5F);
  EXPECT_FLOAT_EQ(y[1], 3 * 10 + 4 * 20 - 0.5F);
  EXPECT_FLOAT_EQ(y[2], 5 * 10 + 6 * 20 + 1.0F);
}

TEST(Linear, GradientCheck) {
  util::Rng rng{2};
  Network net = single_layer_net(std::make_unique<Linear>(5, 4));
  net.init_params(rng);
  Tensor x{{3, 5}};
  randomize(x, rng);
  expect_gradients_match(net, x, {0, 2, 3});
}

TEST(Linear, RejectsBadInput) {
  Linear lin{4, 2};
  Tensor wrong{{2, 3}};
  EXPECT_THROW(lin.forward(wrong), std::invalid_argument);
  Tensor rank1{{4}};
  EXPECT_THROW(lin.forward(rank1), std::invalid_argument);
  EXPECT_THROW((Linear{0, 2}), std::invalid_argument);
}

TEST(Linear, BackwardWithoutForwardThrows) {
  Linear lin{2, 2};
  Tensor g{{1, 2}};
  EXPECT_THROW(lin.backward(g), std::logic_error);
}

TEST(Conv2D, OutputShapeAndKnownValue) {
  Conv2D conv{1, 1, 2};
  // Kernel = [[1, 0], [0, 1]] (trace of each 2x2 window), bias 0.
  *conv.params()[0] = Tensor{{1, 1, 2, 2}, {1, 0, 0, 1}};
  *conv.params()[1] = Tensor{{1}, {0}};
  Tensor x{{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9}};
  Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 1 + 5);
  EXPECT_FLOAT_EQ(y[1], 2 + 6);
  EXPECT_FLOAT_EQ(y[2], 4 + 8);
  EXPECT_FLOAT_EQ(y[3], 5 + 9);
}

TEST(Conv2D, BiasApplied) {
  Conv2D conv{1, 2, 1};
  *conv.params()[0] = Tensor{{2, 1, 1, 1}, {1, 2}};
  *conv.params()[1] = Tensor{{2}, {10, 20}};
  Tensor x{{1, 1, 1, 1}, {3}};
  Tensor y = conv.forward(x);
  EXPECT_FLOAT_EQ(y[0], 13);
  EXPECT_FLOAT_EQ(y[1], 26);
}

TEST(Conv2D, GradientCheck) {
  util::Rng rng{3};
  Network net;
  net.append(std::make_unique<Conv2D>(2, 3, 3));
  net.append(std::make_unique<Flatten>());
  net.init_params(rng);
  Tensor x{{2, 2, 5, 5}};
  randomize(x, rng);
  expect_gradients_match(net, x, {1, 0});
}

TEST(Conv2D, RejectsBadInput) {
  Conv2D conv{3, 4, 5};
  Tensor wrong_channels{{1, 2, 8, 8}};
  EXPECT_THROW(conv.forward(wrong_channels), std::invalid_argument);
  Tensor too_small{{1, 3, 4, 4}};
  EXPECT_THROW(conv.forward(too_small), std::invalid_argument);
}

TEST(MaxPool2D, SelectsMaxima) {
  MaxPool2D pool;
  Tensor x{{1, 1, 2, 4}, {1, 9, 2, 3, 4, 5, 8, 6}};
  Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 9);
  EXPECT_FLOAT_EQ(y[1], 8);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D pool;
  Tensor x{{1, 1, 2, 2}, {1, 4, 3, 2}};
  pool.forward(x);
  Tensor g{{1, 1, 1, 1}, {5}};
  Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0);
  EXPECT_FLOAT_EQ(dx[1], 5);
  EXPECT_FLOAT_EQ(dx[2], 0);
  EXPECT_FLOAT_EQ(dx[3], 0);
}

TEST(MaxPool2D, DropsOddTrailingEdges) {
  MaxPool2D pool;
  Tensor x{{1, 1, 5, 5}};
  x.fill(1.0F);
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
}

TEST(MaxPool2D, GradientCheck) {
  util::Rng rng{4};
  Network net;
  net.append(std::make_unique<Conv2D>(1, 2, 2));  // produce varied values
  net.append(std::make_unique<MaxPool2D>());
  net.append(std::make_unique<Flatten>());
  net.init_params(rng);
  Tensor x{{2, 1, 5, 5}};
  randomize(x, rng);
  expect_gradients_match(net, x, {0, 1});
}

TEST(ReLU, ForwardAndBackward) {
  ReLU relu;
  Tensor x{{1, 4}, {-1, 0, 2, -3}};
  Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[2], 2);
  Tensor g{{1, 4}, {10, 10, 10, 10}};
  Tensor dx = relu.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0);
  EXPECT_FLOAT_EQ(dx[1], 0);  // gradient is 0 at exactly 0 (subgradient)
  EXPECT_FLOAT_EQ(dx[2], 10);
  EXPECT_FLOAT_EQ(dx[3], 0);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  Tensor x{{2, 3, 4, 5}};
  Tensor y = flat.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 60}));
  Tensor dx = flat.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Layers, CloneIsDeepCopy) {
  util::Rng rng{5};
  Linear lin{3, 2};
  lin.init_params(rng);
  auto copy = lin.clone();
  auto* copy_lin = dynamic_cast<Linear*>(copy.get());
  ASSERT_NE(copy_lin, nullptr);
  // Same values...
  EXPECT_EQ(*copy_lin->params()[0], *lin.params()[0]);
  // ...but mutating the copy does not touch the original.
  (*copy_lin->params()[0])[0] += 1.0F;
  EXPECT_NE(*copy_lin->params()[0], *lin.params()[0]);
}

TEST(Layers, FlopsReporting) {
  Linear lin{10, 20};
  EXPECT_EQ(lin.flops_per_sample(), 200U);

  Conv2D conv{3, 6, 5};
  Tensor x{{1, 3, 32, 32}};
  util::Rng rng{6};
  conv.init_params(rng);
  conv.forward(x);
  EXPECT_EQ(conv.flops_per_sample(), 6ULL * 3 * 5 * 5 * 28 * 28);
}

// Deeper stack: gradient-check the paper's full CNN shape at reduced size.
TEST(Layers, StackedNetworkGradientCheck) {
  util::Rng rng{7};
  Network net;
  net.append(std::make_unique<Conv2D>(1, 3, 3));
  net.append(std::make_unique<ReLU>());
  net.append(std::make_unique<MaxPool2D>());
  net.append(std::make_unique<Flatten>());
  net.append(std::make_unique<Linear>(3 * 7 * 7, 8));
  net.append(std::make_unique<ReLU>());
  net.append(std::make_unique<Linear>(8, 3));
  net.init_params(rng);
  Tensor x{{2, 1, 16, 16}};
  randomize(x, rng);
  // Loose tolerance by design: a conv bias shifts an entire activation
  // plane, so a finite-difference step flips many ReLU kinks downstream and
  // biases the numeric estimate (the effect grows with eps, confirming it
  // is FD curvature, not a backward bug). Tight per-layer checks above
  // cover exactness; this test guards the composite wiring.
  expect_gradients_match(net, x, {0, 2}, /*tolerance=*/0.2,
                         /*max_checks=*/12, /*eps=*/1e-3);
}

}  // namespace
}  // namespace roadrunner::ml
