// Tests for the data-arrival (streaming data) model: vehicles accumulate
// samples over simulated time instead of holding everything at t=0.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "strategy/learning_strategy.hpp"

namespace roadrunner {
namespace {

scenario::ScenarioConfig streaming_config(double rate) {
  scenario::ScenarioConfig cfg;
  cfg.seed = 61;
  cfg.vehicles = 8;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 1200;
  cfg.test_size = 240;
  cfg.partition = "iid";
  cfg.samples_per_vehicle = 60;
  cfg.model = "logreg";
  cfg.city.duration_s = 6000.0;
  cfg.city.initial_on_probability = 1.0;
  cfg.city.dwell_on_probability = 1.0;
  cfg.data_arrival_per_s = rate;
  return cfg;
}

struct ArrivalProbe final : strategy::LearningStrategy {
  std::vector<std::pair<double, std::size_t>> observations;
  strategy::AgentId target = 1;

  [[nodiscard]] std::string name() const override { return "arrival-probe"; }
  void on_start(strategy::StrategyContext& ctx) override {
    for (double delay : {1.0, 100.0, 300.0, 600.0, 1200.0}) {
      ctx.schedule_timer(ctx.cloud_id(), delay, 1);
    }
    ctx.schedule_timer(ctx.cloud_id(), 1300.0, 2);
  }
  void on_timer(strategy::StrategyContext& ctx, strategy::AgentId,
                int timer_id) override {
    if (timer_id == 2) {
      ctx.request_stop();
      return;
    }
    observations.emplace_back(ctx.now(),
                              ctx.available_data(target).size());
  }
};

TEST(DataArrival, AvailableDataGrowsLinearlyThenSaturates) {
  scenario::Scenario scenario{streaming_config(0.1)};  // 60 samples @ 600 s
  auto sim = scenario.make_simulator();
  auto probe = std::make_shared<ArrivalProbe>();
  sim->set_strategy(probe);
  sim->run();

  ASSERT_EQ(probe->observations.size(), 5U);
  // ~0 at t=1, 10 at t=100, 30 at t=300, 60 at t=600 and beyond.
  EXPECT_EQ(probe->observations[0].second, 0U);
  EXPECT_EQ(probe->observations[1].second, 10U);
  EXPECT_EQ(probe->observations[2].second, 30U);
  EXPECT_EQ(probe->observations[3].second, 60U);
  EXPECT_EQ(probe->observations[4].second, 60U);  // saturated
}

TEST(DataArrival, ZeroRateMeansEverythingImmediately) {
  scenario::Scenario scenario{streaming_config(0.0)};
  auto sim = scenario.make_simulator();
  auto probe = std::make_shared<ArrivalProbe>();
  sim->set_strategy(probe);
  sim->run();
  for (const auto& [t, n] : probe->observations) {
    EXPECT_EQ(n, 60U) << "at t=" << t;
  }
}

TEST(DataArrival, TrainingRejectedBeforeAnyDataArrives) {
  scenario::Scenario scenario{streaming_config(0.01)};  // first sample @100s
  auto sim = scenario.make_simulator();

  struct EarlyTrainer final : strategy::LearningStrategy {
    bool early_result = true, late_result = false;
    [[nodiscard]] std::string name() const override { return "early"; }
    void on_start(strategy::StrategyContext& ctx) override {
      ctx.set_model(1, ctx.fresh_model(), 0.0);
      early_result = ctx.start_training(1, 0);
      ctx.schedule_timer(ctx.cloud_id(), 500.0, 1);
    }
    void on_timer(strategy::StrategyContext& ctx, strategy::AgentId,
                  int) override {
      late_result = ctx.start_training(1, 1);
    }
    void on_training_complete(strategy::StrategyContext& ctx,
                              strategy::AgentId,
                              const strategy::TrainingOutcome& o) override {
      // Trained on exactly the arrived prefix (5 samples at t=500).
      EXPECT_DOUBLE_EQ(o.data_amount, 5.0);
      ctx.request_stop();
    }
  };
  auto probe = std::make_shared<EarlyTrainer>();
  sim->set_strategy(probe);
  sim->run();
  EXPECT_FALSE(probe->early_result);  // no data at t=0
  EXPECT_TRUE(probe->late_result);
}

TEST(DataArrival, FlRoundContributionsGrowWithArrivals) {
  auto cfg = streaming_config(0.05);  // full data after 1200 s
  scenario::Scenario scenario{cfg};
  strategy::RoundConfig round;
  round.rounds = 8;
  round.participants = 4;
  round.round_duration_s = 120.0;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  // The aggregated data amount behind the global model keeps growing as
  // vehicles sense more: final model's FA weight exceeds the first round's.
  const auto& contribs = result.metrics.series("contributions_per_round");
  ASSERT_FALSE(contribs.empty());
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 8.0);
  EXPECT_GT(result.final_accuracy, 0.3);
}

}  // namespace
}  // namespace roadrunner
