// Shared helpers for the Roadrunner test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "ml/dataset.hpp"
#include "ml/loss.hpp"
#include "ml/net.hpp"
#include "util/rng.hpp"

namespace roadrunner::testing {

/// Fills a tensor with small deterministic pseudo-random values.
inline void randomize(ml::Tensor& t, util::Rng& rng, double scale = 0.5) {
  for (float& v : t.values()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
}

/// Central-difference numerical gradient of `f` w.r.t. `x[i]`.
inline double numerical_gradient(const std::function<double()>& f, float& x,
                                 double eps = 1e-3) {
  const float saved = x;
  x = static_cast<float>(saved + eps);
  const double plus = f();
  x = static_cast<float>(saved - eps);
  const double minus = f();
  x = saved;
  return (plus - minus) / (2.0 * eps);
}

/// Checks analytic parameter and input gradients of a network against
/// finite differences on a scalar loss. `max_checks` parameters per tensor
/// are probed (deterministically spread) to keep runtime sane.
inline void expect_gradients_match(ml::Network& net, const ml::Tensor& x,
                                   const std::vector<std::int32_t>& labels,
                                   double tolerance = 2e-2,
                                   std::size_t max_checks = 12,
                                   double eps = 1e-3) {
  auto loss_value = [&]() {
    ml::Network probe = net;  // fresh caches
    ml::Tensor logits = probe.forward(x);
    return ml::softmax_cross_entropy(logits, labels).loss;
  };

  // Analytic gradients.
  net.zero_grad();
  ml::Tensor logits = net.forward(x);
  const auto loss = ml::softmax_cross_entropy(logits, labels);
  ml::Tensor dx = net.backward(loss.grad);

  const auto params = net.params();
  const auto grads = net.grads();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    ml::Tensor& param = *params[p];
    const ml::Tensor& grad = *grads[p];
    ASSERT_TRUE(param.same_shape(grad));
    const std::size_t stride =
        std::max<std::size_t>(1, param.size() / max_checks);
    for (std::size_t i = 0; i < param.size(); i += stride) {
      const double numeric = numerical_gradient(loss_value, param[i], eps);
      EXPECT_NEAR(grad[i], numeric,
                  tolerance * std::max(1.0, std::abs(numeric)))
          << "param tensor " << p << " element " << i;
    }
  }

  // Input gradient: probe a few elements.
  ml::Tensor x_mut = x;
  auto loss_value_x = [&]() {
    ml::Network probe = net;
    ml::Tensor logits2 = probe.forward(x_mut);
    return ml::softmax_cross_entropy(logits2, labels).loss;
  };
  const std::size_t stride = std::max<std::size_t>(1, x.size() / max_checks);
  for (std::size_t i = 0; i < x.size(); i += stride) {
    const double numeric = numerical_gradient(loss_value_x, x_mut[i], eps);
    EXPECT_NEAR(dx[i], numeric, tolerance * std::max(1.0, std::abs(numeric)))
        << "input element " << i;
  }
}

/// A tiny deterministic dataset: `n` samples of shape `sample_shape` with
/// `classes` uniform labels.
inline std::shared_ptr<ml::Dataset> tiny_dataset(
    std::size_t n, std::vector<std::size_t> sample_shape, std::size_t classes,
    std::uint64_t seed = 11) {
  util::Rng rng{seed};
  std::vector<std::size_t> shape{n};
  shape.insert(shape.end(), sample_shape.begin(), sample_shape.end());
  ml::Tensor x{shape};
  randomize(x, rng, 1.0);
  std::vector<std::int32_t> labels(n);
  for (auto& y : labels) {
    y = static_cast<std::int32_t>(rng.next_below(classes));
  }
  return std::make_shared<ml::Dataset>(std::move(x), std::move(labels),
                                       classes);
}

}  // namespace roadrunner::testing
