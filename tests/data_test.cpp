// Tests for the Data Preprocessing module: synthetic generators,
// partitioners, and dataset persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "data/dataset_io.hpp"
#include "data/gaussian_blobs.hpp"
#include "data/partition.hpp"
#include "data/synthetic_images.hpp"

namespace roadrunner::data {
namespace {

// ------------------------------------------------------- synthetic images --

TEST(SyntheticImages, ShapeAndLabels) {
  SyntheticImageConfig cfg;
  const auto ds = make_synthetic_images(64, cfg);
  EXPECT_EQ(ds.size(), 64U);
  EXPECT_EQ(ds.features().shape(),
            (std::vector<std::size_t>{64, 3, 32, 32}));
  for (std::int32_t y : ds.labels()) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

TEST(SyntheticImages, DeterministicGivenSeed) {
  SyntheticImageConfig cfg;
  cfg.seed = 77;
  const auto a = make_synthetic_images(16, cfg);
  const auto b = make_synthetic_images(16, cfg);
  EXPECT_EQ(a.features(), b.features());
  EXPECT_EQ(a.labels(), b.labels());
  cfg.seed = 78;
  const auto c = make_synthetic_images(16, cfg);
  EXPECT_FALSE(a.features() == c.features());
}

TEST(SyntheticImages, ClassesAreStatisticallyDistinct) {
  // Mean images of different classes must differ: averaging over many
  // samples cancels noise and per-sample nuisance, leaving the pattern.
  SyntheticImageConfig cfg;
  cfg.noise_sigma = 0.5;
  cfg.max_shift = 0;  // keep patterns aligned for the mean comparison
  util::Rng rng{5};
  constexpr int kPerClass = 40;
  std::vector<ml::Tensor> means;
  for (std::int32_t c = 0; c < 10; ++c) {
    ml::Tensor mean{{3, 32, 32}};
    for (int i = 0; i < kPerClass; ++i) {
      mean.add_(render_synthetic_image(c, cfg, rng));
    }
    mean.mul_(1.0F / kPerClass);
    means.push_back(std::move(mean));
  }
  for (std::size_t a = 0; a < means.size(); ++a) {
    for (std::size_t b = a + 1; b < means.size(); ++b) {
      const double gap = (means[a] - means[b]).norm();
      EXPECT_GT(gap, 3.0) << "classes " << a << " and " << b
                          << " are not distinguishable";
    }
  }
}

TEST(SyntheticImages, ValidatesConfig) {
  SyntheticImageConfig cfg;
  cfg.num_classes = 0;
  EXPECT_THROW(make_synthetic_images(4, cfg), std::invalid_argument);
  cfg.num_classes = 11;
  EXPECT_THROW(make_synthetic_images(4, cfg), std::invalid_argument);
  cfg.num_classes = 10;
  util::Rng rng{1};
  EXPECT_THROW(render_synthetic_image(-1, cfg, rng), std::invalid_argument);
  EXPECT_THROW(render_synthetic_image(10, cfg, rng), std::invalid_argument);
}

// --------------------------------------------------------- gaussian blobs --

TEST(GaussianBlobs, SeparationControlsLearnability) {
  GaussianBlobConfig tight;
  tight.center_radius = 10.0;
  tight.spread = 0.5;
  const auto ds = make_gaussian_blobs(200, tight);
  // Nearest-centroid classification on the true means should be easy; we
  // verify separation via within- vs between-class distances.
  std::vector<std::vector<const float*>> by_class(tight.num_classes);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    by_class[static_cast<std::size_t>(ds.label(i))].push_back(ds.sample(i));
  }
  for (const auto& members : by_class) ASSERT_GT(members.size(), 10U);
}

TEST(GaussianBlobs, Validates) {
  GaussianBlobConfig cfg;
  cfg.num_classes = 0;
  EXPECT_THROW(make_gaussian_blobs(4, cfg), std::invalid_argument);
  cfg.num_classes = 2;
  cfg.dimensions = 0;
  EXPECT_THROW(make_gaussian_blobs(4, cfg), std::invalid_argument);
}

// ------------------------------------------------------------ partitioning --

ml::DatasetView blob_pool(std::size_t n, std::uint64_t seed = 9) {
  GaussianBlobConfig cfg;
  cfg.num_classes = 4;
  cfg.seed = seed;
  return ml::DatasetView::all(
      std::make_shared<ml::Dataset>(make_gaussian_blobs(n, cfg)));
}

TEST(TrainTestSplit, PartitionsWithoutOverlap) {
  auto base = std::make_shared<ml::Dataset>(make_gaussian_blobs(100));
  util::Rng rng{1};
  const auto split = train_test_split(base, 0.2, rng);
  EXPECT_EQ(split.test.size(), 20U);
  EXPECT_EQ(split.train.size(), 80U);
  std::set<std::uint32_t> seen(split.train.indices().begin(),
                               split.train.indices().end());
  for (std::uint32_t i : split.test.indices()) {
    EXPECT_FALSE(seen.contains(i));
  }
}

TEST(TrainTestSplit, Validates) {
  auto base = std::make_shared<ml::Dataset>(make_gaussian_blobs(10));
  util::Rng rng{1};
  EXPECT_THROW(train_test_split(base, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(base, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(nullptr, 0.1, rng), std::invalid_argument);
}

TEST(PartitionIid, DisjointFixedSizeParts) {
  auto pool = blob_pool(200);
  util::Rng rng{2};
  const auto parts = partition_iid(pool, 10, 15, rng);
  ASSERT_EQ(parts.size(), 10U);
  std::set<std::uint32_t> seen;
  for (const auto& part : parts) {
    EXPECT_EQ(part.size(), 15U);
    for (std::uint32_t i : part.indices()) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
    }
  }
}

TEST(PartitionIid, ThrowsWhenPoolTooSmall) {
  auto pool = blob_pool(50);
  util::Rng rng{2};
  EXPECT_THROW(partition_iid(pool, 10, 6, rng), std::invalid_argument);
}

TEST(PartitionClassSkew, RespectsClassCountAndSize) {
  auto pool = blob_pool(2000);
  util::Rng rng{3};
  const auto parts = partition_class_skew(pool, 12, 40, 2, rng);
  ASSERT_EQ(parts.size(), 12U);
  for (const auto& part : parts) {
    EXPECT_EQ(part.size(), 40U);
    const auto hist = part.class_histogram();
    int classes_present = 0;
    for (std::size_t c : hist) classes_present += c > 0 ? 1 : 0;
    EXPECT_LE(classes_present, 2);
    EXPECT_GE(classes_present, 1);
  }
}

TEST(PartitionClassSkew, PartsAreDisjoint) {
  auto pool = blob_pool(2000);
  util::Rng rng{4};
  const auto parts = partition_class_skew(pool, 8, 30, 1, rng);
  std::set<std::uint32_t> seen;
  for (const auto& part : parts) {
    for (std::uint32_t i : part.indices()) {
      EXPECT_TRUE(seen.insert(i).second);
    }
  }
}

TEST(PartitionClassSkew, ExhaustionThrowsInsteadOfDuplicating) {
  auto pool = blob_pool(100);  // ~25 per class
  util::Rng rng{5};
  EXPECT_THROW(partition_class_skew(pool, 20, 30, 1, rng),
               std::invalid_argument);
}

TEST(PartitionClassSkew, ValidatesArguments) {
  auto pool = blob_pool(100);
  util::Rng rng{5};
  EXPECT_THROW(partition_class_skew(pool, 0, 10, 1, rng),
               std::invalid_argument);
  EXPECT_THROW(partition_class_skew(pool, 2, 10, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(partition_class_skew(pool, 2, 10, 5, rng),
               std::invalid_argument);  // only 4 classes exist
}

TEST(PartitionDirichlet, AssignsEverySampleExactlyOnce) {
  auto pool = blob_pool(500);
  util::Rng rng{6};
  const auto parts = partition_dirichlet(pool, 7, 0.5, rng);
  ASSERT_EQ(parts.size(), 7U);
  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (const auto& part : parts) {
    total += part.size();
    for (std::uint32_t i : part.indices()) {
      EXPECT_TRUE(seen.insert(i).second);
    }
  }
  EXPECT_EQ(total, 500U);
}

TEST(PartitionDirichlet, Validates) {
  auto pool = blob_pool(50);
  util::Rng rng{6};
  EXPECT_THROW(partition_dirichlet(pool, 0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(partition_dirichlet(pool, 2, 0.0, rng), std::invalid_argument);
}

// Property: skewness ordering across distribution families. IID must be the
// least skewed, single-class the most, and Dirichlet monotone in 1/alpha.
TEST(PartitionSkewness, OrdersDistributionFamilies) {
  auto pool = blob_pool(4000, 21);
  util::Rng rng{7};
  const auto iid = partition_iid(pool, 20, 80, rng);
  const auto skew1 = partition_class_skew(pool, 20, 80, 1, rng);
  const auto skew2 = partition_class_skew(pool, 20, 80, 2, rng);
  const auto dir_flat = partition_dirichlet(pool, 20, 100.0, rng);
  const auto dir_peaky = partition_dirichlet(pool, 20, 0.1, rng);

  const double s_iid = partition_skewness(iid, pool);
  const double s_skew1 = partition_skewness(skew1, pool);
  const double s_skew2 = partition_skewness(skew2, pool);
  const double s_flat = partition_skewness(dir_flat, pool);
  const double s_peaky = partition_skewness(dir_peaky, pool);

  EXPECT_LT(s_iid, 0.2);
  EXPECT_GT(s_skew1, 0.7);
  EXPECT_LT(s_skew2, s_skew1);
  EXPECT_LT(s_flat, s_peaky);
  EXPECT_LT(s_iid, s_peaky);
}

// ------------------------------------------------------------- dataset io --

TEST(DatasetIo, SaveLoadRoundTrip) {
  const auto ds = make_gaussian_blobs(32);
  const std::string path = ::testing::TempDir() + "/rr_ds_roundtrip.bin";
  save_dataset(ds, path);
  const auto loaded = load_dataset(path);
  EXPECT_EQ(loaded.features(), ds.features());
  EXPECT_EQ(loaded.labels(), ds.labels());
  EXPECT_EQ(loaded.num_classes(), ds.num_classes());
  std::filesystem::remove(path);
}

TEST(DatasetIo, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(load_dataset("/nonexistent/nowhere.bin"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/rr_ds_corrupt.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a dataset", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_dataset(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(DatasetIo, SummaryMentionsKeyFacts) {
  const auto ds = make_gaussian_blobs(10);
  const std::string s = dataset_summary(ds);
  EXPECT_NE(s.find("10 samples"), std::string::npos);
  EXPECT_NE(s.find("4 classes"), std::string::npos);
}

}  // namespace
}  // namespace roadrunner::data
