// Checkpoint/restore subsystem tests: golden determinism, mid-run
// snapshot round trips (the acceptance bar: a resumed run is
// bit-identical to an uninterrupted one), corruption rejection, and
// what-if forks.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "checkpoint/checkpoint.hpp"
#include "scenario/experiment.hpp"
#include "strategy/learning_strategy.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace roadrunner {
namespace {

namespace fs = std::filesystem;

std::string test_ini(const std::string& strategy) {
  return R"([scenario]
vehicles = 10
seed = 11
horizon_s = 900
trace_events = true
[city]
duration_s = 900
[data]
dataset = blobs
train_pool = 600
test_size = 120
partition = iid
samples_per_vehicle = 40
[train]
model = logreg
epochs = 1
[strategy]
name = )" + strategy +
         R"(
rounds = 4
participants = 3
round_duration_s = 120
)";
}

struct RunDigest {
  std::string trace_csv;
  std::string metrics_csv;
  std::uint64_t events = 0;
  double end_time = 0.0;
};

RunDigest digest(const core::Simulator& sim,
                 const core::Simulator::RunReport& report) {
  RunDigest d;
  std::ostringstream trace;
  sim.trace().export_csv(trace);
  d.trace_csv = trace.str();
  std::ostringstream metrics;
  sim.metrics_view().export_csv(metrics);
  d.metrics_csv = metrics.str();
  d.events = report.events_executed;
  d.end_time = report.sim_end_time_s;
  return d;
}

/// Runs `ini` start to finish; optionally snapshots once at the first
/// autosave tick (`snap_path` non-empty) and keeps running to the end.
RunDigest run_full(const util::IniFile& ini, const std::string& snap_path = {},
                   double snap_at_every_s = 150.0) {
  scenario::Scenario scn{scenario::scenario_from_ini(ini)};
  auto strategy = scenario::strategy_from_ini(ini);
  auto sim = scn.make_simulator();
  sim->set_strategy(strategy);
  bool saved = false;
  if (!snap_path.empty()) {
    sim->set_autosave(snap_at_every_s, [&](core::Simulator& s) {
      if (saved) return;
      saved = true;
      checkpoint::save(s, ini, snap_path);
    });
  }
  const auto report = sim->run();
  if (!snap_path.empty()) {
    EXPECT_TRUE(saved);
  }
  return digest(*sim, report);
}

fs::path tmp_file(const std::string& name) {
  return fs::temp_directory_path() / name;
}

std::string slurp(const fs::path& p) {
  std::ifstream in{p, std::ios::binary};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const fs::path& p, const std::string& bytes) {
  std::ofstream out{p, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------ rng state ---------

TEST(RngState, RoundTripReproducesTheExactStream) {
  util::Rng a{42};
  for (int i = 0; i < 1000; ++i) a.next();
  const auto snap = a.state();
  util::Rng b{7};  // different seed, then overwritten
  b.set_state(snap);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngState, AllZeroStateIsRejected) {
  util::Rng r{1};
  EXPECT_THROW(r.set_state({0, 0, 0, 0}), std::invalid_argument);
}

// ------------------------------------------------- golden determinism ----

TEST(CheckpointDeterminism, IdenticalRerunsProduceIdenticalTraces) {
  const auto ini = util::IniFile::parse(test_ini("federated"));
  const RunDigest first = run_full(ini);
  const RunDigest second = run_full(ini);
  EXPECT_FALSE(first.trace_csv.empty());
  EXPECT_EQ(first.trace_csv, second.trace_csv);
  EXPECT_EQ(first.metrics_csv, second.metrics_csv);
  EXPECT_EQ(first.events, second.events);
}

// --------------------------------------------------- mid-run round trip --

class CheckpointRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckpointRoundTrip, RestoredRunMatchesUninterruptedRun) {
  const std::string strategy = GetParam();
  const auto ini = util::IniFile::parse(test_ini(strategy));
  const fs::path snap = tmp_file("rr_roundtrip_" + strategy + ".rrck");
  fs::remove(snap);

  const RunDigest uninterrupted = run_full(ini);
  // The snapshotting run itself must match too: autosaves fire between
  // events and may not perturb the simulation.
  const RunDigest snapshotting = run_full(ini, snap.string());
  EXPECT_EQ(uninterrupted.trace_csv, snapshotting.trace_csv);
  EXPECT_EQ(uninterrupted.metrics_csv, snapshotting.metrics_csv);

  ASSERT_TRUE(fs::exists(snap));
  const auto info = checkpoint::peek(snap.string());
  EXPECT_EQ(info.format_version, checkpoint::kFormatVersion);
  EXPECT_EQ(info.strategy_name, strategy);
  EXPECT_GT(info.sim_time_s, 0.0);
  EXPECT_LT(info.sim_time_s, uninterrupted.end_time);
  EXPECT_GT(info.pending_events, 0U);

  // Resume from the mid-run snapshot and run to the end: the acceptance
  // bar is full equality of the event trace and metrics.
  checkpoint::RestoredRun resumed = checkpoint::restore(snap.string());
  EXPECT_TRUE(resumed.simulator->restored());
  const auto report = resumed.simulator->run();
  const RunDigest after = digest(*resumed.simulator, report);
  EXPECT_EQ(uninterrupted.trace_csv, after.trace_csv);
  EXPECT_EQ(uninterrupted.metrics_csv, after.metrics_csv);
  EXPECT_EQ(uninterrupted.events, after.events);
  EXPECT_DOUBLE_EQ(uninterrupted.end_time, after.end_time);
  fs::remove(snap);
}

INSTANTIATE_TEST_SUITE_P(Strategies, CheckpointRoundTrip,
                         ::testing::Values("federated", "opportunistic",
                                           "gossip"));

TEST(CheckpointResume, RunResumablePicksUpFromSnapshot) {
  const auto ini = util::IniFile::parse(test_ini("federated"));
  const fs::path snap = tmp_file("rr_resumable.rrck");
  fs::remove(snap);

  const RunDigest uninterrupted = run_full(ini);
  run_full(ini, snap.string());  // leaves a mid-run snapshot behind
  ASSERT_TRUE(fs::exists(snap));

  // A "crashed" campaign job rerun: run_resumable finds the snapshot and
  // continues instead of starting over. Final metrics must match.
  const scenario::RunResult resumed =
      checkpoint::run_resumable(ini, snap.string());
  const scenario::RunResult fresh = scenario::run_experiment(ini);
  EXPECT_DOUBLE_EQ(resumed.final_accuracy, fresh.final_accuracy);
  EXPECT_EQ(resumed.report.events_executed, fresh.report.events_executed);
  std::ostringstream a, b;
  resumed.metrics.export_csv(a);
  fresh.metrics.export_csv(b);
  EXPECT_EQ(a.str(), b.str());
  fs::remove(snap);
}

// ----------------------------------------------------------- rejection ---

class CheckpointRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    ini_ = util::IniFile::parse(test_ini("federated"));
    // One file per test: ctest -j runs each discovered test in its own
    // process, so a shared name races.
    snap_ = tmp_file(
        std::string{"rr_reject_"} +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".rrck");
    fs::remove(snap_);
    run_full(ini_, snap_.string());
    ASSERT_TRUE(fs::exists(snap_));
    bytes_ = slurp(snap_);
    ASSERT_GT(bytes_.size(), 32U);
  }
  void TearDown() override { fs::remove(snap_); }

  void expect_throw_containing(const std::string& needle) {
    try {
      checkpoint::restore(snap_.string());
      FAIL() << "expected restore to throw (" << needle << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  }

  util::IniFile ini_;
  fs::path snap_;
  std::string bytes_;
};

TEST_F(CheckpointRejection, BadMagic) {
  std::string bad = bytes_;
  bad[0] = 'X';
  spit(snap_, bad);
  expect_throw_containing("bad magic");
}

TEST_F(CheckpointRejection, FlippedByteFailsCrc) {
  std::string bad = bytes_;
  bad[bytes_.size() / 2] ^= 0x5A;
  spit(snap_, bad);
  expect_throw_containing("CRC");
}

TEST_F(CheckpointRejection, TruncationFailsCrc) {
  spit(snap_, bytes_.substr(0, bytes_.size() - 17));
  expect_throw_containing("");  // truncated or CRC, either way it throws
}

TEST_F(CheckpointRejection, TinyFileIsTruncated) {
  spit(snap_, bytes_.substr(0, 8));
  expect_throw_containing("truncated");
}

TEST_F(CheckpointRejection, FutureFormatVersionIsRejected) {
  // Bump the version field (bytes 4..7, little-endian) and re-seal the CRC
  // so only the version check can fire.
  std::string bad = bytes_;
  bad[4] = 99;
  const std::uint32_t crc =
      util::crc32(bad.data(), bad.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bad[bad.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  spit(snap_, bad);
  expect_throw_containing("version");
}

TEST_F(CheckpointRejection, FutureV6WithUnknownSectionIsAVersionError) {
  // Forward-compat contract, pinned: a hypothetical v6 snapshot carrying a
  // section tag this build has never heard of must be refused with the
  // *version* message ("produced by a newer build?"), not misparsed via
  // the unknown-tags-are-ignored rule — that rule only licenses skipping
  // unknown sections within a version we claim to support.
  std::string bad = bytes_;
  bad[4] = 6;  // version field, bytes 4..7 little-endian
  // Append an unknown trailing section (tag 200, 4-byte payload) ahead of
  // the CRC trailer and bump the section count at bytes 8..11.
  std::string section;
  const std::uint32_t tag = 200;
  const std::uint64_t payload_size = 4;
  for (int i = 0; i < 4; ++i) {
    section += static_cast<char>((tag >> (8 * i)) & 0xFF);
  }
  for (int i = 0; i < 8; ++i) {
    section += static_cast<char>((payload_size >> (8 * i)) & 0xFF);
  }
  section += "\xDE\xAD\xBE\xEF";
  bad.insert(bad.size() - 4, section);
  ++bad[8];  // section counts are tiny; no carry possible
  const std::uint32_t crc = util::crc32(bad.data(), bad.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bad[bad.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  spit(snap_, bad);
  expect_throw_containing("version");
  // The in-memory peek validates identically.
  try {
    checkpoint::peek_bytes(bad);
    FAIL() << "expected peek_bytes to reject a v6 image";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("version"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointRejection, PeekValidatesToo) {
  std::string bad = bytes_;
  bad[bytes_.size() / 3] ^= 0x11;
  spit(snap_, bad);
  EXPECT_THROW(checkpoint::peek(snap_.string()), std::runtime_error);
}

TEST(CheckpointErrors, MissingFileThrows) {
  EXPECT_THROW(checkpoint::restore("/nonexistent/nope.rrck"),
               std::runtime_error);
}

// ---------------------------------------------------------------- forks --

TEST(CheckpointFork, OverridesApplyFromTheSavedInstant) {
  const auto ini = util::IniFile::parse(test_ini("federated"));
  const fs::path snap = tmp_file("rr_fork.rrck");
  fs::remove(snap);
  run_full(ini, snap.string());
  ASSERT_TRUE(fs::exists(snap));

  // Degrade the uplink from the snapshot instant on: the fork must still
  // complete, and its config must reflect the override.
  checkpoint::RestoredRun forked =
      checkpoint::fork(snap.string(), {{"network.v2c_loss", "0.5"}});
  EXPECT_DOUBLE_EQ(
      forked.experiment.get_double("network", "v2c_loss", 0.0), 0.5);
  const auto result = forked.finish();
  EXPECT_EQ(result.strategy_name, "federated");
  EXPECT_GT(result.report.events_executed, 0U);

  // Identity fork == plain restore == uninterrupted run.
  const RunDigest uninterrupted = run_full(ini);
  checkpoint::RestoredRun identity = checkpoint::fork(snap.string(), {});
  const auto report = identity.simulator->run();
  EXPECT_EQ(digest(*identity.simulator, report).trace_csv,
            uninterrupted.trace_csv);
  fs::remove(snap);
}

TEST(CheckpointFork, FleetChangingOverrideIsRejected) {
  const auto ini = util::IniFile::parse(test_ini("federated"));
  const fs::path snap = tmp_file("rr_fork_bad.rrck");
  fs::remove(snap);
  run_full(ini, snap.string());
  // 12 vehicles still fit the data pool, so the scenario rebuilds fine and
  // the restore-time agent-count check is what rejects the fork.
  EXPECT_THROW(checkpoint::fork(snap.string(), {{"scenario.vehicles", "12"}}),
               std::runtime_error);
  EXPECT_THROW(
      checkpoint::fork(snap.string(), {{"strategy.name", "gossip"}}),
      std::runtime_error);
  EXPECT_THROW(checkpoint::fork(snap.string(), {{"malformed", "1"}}),
               std::runtime_error);
  fs::remove(snap);
}

// --------------------------------------------- closure-computation guard --

struct ClosureComputeStrategy final : strategy::LearningStrategy {
  [[nodiscard]] std::string name() const override { return "closure"; }
  void on_start(strategy::StrategyContext& ctx) override {
    // Legacy closure overload: fine to run, impossible to snapshot. Try
    // every vehicle so at least one (the powered-on ones) accepts.
    for (const auto id : ctx.vehicle_ids()) {
      ctx.start_computation(id, 10'000'000'000'000ULL,
                            [](strategy::StrategyContext&, bool) {});
    }
  }
};

TEST(CheckpointGuards, PendingClosureComputationRefusesToSnapshot) {
  auto ini = util::IniFile::parse(test_ini("federated"));
  scenario::Scenario scn{scenario::scenario_from_ini(ini)};
  auto sim = scn.make_simulator();
  sim->set_strategy(std::make_shared<ClosureComputeStrategy>());
  const fs::path snap = tmp_file("rr_closure.rrck");
  sim->set_autosave(1.0, [&](core::Simulator& s) {
    checkpoint::save(s, ini, snap.string());
  });
  EXPECT_THROW(sim->run(), std::runtime_error);
  fs::remove(snap);
}

}  // namespace
}  // namespace roadrunner
