#include "ml/kmeans.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/gaussian_blobs.hpp"

namespace roadrunner::ml {
namespace {

DatasetView separated_blobs(std::size_t n, std::uint64_t seed = 3) {
  data::GaussianBlobConfig cfg;
  cfg.num_classes = 4;
  cfg.dimensions = 8;
  cfg.center_radius = 8.0;  // well separated
  cfg.spread = 0.8;
  cfg.seed = seed;
  return DatasetView::all(
      std::make_shared<Dataset>(data::make_gaussian_blobs(n, cfg)));
}

TEST(KMeans, ConvergesOnSeparatedBlobs) {
  auto data = separated_blobs(400);
  util::Rng rng{1};
  KMeansModel model = kmeans_init(data, 4, rng);
  const auto report = kmeans_fit(model, data);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.iterations, 0U);
  EXPECT_GT(kmeans_purity(model, data), 0.95);
}

TEST(KMeans, InertiaDecreasesDuringFit) {
  auto data = separated_blobs(300, 9);
  util::Rng rng{2};
  KMeansModel model = kmeans_init(data, 4, rng);
  const double before = kmeans_inertia(model, data);
  kmeans_fit(model, data);
  const double after = kmeans_inertia(model, data);
  EXPECT_LE(after, before + 1e-9);
}

TEST(KMeans, AssignMatchesNearestCentroid) {
  auto data = separated_blobs(100);
  util::Rng rng{3};
  KMeansModel model = kmeans_init(data, 4, rng);
  kmeans_fit(model, data);
  const auto assign = kmeans_assign(model, data);
  ASSERT_EQ(assign.size(), 100U);
  for (std::int32_t a : assign) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

TEST(KMeans, MoreClustersNeverWorseInertia) {
  auto data = separated_blobs(200, 17);
  util::Rng rng{4};
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k : {1U, 2U, 4U, 8U}) {
    util::Rng fork = rng.fork("k" + std::to_string(k));
    KMeansModel model = kmeans_init(data, k, fork);
    kmeans_fit(model, data);
    const double inertia = kmeans_inertia(model, data);
    EXPECT_LE(inertia, prev * 1.05);  // allow local-minimum slack
    prev = inertia;
  }
}

TEST(KMeans, ValidatesInput) {
  auto data = separated_blobs(10);
  util::Rng rng{5};
  EXPECT_THROW(kmeans_init(data, 0, rng), std::invalid_argument);
  EXPECT_THROW(kmeans_init(data, 11, rng), std::invalid_argument);
  KMeansModel empty;
  EXPECT_THROW(kmeans_fit(empty, data), std::invalid_argument);
}

TEST(KMeans, AverageBlendsCentroids) {
  KMeansModel a;
  a.centroids = Tensor{{1, 2}, {0.0F, 0.0F}};
  KMeansModel b;
  b.centroids = Tensor{{1, 2}, {4.0F, 8.0F}};
  const KMeansModel avg = kmeans_average({{a, 1.0}, {b, 3.0}});
  EXPECT_FLOAT_EQ(avg.centroids[0], 3.0F);
  EXPECT_FLOAT_EQ(avg.centroids[1], 6.0F);
}

TEST(KMeans, AverageValidates) {
  KMeansModel a;
  a.centroids = Tensor{{1, 2}};
  KMeansModel wrong;
  wrong.centroids = Tensor{{2, 2}};
  EXPECT_THROW(kmeans_average({}), std::invalid_argument);
  EXPECT_THROW(kmeans_average({{a, 1.0}, {wrong, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(kmeans_average({{a, 0.0}}), std::invalid_argument);
}

// ----- determinism + degenerate inputs (the GMM init path depends on these
// behaviors: ml::gmm_init seeds its components from k-means) ----------------

TEST(KMeans, EmptyClusterKeepsPreviousCentroid) {
  auto data = separated_blobs(120, 21);
  util::Rng rng{6};
  KMeansModel model = kmeans_init(data, 4, rng);
  kmeans_fit(model, data);
  // Plant one centroid far outside the data's support: no point assigns to
  // it, so the empty-cluster rule must keep it exactly where it was while
  // the live centroids keep fitting.
  const std::size_t d = data.base().sample_size();
  std::vector<float> planted(d, 1.0e6F);
  std::copy(planted.begin(), planted.end(), model.centroids.data());
  kmeans_fit(model, data);
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_FLOAT_EQ(model.centroids[j], 1.0e6F);
  }
  // The remaining clusters still explain the data (finite, sane inertia).
  const double inertia = kmeans_inertia(model, data);
  EXPECT_TRUE(std::isfinite(inertia));
  const auto assign = kmeans_assign(model, data);
  EXPECT_EQ(std::count(assign.begin(), assign.end(), 0), 0);
}

TEST(KMeans, MoreClustersThanPointsThrows) {
  auto data = separated_blobs(5);
  util::Rng rng{7};
  EXPECT_THROW(kmeans_init(data, 6, rng), std::invalid_argument);
  // k == n is the legal boundary: every point can seed its own centre and
  // the fit collapses inertia to ~0.
  KMeansModel model = kmeans_init(data, 5, rng);
  kmeans_fit(model, data);
  EXPECT_NEAR(kmeans_inertia(model, data), 0.0, 1e-6);
}

TEST(KMeans, AllIdenticalPointsDegenerate) {
  // Every sample equal: k-means++ hits its zero-total branch and must not
  // divide by zero; the fit converges with zero inertia.
  auto base = std::make_shared<Dataset>(
      Tensor{{8, 3}, std::vector<float>(24, 2.5F)},
      std::vector<std::int32_t>(8, 0), 1);
  auto data = DatasetView::all(base);
  util::Rng rng{8};
  KMeansModel model = kmeans_init(data, 3, rng);
  const auto report = kmeans_fit(model, data);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(kmeans_inertia(model, data), 0.0, 1e-9);
}

TEST(KMeans, PermutedInputOrderSameFit) {
  auto data = separated_blobs(200, 33);
  util::Rng rng{9};
  const KMeansModel init = kmeans_init(data, 4, rng);

  // Same init, reversed sample order: Lloyd assignments are per-point and
  // the centroid sums accumulate in double, so the fitted centroids must
  // agree to float rounding — input order is not allowed to steer the fit.
  std::vector<std::uint32_t> reversed(data.indices().rbegin(),
                                      data.indices().rend());
  DatasetView permuted{data.base_ptr(), std::move(reversed)};

  KMeansModel a = init;
  KMeansModel b = init;
  kmeans_fit(a, data);
  kmeans_fit(b, permuted);
  ASSERT_TRUE(a.centroids.same_shape(b.centroids));
  for (std::size_t i = 0; i < a.centroids.size(); ++i) {
    EXPECT_NEAR(a.centroids[i], b.centroids[i], 1e-4)
        << "centroid coordinate " << i << " depends on input order";
  }
  EXPECT_NEAR(kmeans_inertia(a, data), kmeans_inertia(b, data), 1e-6);
}

TEST(KMeans, DeterministicGivenSeed) {
  auto data = separated_blobs(150);
  auto run = [&](std::uint64_t seed) {
    util::Rng rng{seed};
    KMeansModel m = kmeans_init(data, 4, rng);
    kmeans_fit(m, data);
    return m.centroids;
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace roadrunner::ml
