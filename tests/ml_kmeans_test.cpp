#include "ml/kmeans.hpp"

#include <gtest/gtest.h>

#include "data/gaussian_blobs.hpp"

namespace roadrunner::ml {
namespace {

DatasetView separated_blobs(std::size_t n, std::uint64_t seed = 3) {
  data::GaussianBlobConfig cfg;
  cfg.num_classes = 4;
  cfg.dimensions = 8;
  cfg.center_radius = 8.0;  // well separated
  cfg.spread = 0.8;
  cfg.seed = seed;
  return DatasetView::all(
      std::make_shared<Dataset>(data::make_gaussian_blobs(n, cfg)));
}

TEST(KMeans, ConvergesOnSeparatedBlobs) {
  auto data = separated_blobs(400);
  util::Rng rng{1};
  KMeansModel model = kmeans_init(data, 4, rng);
  const auto report = kmeans_fit(model, data);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.iterations, 0U);
  EXPECT_GT(kmeans_purity(model, data), 0.95);
}

TEST(KMeans, InertiaDecreasesDuringFit) {
  auto data = separated_blobs(300, 9);
  util::Rng rng{2};
  KMeansModel model = kmeans_init(data, 4, rng);
  const double before = kmeans_inertia(model, data);
  kmeans_fit(model, data);
  const double after = kmeans_inertia(model, data);
  EXPECT_LE(after, before + 1e-9);
}

TEST(KMeans, AssignMatchesNearestCentroid) {
  auto data = separated_blobs(100);
  util::Rng rng{3};
  KMeansModel model = kmeans_init(data, 4, rng);
  kmeans_fit(model, data);
  const auto assign = kmeans_assign(model, data);
  ASSERT_EQ(assign.size(), 100U);
  for (std::int32_t a : assign) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

TEST(KMeans, MoreClustersNeverWorseInertia) {
  auto data = separated_blobs(200, 17);
  util::Rng rng{4};
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k : {1U, 2U, 4U, 8U}) {
    util::Rng fork = rng.fork("k" + std::to_string(k));
    KMeansModel model = kmeans_init(data, k, fork);
    kmeans_fit(model, data);
    const double inertia = kmeans_inertia(model, data);
    EXPECT_LE(inertia, prev * 1.05);  // allow local-minimum slack
    prev = inertia;
  }
}

TEST(KMeans, ValidatesInput) {
  auto data = separated_blobs(10);
  util::Rng rng{5};
  EXPECT_THROW(kmeans_init(data, 0, rng), std::invalid_argument);
  EXPECT_THROW(kmeans_init(data, 11, rng), std::invalid_argument);
  KMeansModel empty;
  EXPECT_THROW(kmeans_fit(empty, data), std::invalid_argument);
}

TEST(KMeans, AverageBlendsCentroids) {
  KMeansModel a;
  a.centroids = Tensor{{1, 2}, {0.0F, 0.0F}};
  KMeansModel b;
  b.centroids = Tensor{{1, 2}, {4.0F, 8.0F}};
  const KMeansModel avg = kmeans_average({{a, 1.0}, {b, 3.0}});
  EXPECT_FLOAT_EQ(avg.centroids[0], 3.0F);
  EXPECT_FLOAT_EQ(avg.centroids[1], 6.0F);
}

TEST(KMeans, AverageValidates) {
  KMeansModel a;
  a.centroids = Tensor{{1, 2}};
  KMeansModel wrong;
  wrong.centroids = Tensor{{2, 2}};
  EXPECT_THROW(kmeans_average({}), std::invalid_argument);
  EXPECT_THROW(kmeans_average({{a, 1.0}, {wrong, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(kmeans_average({{a, 0.0}}), std::invalid_argument);
}

TEST(KMeans, DeterministicGivenSeed) {
  auto data = separated_blobs(150);
  auto run = [&](std::uint64_t seed) {
    util::Rng rng{seed};
    KMeansModel m = kmeans_init(data, 4, rng);
    kmeans_fit(m, data);
    return m.centroids;
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace roadrunner::ml
