// Tests for the second wave of ML features: Adam, Dropout, FedProx-style
// proximal training, and the metric-analysis helpers.
#include <gtest/gtest.h>

#include "data/gaussian_blobs.hpp"
#include "metrics/analysis.hpp"
#include "ml/adam.hpp"
#include "ml/models.hpp"
#include "ml/trainer.hpp"
#include "test_util.hpp"

namespace roadrunner::ml {
namespace {

// -------------------------------------------------------------------- Adam --

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Adam opt{0.1F};
  Tensor p{{2}, {1.0F, -1.0F}};
  Tensor g{{2}, {3.0F, -0.5F}};
  opt.step({&p}, {&g});
  EXPECT_NEAR(p[0], 1.0F - 0.1F, 1e-4);
  EXPECT_NEAR(p[1], -1.0F + 0.1F, 1e-4);
  EXPECT_EQ(opt.steps_taken(), 1U);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 — Adam must land near 3.
  Adam opt{0.05F};
  Tensor w{{1}, {0.0F}};
  Tensor g{{1}};
  for (int i = 0; i < 2000; ++i) {
    g[0] = 2.0F * (w[0] - 3.0F);
    opt.step({&w}, {&g});
  }
  EXPECT_NEAR(w[0], 3.0F, 0.05);
}

TEST(Adam, ValidatesArguments) {
  EXPECT_THROW((Adam{0.0F}), std::invalid_argument);
  EXPECT_THROW((Adam{0.1F, 1.0F}), std::invalid_argument);
  EXPECT_THROW((Adam{0.1F, 0.9F, 1.0F}), std::invalid_argument);
  EXPECT_THROW((Adam{0.1F, 0.9F, 0.999F, 0.0F}), std::invalid_argument);
  Adam opt{0.1F};
  Tensor p{{2}};
  Tensor g{{3}};
  EXPECT_THROW(opt.step({&p}, {&g}), std::invalid_argument);
  opt.reset();
  EXPECT_EQ(opt.steps_taken(), 0U);
}

TEST(Adam, TrainerIntegrationLearns) {
  data::GaussianBlobConfig bc;
  auto view = DatasetView::all(
      std::make_shared<Dataset>(data::make_gaussian_blobs(300, bc)));
  util::Rng rng{1};
  Network net = make_mlp(16, 24, 4);
  prime_and_init(net, {16}, rng);
  TrainConfig cfg;
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.learning_rate = 0.005F;
  cfg.epochs = 5;
  util::Rng train_rng{2};
  train_sgd(net, view, cfg, train_rng);
  EXPECT_GT(evaluate(net, view).accuracy, 0.8);
}

// ----------------------------------------------------------------- Dropout --

TEST(Dropout, IdentityInInferenceMode) {
  Dropout drop{0.5F};
  drop.set_training(false);
  util::Rng rng{3};
  Tensor x{{4, 8}};
  roadrunner::testing::randomize(x, rng);
  EXPECT_EQ(drop.forward(x), x);
  EXPECT_EQ(drop.backward(x), x);
}

TEST(Dropout, TrainingModeZeroesAndRescales) {
  Dropout drop{0.5F};
  util::Rng rng{4};
  drop.init_params(rng);
  Tensor x = Tensor::full({1, 1000}, 1.0F);
  Tensor y = drop.forward(x);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0F) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0F);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros), 500.0, 60.0);
  // Expectation preserved: mean(y) ~ mean(x).
  EXPECT_NEAR(y.sum() / 1000.0, 1.0, 0.15);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop{0.3F};
  util::Rng rng{5};
  drop.init_params(rng);
  Tensor x = Tensor::full({1, 100}, 1.0F);
  Tensor y = drop.forward(x);
  Tensor g = Tensor::full({1, 100}, 1.0F);
  Tensor dx = drop.backward(g);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(dx[i], y[i]);  // same mask and scale on ones
  }
}

TEST(Dropout, ValidatesProbability) {
  EXPECT_THROW(Dropout{-0.1F}, std::invalid_argument);
  EXPECT_THROW(Dropout{1.0F}, std::invalid_argument);
  EXPECT_NO_THROW(Dropout{0.0F});
}

TEST(Dropout, MlpWithDropoutTrainsAndEvaluatesDeterministically) {
  data::GaussianBlobConfig bc;
  auto view = DatasetView::all(
      std::make_shared<Dataset>(data::make_gaussian_blobs(200, bc)));
  util::Rng rng{6};
  Network net = make_mlp(16, 32, 4, /*dropout_p=*/0.2F);
  prime_and_init(net, {16}, rng);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.learning_rate = 0.05F;
  util::Rng train_rng{7};
  train_sgd(net, view, cfg, train_rng);
  // Evaluation must be deterministic (dropout off) and decent.
  const auto a = evaluate(net, view);
  const auto b = evaluate(net, view);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_GT(a.accuracy, 0.7);
}

// ------------------------------------------------------------- FedProx ----

TEST(Proximal, AnchorsWeightsToReference) {
  data::GaussianBlobConfig bc;
  auto view = DatasetView::all(
      std::make_shared<Dataset>(data::make_gaussian_blobs(120, bc)));
  util::Rng rng{8};
  Network base = make_mlp(16, 16, 4);
  prime_and_init(base, {16}, rng);
  const Weights start = base.weights();

  auto drift_norm = [&](float mu) {
    Network net = base;
    TrainConfig cfg;
    cfg.epochs = 4;
    cfg.learning_rate = 0.05F;
    cfg.proximal_mu = mu;
    util::Rng train_rng{9};
    train_sgd(net, view, cfg, train_rng);
    const Weights end = net.weights();
    double norm = 0.0;
    for (std::size_t i = 0; i < end.size(); ++i) {
      norm += (end[i] - start[i]).norm();
    }
    return norm;
  };

  const double free_drift = drift_norm(0.0F);
  const double mild = drift_norm(0.1F);
  const double strong = drift_norm(5.0F);
  EXPECT_LT(mild, free_drift);
  EXPECT_LT(strong, mild);
}

TEST(Proximal, NegativeMuRejected) {
  data::GaussianBlobConfig bc;
  auto view = DatasetView::all(
      std::make_shared<Dataset>(data::make_gaussian_blobs(32, bc)));
  util::Rng rng{10};
  Network net = make_mlp(16, 8, 4);
  prime_and_init(net, {16}, rng);
  TrainConfig cfg;
  cfg.proximal_mu = -1.0F;
  EXPECT_THROW(train_sgd(net, view, cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace roadrunner::ml

namespace roadrunner::metrics {
namespace {

std::vector<Point> ramp() {
  return {{0, 0.1}, {10, 0.3}, {20, 0.5}, {30, 0.45}, {40, 0.7}};
}

TEST(Analysis, TimeToThreshold) {
  EXPECT_DOUBLE_EQ(time_to_threshold(ramp(), 0.5).value(), 20.0);
  EXPECT_DOUBLE_EQ(time_to_threshold(ramp(), 0.05).value(), 0.0);
  EXPECT_FALSE(time_to_threshold(ramp(), 0.9).has_value());
  EXPECT_FALSE(time_to_threshold({}, 0.1).has_value());
}

TEST(Analysis, TimeAverage) {
  // Constant series -> the constant.
  EXPECT_DOUBLE_EQ(time_average({{0, 2.0}, {10, 2.0}}), 2.0);
  // Linear 0 -> 1 over the span -> 0.5.
  EXPECT_DOUBLE_EQ(time_average({{0, 0.0}, {10, 1.0}}), 0.5);
  EXPECT_DOUBLE_EQ(time_average({{5, 3.0}}), 3.0);
  EXPECT_DOUBLE_EQ(time_average({}), 0.0);
}

TEST(Analysis, PeakAndJitter) {
  EXPECT_DOUBLE_EQ(peak_value(ramp()), 0.7);
  // |0.2| + |0.2| + |0.05| + |0.25| over 4 gaps.
  EXPECT_NEAR(mean_absolute_change(ramp()), (0.2 + 0.2 + 0.05 + 0.25) / 4,
              1e-12);
  EXPECT_DOUBLE_EQ(mean_absolute_change({{0, 1.0}}), 0.0);
}

TEST(Analysis, Summarize) {
  const auto s = summarize(ramp());
  EXPECT_DOUBLE_EQ(s.final_value, 0.7);
  EXPECT_DOUBLE_EQ(s.peak, 0.7);
  EXPECT_GT(s.time_avg, 0.0);
  ASSERT_TRUE(s.time_to_half_peak.has_value());
  EXPECT_DOUBLE_EQ(*s.time_to_half_peak, 20.0);  // first >= 0.35
  const auto empty = summarize({});
  EXPECT_DOUBLE_EQ(empty.final_value, 0.0);
}

}  // namespace
}  // namespace roadrunner::metrics
