// Tests for weights-file persistence and the structured event trace.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/simulator.hpp"
#include "data/gaussian_blobs.hpp"
#include "ml/models.hpp"
#include "ml/serialize.hpp"
#include "strategy/federated.hpp"
#include "util/csv.hpp"

namespace roadrunner {
namespace {

// ---------------------------------------------------------- weight files --

TEST(WeightsFile, SaveLoadRoundTrip) {
  util::Rng rng{1};
  ml::Network net = ml::make_mlp(8, 12, 3);
  net.init_params(rng);
  const ml::Weights original = net.weights();
  const std::string path = ::testing::TempDir() + "/rr_model.rrwt";
  ml::save_weights(original, path);
  const ml::Weights loaded = ml::load_weights(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]);
  }
  std::filesystem::remove(path);
}

TEST(WeightsFile, RejectsMissingAndCorrupt) {
  EXPECT_THROW(ml::load_weights("/no/such/model.rrwt"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/rr_bad.rrwt";
  {
    std::ofstream out{path, std::ios::binary};
    out << "XXXXgarbage";
  }
  EXPECT_THROW(ml::load_weights(path), std::runtime_error);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ event trace --

TEST(EventTrace, DisabledRecordsNothing) {
  core::EventTrace trace{false};
  trace.record(1.0, core::TraceKind::kPowerOn, 0);
  EXPECT_TRUE(trace.events().empty());
}

TEST(EventTrace, RecordsFiltersAndExports) {
  core::EventTrace trace{true};
  trace.record(1.0, core::TraceKind::kMessageSent, 0, 2, "global-model");
  trace.record(2.5, core::TraceKind::kMessageDelivered, 0, 2, "global-model");
  trace.record(3.0, core::TraceKind::kPowerOff, 2);
  ASSERT_EQ(trace.events().size(), 3U);
  EXPECT_EQ(trace.filter(core::TraceKind::kPowerOff).size(), 1U);
  EXPECT_EQ(trace.filter(core::TraceKind::kEncounterEnd).size(), 0U);

  std::ostringstream out;
  trace.export_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_s,kind,a,b,detail"), std::string::npos);
  EXPECT_NE(csv.find("2.5,message-delivered,0,2,global-model"),
            std::string::npos);
  EXPECT_NE(csv.find("3,power-off,2,-,"), std::string::npos);

  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(EventTrace, CsvExportRoundTripsHostileDetailStrings) {
  // Regression: detail strings carrying the CSV separator, quotes, and
  // newlines must survive export_csv -> read_csv unchanged (read_csv once
  // choked on quoted fields spanning lines).
  core::EventTrace trace{true};
  const std::string commas_and_quotes = "msg,tag=\"global\",round=2";
  const std::string multiline = "line one\nline \"two\",\nline three";
  trace.record(1.0, core::TraceKind::kMessageSent, 0, 1, commas_and_quotes);
  trace.record(2.0, core::TraceKind::kMessageDelivered, 0, 1, multiline);
  trace.record(3.0, core::TraceKind::kPowerOff, 1);

  std::ostringstream out;
  trace.export_csv(out);
  std::istringstream in{out.str()};
  const auto rows = util::read_csv(in);

  ASSERT_EQ(rows.size(), 4U);  // header + 3 records
  ASSERT_GE(rows[1].size(), 5U);
  EXPECT_EQ(rows[1][4], commas_and_quotes);
  EXPECT_EQ(rows[2][4], multiline);
  EXPECT_EQ(rows[2][0], "2");
  EXPECT_EQ(rows[3][1], "power-off");
}

TEST(EventTrace, SimulatorProducesCoherentTrace) {
  // A small FL run with tracing on: every delivered message must have a
  // matching earlier send, and trainings complete after they start.
  std::vector<mobility::VehicleTrack> tracks;
  for (int v = 0; v < 3; ++v) {
    const mobility::Position p{50.0 * v, 0.0};
    tracks.push_back({mobility::Trace{{{0.0, p}, {2000.0, p}}},
                      mobility::IgnitionSchedule::always_on()});
  }
  auto fleet = std::make_shared<mobility::FleetModel>(std::move(tracks));
  auto dataset =
      std::make_shared<ml::Dataset>(data::make_gaussian_blobs(160));
  ml::Network proto = ml::make_logreg(16, 4);
  util::Rng rng{3};
  ml::prime_and_init(proto, {16}, rng);

  std::vector<std::uint32_t> test_idx;
  for (std::uint32_t i = 120; i < 160; ++i) test_idx.push_back(i);
  core::SimulatorConfig cfg;
  cfg.horizon_s = 2000.0;
  cfg.trace_events = true;
  comm::Network::Config net;
  net.v2c.loss_probability = 0.0;
  core::Simulator sim{*fleet, net,
                      core::MlService{proto, ml::DatasetView{dataset,
                                                             test_idx}},
                      cfg};
  sim.add_cloud();
  for (std::uint32_t v = 0; v < 3; ++v) {
    std::vector<std::uint32_t> idx;
    for (std::uint32_t i = 40 * v; i < 40 * (v + 1); ++i) idx.push_back(i);
    sim.add_vehicle(v, ml::DatasetView{dataset, idx});
  }
  strategy::RoundConfig round;
  round.rounds = 3;
  round.participants = 2;
  round.round_duration_s = 30.0;
  sim.set_strategy(std::make_shared<strategy::FederatedStrategy>(round));
  sim.run();

  const auto& trace = sim.trace();
  ASSERT_FALSE(trace.events().empty());

  const auto sent = trace.filter(core::TraceKind::kMessageSent);
  const auto delivered = trace.filter(core::TraceKind::kMessageDelivered);
  const auto failed = trace.filter(core::TraceKind::kMessageFailed);
  EXPECT_EQ(sent.size(), delivered.size() + failed.size());
  // Every delivery has a preceding send of the same pair+tag.
  for (const auto& d : delivered) {
    bool found = false;
    for (const auto& s : sent) {
      if (s.a == d.a && s.b == d.b && s.detail == d.detail &&
          s.time_s <= d.time_s) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "unmatched delivery " << d.detail;
  }

  const auto started = trace.filter(core::TraceKind::kTrainingStarted);
  const auto completed = trace.filter(core::TraceKind::kTrainingCompleted);
  EXPECT_EQ(started.size(), completed.size());  // nobody powers off here
  EXPECT_GE(started.size(), 3U);                // >= 1 per round on average

  // Timestamps are non-decreasing.
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].time_s, trace.events()[i].time_s);
  }
}

TEST(EventTrace, DefaultOffInSimulator) {
  std::vector<mobility::VehicleTrack> tracks;
  tracks.push_back({mobility::Trace{{{0.0, {0, 0}}, {100.0, {0, 0}}}},
                    mobility::IgnitionSchedule::always_on()});
  auto fleet = std::make_shared<mobility::FleetModel>(std::move(tracks));
  auto dataset = std::make_shared<ml::Dataset>(data::make_gaussian_blobs(8));
  ml::Network proto = ml::make_logreg(16, 4);
  util::Rng rng{4};
  ml::prime_and_init(proto, {16}, rng);
  core::SimulatorConfig cfg;
  cfg.horizon_s = 50.0;
  core::Simulator sim{*fleet, comm::Network::Config{},
                      core::MlService{proto, ml::DatasetView::all(dataset)},
                      cfg};
  sim.add_cloud();
  sim.add_vehicle(0, ml::DatasetView::all(dataset));
  strategy::RoundConfig round;
  round.rounds = 1;
  round.participants = 1;
  sim.set_strategy(std::make_shared<strategy::FederatedStrategy>(round));
  sim.run();
  EXPECT_FALSE(sim.trace().enabled());
  EXPECT_TRUE(sim.trace().events().empty());
}

}  // namespace
}  // namespace roadrunner
