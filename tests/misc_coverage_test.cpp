// Assorted edge-case coverage: message wire accounting, agent/channel
// string helpers, round-machinery corner cases (idle rounds, collect
// timeout, reply round mismatches), gossip merge cooldown, and simulator
// API misuse.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "data/gaussian_blobs.hpp"
#include "ml/models.hpp"
#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "strategy/gossip.hpp"

namespace roadrunner {
namespace {

// ------------------------------------------------------------- messages --

TEST(Message, WireBytesAccountsHeaderModelAndExtras) {
  core::Message msg;
  EXPECT_EQ(msg.wire_bytes(), core::Message::kHeaderBytes + 4U);  // empty w
  msg.extra_bytes = 1000;
  EXPECT_EQ(msg.wire_bytes(), core::Message::kHeaderBytes + 4U + 1000U);
  msg.model.emplace_back(std::vector<std::size_t>{10});
  EXPECT_EQ(msg.wire_bytes(), core::Message::kHeaderBytes +
                                  ml::weights_byte_size(msg.model) + 1000U);
}

TEST(Strings, AgentAndChannelNames) {
  EXPECT_EQ(core::to_string(core::AgentKind::kVehicle), "vehicle");
  EXPECT_EQ(core::to_string(core::AgentKind::kRoadsideUnit), "rsu");
  EXPECT_EQ(core::to_string(core::AgentKind::kCloudServer), "cloud");
  EXPECT_EQ(core::to_string(core::TraceKind::kEncounterBegin),
            "encounter-begin");
}

// ----------------------------------------------------- round-base corners --

scenario::ScenarioConfig tiny_world(std::uint64_t seed,
                                    double initial_on = 1.0) {
  scenario::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.vehicles = 6;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 900;
  cfg.test_size = 200;
  cfg.partition = "iid";
  cfg.samples_per_vehicle = 30;
  cfg.model = "logreg";
  cfg.city.duration_s = 5000.0;
  cfg.city.initial_on_probability = initial_on;
  cfg.city.dwell_on_probability = initial_on;
  return cfg;
}

TEST(RoundBase, IdleRoundsWhenFleetUnavailableThenRecovers) {
  // Everyone starts parked-off; the server idles rounds until trips begin,
  // then completes its quota before the horizon.
  auto cfg = tiny_world(71, /*initial_on=*/0.0);
  cfg.city.dwell_mean_s = 150.0;
  scenario::Scenario scenario{cfg};
  strategy::RoundConfig round;
  round.rounds = 3;
  round.participants = 2;
  round.round_duration_s = 40.0;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 3.0);
  // The first accuracy point is at t=0; the first *round* point comes later
  // than 3 nominal rounds would take, because of the idle retries.
  const auto& acc = result.metrics.series("accuracy");
  EXPECT_GT(acc.back().time_s, 3 * 40.0);
}

TEST(RoundBase, StaleRepliesFromOldRoundsIgnored) {
  // A strategy stub that captures the server's state transitions is
  // overkill here; instead assert the invariant the guard produces: the
  // contributions series never exceeds the participants cap even when
  // replies straggle across round boundaries (forced by a collect timeout
  // shorter than the reply transfer time).
  auto cfg = tiny_world(72);
  cfg.net.v2c.bandwidth_bytes_per_s = 2e4;  // model reply takes ~4 s
  scenario::Scenario scenario{cfg};
  strategy::RoundConfig round;
  round.rounds = 5;
  round.participants = 3;
  round.round_duration_s = 20.0;
  round.collect_timeout_s = 1.0;  // most replies arrive too late
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  EXPECT_DOUBLE_EQ(result.metrics.counter("rounds_completed"), 5.0);
  for (const auto& p : result.metrics.series("contributions_per_round")) {
    EXPECT_LE(p.value, 3.0);
  }
}

TEST(RoundBase, ProvenanceNeverExceedsFleet) {
  scenario::Scenario scenario{tiny_world(73)};
  strategy::RoundConfig round;
  round.rounds = 6;
  round.participants = 4;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  for (const auto& p :
       result.metrics.series("unique_data_contributors")) {
    EXPECT_LE(p.value, 6.0);
  }
}

// ------------------------------------------------------- gossip cooldown --

TEST(Gossip, MergeCooldownBoundsMergeRate) {
  // Two vehicles permanently in range: without a cooldown every mobility
  // tick could trigger a merge; with cooldown C over horizon T, merges per
  // vehicle are bounded by ~T/C.
  scenario::ScenarioConfig cfg = tiny_world(74);
  cfg.vehicles = 2;
  cfg.city.city_size_m = 150.0;  // both inside one V2X cell
  cfg.city.block_size_m = 100.0;
  cfg.horizon_s = 1000.0;
  scenario::Scenario scenario{cfg};
  strategy::GossipConfig gossip;
  gossip.merge_cooldown_s = 100.0;
  gossip.retrain_interval_s = 50.0;
  gossip.eval_interval_s = 500.0;
  gossip.duration_s = 990.0;
  const auto result =
      scenario.run(std::make_shared<strategy::GossipStrategy>(gossip));
  // Upper bound: 2 vehicles x (1000 / 100) merges, plus slack for the
  // first exchange.
  EXPECT_LE(result.metrics.counter("gossip_merges"), 22.0);
}

// --------------------------------------------------------- simulator API --

TEST(SimulatorApi, MisuseThrows) {
  mobility::CityModelConfig city;
  city.duration_s = 100.0;
  auto fleet = std::make_shared<mobility::FleetModel>(
      mobility::make_city_fleet(2, city));
  auto dataset = std::make_shared<ml::Dataset>(data::make_gaussian_blobs(8));
  ml::Network proto = ml::make_logreg(16, 4);
  util::Rng rng{5};
  ml::prime_and_init(proto, {16}, rng);
  core::SimulatorConfig cfg;
  cfg.horizon_s = 50.0;

  core::Simulator sim{*fleet, comm::Network::Config{},
                      core::MlService{proto, ml::DatasetView::all(dataset)},
                      cfg};
  // No strategy set.
  sim.add_cloud();
  EXPECT_THROW(sim.run(), std::logic_error);

  // Out-of-range agent queries.
  EXPECT_THROW((void)sim.agent(99), std::out_of_range);
  // The cloud has no position.
  EXPECT_THROW((void)sim.position_of(0), std::logic_error);

  // Bad mobility tick.
  core::SimulatorConfig bad = cfg;
  bad.mobility_tick_s = 0.0;
  EXPECT_THROW(
      (core::Simulator{*fleet, comm::Network::Config{},
                       core::MlService{proto, ml::DatasetView::all(dataset)},
                       bad}),
      std::invalid_argument);
}

TEST(SimulatorApi, CloudIdWithoutCloudThrows) {
  mobility::CityModelConfig city;
  city.duration_s = 100.0;
  auto fleet = std::make_shared<mobility::FleetModel>(
      mobility::make_city_fleet(1, city));
  auto dataset = std::make_shared<ml::Dataset>(data::make_gaussian_blobs(8));
  ml::Network proto = ml::make_logreg(16, 4);
  util::Rng rng{6};
  ml::prime_and_init(proto, {16}, rng);
  core::SimulatorConfig cfg;
  core::Simulator sim{*fleet, comm::Network::Config{},
                      core::MlService{proto, ml::DatasetView::all(dataset)},
                      cfg};
  EXPECT_THROW((void)sim.cloud_id(), std::logic_error);
}

// ----------------------------------------------------------- ml service --

TEST(MlService, RejectsEmptyPrototypeAndPrimingFixesConvFlops) {
  auto dataset = std::make_shared<ml::Dataset>(data::make_gaussian_blobs(8));
  ml::Network empty;
  EXPECT_THROW((core::MlService{empty, ml::DatasetView::all(dataset)}),
               std::invalid_argument);
  // Before priming, a CNN's conv layers report 0 FLOPs (spatial dims
  // unknown) and only the FC layers count; priming must raise the figure.
  ml::Network cnn = ml::make_paper_cnn();
  const std::uint64_t before = cnn.flops_per_sample();
  util::Rng rng{9};
  ml::prime_and_init(cnn, {3, 32, 32}, rng);
  EXPECT_GT(cnn.flops_per_sample(), before);
}

TEST(MlService, TestWithoutTestSetThrows) {
  ml::Network proto = ml::make_logreg(16, 4);
  util::Rng rng{7};
  ml::prime_and_init(proto, {16}, rng);
  core::MlService svc{proto, ml::DatasetView{}};
  EXPECT_THROW((void)svc.test(proto.weights()), std::logic_error);
}

TEST(MlService, FlopEstimateMatchesTrainerReport) {
  auto dataset =
      std::make_shared<ml::Dataset>(data::make_gaussian_blobs(64));
  ml::Network proto = ml::make_logreg(16, 4);
  util::Rng rng{8};
  ml::prime_and_init(proto, {16}, rng);
  core::MlService svc{proto, ml::DatasetView::all(dataset)};
  ml::TrainConfig cfg;
  cfg.epochs = 3;
  const auto result = svc.train(proto.weights(),
                                ml::DatasetView::all(dataset), cfg,
                                util::Rng{9});
  EXPECT_EQ(svc.estimate_train_flops(64, 3), result.report.flops);
}

}  // namespace
}  // namespace roadrunner
