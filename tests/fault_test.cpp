// Fault subsystem unit tests: plan grammar (parsing + validation), severity
// scaling, symbolic target resolution, and the injector's window/crash/
// corruption/recovery logic including its checkpoint round trip.
#include <gtest/gtest.h>

#include <limits>

#include "comm/network.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "util/binary_io.hpp"
#include "util/ini.hpp"
#include "util/rng.hpp"

namespace roadrunner::fault {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

util::IniFile parse(const std::string& text) {
  return util::IniFile::parse(text);
}

// ------------------------------------------------------------ parsing -----

TEST(FaultPlanParse, EmptyIniYieldsEmptyPlan) {
  const FaultPlan plan = plan_from_ini(parse("[scenario]\nvehicles = 3\n"));
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.severity, 1.0);
}

TEST(FaultPlanParse, FullGrammarRoundTrip) {
  const FaultPlan plan = plan_from_ini(parse(R"([fault]
severity = 1.5
[fault.0]
kind = channel_degrade
channel = v2c
start_s = 100
end_s = 400
loss = 0.3
bandwidth_factor = 0.5
latency_factor = 2.0
[fault.1]
kind = region_outage
x_m = 1000
y_m = 900
radius_m = 500
channels = v2c,v2x
start_s = 0
end_s = 600
[fault.2]
kind = node_outage
target = rsu:1
start_s = 200
end_s = 300
[fault.3]
kind = hu_straggler
vehicle = 3
slowdown = 4.0
[fault.4]
kind = vehicle_crash
vehicle = 7
at_s = 500
reboot_after_s = 60
lose_data = true
[fault.5]
kind = payload_corruption
channel = v2x
probability = 0.2
)"));
  ASSERT_EQ(plan.events.size(), 6U);
  EXPECT_DOUBLE_EQ(plan.severity, 1.5);

  const FaultEvent& deg = plan.events[0];
  EXPECT_EQ(deg.kind, FaultKind::kChannelDegrade);
  EXPECT_EQ(deg.channel, comm::ChannelKind::kV2C);
  EXPECT_DOUBLE_EQ(deg.start_s, 100.0);
  EXPECT_DOUBLE_EQ(deg.end_s, 400.0);
  EXPECT_DOUBLE_EQ(deg.loss_add, 0.3);
  EXPECT_DOUBLE_EQ(deg.bandwidth_factor, 0.5);
  EXPECT_DOUBLE_EQ(deg.latency_factor, 2.0);

  const FaultEvent& region = plan.events[1];
  EXPECT_EQ(region.kind, FaultKind::kRegionOutage);
  EXPECT_DOUBLE_EQ(region.center.x, 1000.0);
  EXPECT_DOUBLE_EQ(region.center.y, 900.0);
  EXPECT_DOUBLE_EQ(region.radius_m, 500.0);
  EXPECT_TRUE(region.channels[static_cast<std::size_t>(
      comm::ChannelKind::kV2C)]);
  EXPECT_TRUE(region.channels[static_cast<std::size_t>(
      comm::ChannelKind::kV2X)]);
  EXPECT_FALSE(region.channels[static_cast<std::size_t>(
      comm::ChannelKind::kWired)]);

  const FaultEvent& outage = plan.events[2];
  EXPECT_EQ(outage.kind, FaultKind::kNodeOutage);
  EXPECT_EQ(outage.target, OutageTarget::kRsu);
  EXPECT_EQ(outage.node, 1U);

  const FaultEvent& straggler = plan.events[3];
  EXPECT_EQ(straggler.kind, FaultKind::kHuStraggler);
  EXPECT_FALSE(straggler.all_vehicles);
  EXPECT_EQ(straggler.vehicle, 3U);
  EXPECT_DOUBLE_EQ(straggler.slowdown, 4.0);
  EXPECT_EQ(straggler.end_s, kInf);  // open-ended window

  const FaultEvent& crash = plan.events[4];
  EXPECT_EQ(crash.kind, FaultKind::kVehicleCrash);
  EXPECT_EQ(crash.vehicle, 7U);
  EXPECT_DOUBLE_EQ(crash.at_s, 500.0);
  EXPECT_DOUBLE_EQ(crash.reboot_after_s, 60.0);
  EXPECT_TRUE(crash.lose_model);  // default
  EXPECT_TRUE(crash.lose_data);

  const FaultEvent& corrupt = plan.events[5];
  EXPECT_EQ(corrupt.kind, FaultKind::kPayloadCorruption);
  EXPECT_EQ(corrupt.channel, comm::ChannelKind::kV2X);
  EXPECT_DOUBLE_EQ(corrupt.probability, 0.2);
}

TEST(FaultPlanParse, StragglerDefaultsToAllVehicles) {
  const FaultPlan plan = plan_from_ini(parse(
      "[fault.0]\nkind = hu_straggler\nslowdown = 2\n"));
  ASSERT_EQ(plan.events.size(), 1U);
  EXPECT_TRUE(plan.events[0].all_vehicles);
}

TEST(FaultPlanParse, RejectsMalformedPlans) {
  EXPECT_THROW(plan_from_ini(parse("[fault.0]\nkind = meteor_strike\n")),
               std::runtime_error);
  EXPECT_THROW(plan_from_ini(parse(
                   "[fault.0]\nkind = channel_degrade\nchannel = carrier\n")),
               std::runtime_error);
  EXPECT_THROW(plan_from_ini(parse(
                   "[fault.0]\nkind = node_outage\ntarget = moonbase\n")),
               std::runtime_error);
  EXPECT_THROW(
      plan_from_ini(parse(
          "[fault.0]\nkind = channel_degrade\nstart_s = 10\nend_s = 5\n")),
      std::runtime_error);
  EXPECT_THROW(plan_from_ini(parse(
                   "[fault.0]\nkind = payload_corruption\nprobability = 2\n")),
               std::runtime_error);
  EXPECT_THROW(plan_from_ini(parse(
                   "[fault.0]\nkind = hu_straggler\nslowdown = 0\n")),
               std::runtime_error);
  EXPECT_THROW(plan_from_ini(parse(
                   "[fault.0]\nkind = vehicle_crash\nvehicle = all\n")),
               std::runtime_error);
  EXPECT_THROW(plan_from_ini(parse(
                   "[fault.0]\nkind = vehicle_crash\nreboot_after_s = -1\n")),
               std::runtime_error);
}

TEST(FaultPlanParse, NumberingGapFailsLoudly) {
  EXPECT_THROW(plan_from_ini(parse(R"([fault.0]
kind = node_outage
[fault.2]
kind = node_outage
)")),
               std::runtime_error);
}

// ------------------------------------------------------------ resolve -----

TEST(FaultPlanResolve, MapsSymbolicTargets) {
  FaultPlan plan = plan_from_ini(parse(R"([fault.0]
kind = node_outage
target = cloud
[fault.1]
kind = node_outage
target = rsu:1
)"));
  const std::vector<mobility::NodeId> rsus{20, 21, 22};
  const FaultPlan resolved = plan.resolved(rsus, 10);
  EXPECT_EQ(resolved.events[0].node, comm::kCloudEndpoint);
  EXPECT_EQ(resolved.events[0].target, OutageTarget::kNode);
  EXPECT_EQ(resolved.events[1].node, 21U);
  // Resolving twice is a no-op.
  EXPECT_EQ(resolved.resolved(rsus, 10).events[1].node, 21U);
}

TEST(FaultPlanResolve, RejectsOutOfRangeTargets) {
  FaultPlan rsu_plan = plan_from_ini(
      parse("[fault.0]\nkind = node_outage\ntarget = rsu:5\n"));
  EXPECT_THROW((void)rsu_plan.resolved({20, 21}, 10), std::invalid_argument);

  FaultPlan crash_plan = plan_from_ini(
      parse("[fault.0]\nkind = vehicle_crash\nvehicle = 12\n"));
  EXPECT_THROW((void)crash_plan.resolved({}, 10), std::invalid_argument);
}

// ------------------------------------------------------------- scaling ----

TEST(FaultPlanScale, SeverityOneIsIdentity) {
  const FaultPlan plan = plan_from_ini(parse(
      "[fault.0]\nkind = channel_degrade\nloss = 0.3\n"
      "bandwidth_factor = 0.5\n"));
  const FaultPlan scaled = plan.scaled();
  ASSERT_EQ(scaled.events.size(), 1U);
  EXPECT_DOUBLE_EQ(scaled.events[0].loss_add, 0.3);
  EXPECT_DOUBLE_EQ(scaled.events[0].bandwidth_factor, 0.5);
  EXPECT_DOUBLE_EQ(scaled.severity, 1.0);
}

TEST(FaultPlanScale, ZeroSeverityDisablesEverything) {
  FaultPlan plan = plan_from_ini(parse(
      "[fault]\nseverity = 0\n[fault.0]\nkind = node_outage\n"));
  EXPECT_TRUE(plan.scaled().empty());
}

TEST(FaultPlanScale, MagnitudesScalePerKind) {
  FaultPlan plan = plan_from_ini(parse(R"([fault]
severity = 2
[fault.0]
kind = channel_degrade
loss = 0.3
bandwidth_factor = 0.5
latency_factor = 2.0
[fault.1]
kind = region_outage
radius_m = 100
[fault.2]
kind = node_outage
start_s = 100
end_s = 200
[fault.3]
kind = hu_straggler
slowdown = 3
[fault.4]
kind = vehicle_crash
vehicle = 0
reboot_after_s = 30
[fault.5]
kind = payload_corruption
probability = 0.6
)"));
  const FaultPlan s = plan.scaled();
  EXPECT_DOUBLE_EQ(s.events[0].loss_add, 0.6);
  // Factors interpolate from the identity, 1 + (f - 1) * s, clamped away
  // from zero: here the interpolation lands exactly on 0 and hits the floor.
  EXPECT_DOUBLE_EQ(s.events[0].bandwidth_factor, 0.01);
  EXPECT_DOUBLE_EQ(s.events[0].latency_factor, 3.0);
  EXPECT_DOUBLE_EQ(s.events[1].radius_m, 200.0);
  EXPECT_DOUBLE_EQ(s.events[2].end_s, 300.0);  // duration stretched
  EXPECT_DOUBLE_EQ(s.events[3].slowdown, 5.0);
  EXPECT_DOUBLE_EQ(s.events[4].reboot_after_s, 60.0);
  EXPECT_DOUBLE_EQ(s.events[5].probability, 1.0);  // clamped

  // Extreme severity cannot flip a factor negative.
  plan.severity = 10.0;
  EXPECT_GT(plan.scaled().events[0].bandwidth_factor, 0.0);
}

// ------------------------------------------------------------- injector ---

FaultInjector make_injector(const std::string& ini_text) {
  FaultPlan plan = plan_from_ini(parse(ini_text));
  return FaultInjector{plan.resolved({20, 21}, 10).scaled(),
                       util::Rng{7}.fork("fault")};
}

TEST(FaultInjector, InertByDefault) {
  FaultInjector inert;
  EXPECT_FALSE(inert.enabled());
  EXPECT_FALSE(inert.node_down(0, 100.0));
  EXPECT_DOUBLE_EQ(inert.hu_slowdown(0, 100.0), 1.0);
  EXPECT_FALSE(inert.roll_corruption(comm::ChannelKind::kV2C, 100.0));
}

TEST(FaultInjector, NodeOutageWindowIsHalfOpen) {
  FaultInjector inj = make_injector(
      "[fault.0]\nkind = node_outage\ntarget = cloud\n"
      "start_s = 100\nend_s = 200\n");
  EXPECT_FALSE(inj.node_down(comm::kCloudEndpoint, 99.9));
  EXPECT_TRUE(inj.node_down(comm::kCloudEndpoint, 100.0));
  EXPECT_TRUE(inj.node_down(comm::kCloudEndpoint, 199.9));
  EXPECT_FALSE(inj.node_down(comm::kCloudEndpoint, 200.0));
  EXPECT_FALSE(inj.node_down(3, 150.0));  // other nodes unaffected
}

TEST(FaultInjector, CrashRebootWindowCountsAsDown) {
  FaultInjector inj = make_injector(
      "[fault.0]\nkind = vehicle_crash\nvehicle = 4\nat_s = 500\n"
      "reboot_after_s = 60\n");
  EXPECT_FALSE(inj.node_down(4, 499.0));
  EXPECT_TRUE(inj.node_down(4, 500.0));
  EXPECT_TRUE(inj.node_down(4, 559.9));
  EXPECT_FALSE(inj.node_down(4, 560.0));
  ASSERT_EQ(inj.crash_indices().size(), 1U);
  // crashed_between is half-open (t_begin, t_end].
  EXPECT_TRUE(inj.crashed_between(4, 499.0, 500.0));
  EXPECT_FALSE(inj.crashed_between(4, 500.0, 600.0));
  EXPECT_FALSE(inj.crashed_between(5, 499.0, 600.0));
}

TEST(FaultInjector, RegionBlocksOnlyFlaggedChannelsInsideRadius) {
  FaultInjector inj = make_injector(
      "[fault.0]\nkind = region_outage\nx_m = 0\ny_m = 0\nradius_m = 100\n"
      "channels = v2x\nstart_s = 0\nend_s = 1000\n");
  const mobility::Position inside{50.0, 0.0};
  const mobility::Position outside{150.0, 0.0};
  EXPECT_TRUE(inj.region_blocked(comm::ChannelKind::kV2X, inside, 10.0));
  EXPECT_FALSE(inj.region_blocked(comm::ChannelKind::kV2C, inside, 10.0));
  EXPECT_FALSE(inj.region_blocked(comm::ChannelKind::kV2X, outside, 10.0));
  EXPECT_FALSE(inj.region_blocked(comm::ChannelKind::kV2X, inside, 1000.0));
}

TEST(FaultInjector, OverlappingDegradesCompose) {
  FaultInjector inj = make_injector(R"([fault.0]
kind = channel_degrade
channel = v2c
loss = 0.2
bandwidth_factor = 0.5
start_s = 0
end_s = 100
[fault.1]
kind = channel_degrade
channel = v2c
loss = 0.1
latency_factor = 3.0
start_s = 50
end_s = 100
)");
  const comm::ChannelMods both = inj.channel_mods(comm::ChannelKind::kV2C,
                                                  60.0);
  EXPECT_DOUBLE_EQ(both.loss_add, 0.3);
  EXPECT_DOUBLE_EQ(both.bandwidth_factor, 0.5);
  EXPECT_DOUBLE_EQ(both.latency_factor, 3.0);
  const comm::ChannelMods one = inj.channel_mods(comm::ChannelKind::kV2C,
                                                 10.0);
  EXPECT_DOUBLE_EQ(one.loss_add, 0.2);
  const comm::ChannelMods off = inj.channel_mods(comm::ChannelKind::kV2X,
                                                 60.0);
  EXPECT_DOUBLE_EQ(off.loss_add, 0.0);
  EXPECT_DOUBLE_EQ(off.bandwidth_factor, 1.0);
}

TEST(FaultInjector, StragglerSlowdownsMultiply) {
  FaultInjector inj = make_injector(R"([fault.0]
kind = hu_straggler
vehicle = all
slowdown = 2
start_s = 0
end_s = 100
[fault.1]
kind = hu_straggler
vehicle = 3
slowdown = 3
start_s = 0
end_s = 100
)");
  EXPECT_DOUBLE_EQ(inj.hu_slowdown(3, 50.0), 6.0);
  EXPECT_DOUBLE_EQ(inj.hu_slowdown(5, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(inj.hu_slowdown(3, 150.0), 1.0);
}

TEST(FaultInjector, CorruptionDrawsRandomnessOnlyInsideWindows) {
  const std::string ini =
      "[fault.0]\nkind = payload_corruption\nchannel = v2c\n"
      "probability = 1.0\nstart_s = 100\nend_s = 200\n";
  FaultInjector a = make_injector(ini);
  FaultInjector b = make_injector(ini);
  // Outside the window (or off-channel): no corruption, no RNG consumption.
  EXPECT_FALSE(a.roll_corruption(comm::ChannelKind::kV2C, 50.0));
  EXPECT_FALSE(a.roll_corruption(comm::ChannelKind::kV2X, 150.0));
  // Inside the window with p=1 every delivery corrupts, and since `a`
  // consumed nothing so far the two injectors stay in lockstep.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.roll_corruption(comm::ChannelKind::kV2C, 150.0),
              b.roll_corruption(comm::ChannelKind::kV2C, 150.0));
  }
}

TEST(FaultInjector, RecoveryProbesFireOncePerOutageWindow) {
  FaultInjector inj = make_injector(
      "[fault.0]\nkind = node_outage\ntarget = cloud\n"
      "start_s = 100\nend_s = 200\n");
  // Deliveries during the window do not count as recovery.
  EXPECT_TRUE(inj.note_delivery(comm::ChannelKind::kV2C, 150.0).empty());
  // First delivery after the window closes the V2C probe...
  const auto first = inj.note_delivery(comm::ChannelKind::kV2C, 230.0);
  ASSERT_EQ(first.size(), 1U);
  EXPECT_DOUBLE_EQ(first[0], 30.0);
  // ...exactly once.
  EXPECT_TRUE(inj.note_delivery(comm::ChannelKind::kV2C, 240.0).empty());
  // The cloud outage also armed a wired probe, independent of V2C's.
  const auto wired = inj.note_delivery(comm::ChannelKind::kWired, 250.0);
  ASSERT_EQ(wired.size(), 1U);
  EXPECT_DOUBLE_EQ(wired[0], 50.0);
}

TEST(FaultInjector, StateRoundTripsThroughBinaryIo) {
  const std::string ini = R"([fault.0]
kind = node_outage
target = cloud
start_s = 0
end_s = 100
[fault.1]
kind = payload_corruption
channel = v2c
probability = 0.5
)";
  FaultInjector original = make_injector(ini);
  (void)original.note_delivery(comm::ChannelKind::kV2C, 150.0);  // pop probe
  for (int i = 0; i < 3; ++i) {
    (void)original.roll_corruption(comm::ChannelKind::kV2C, 10.0);  // advance
  }

  util::BinWriter out;
  original.save_state(out);
  FaultInjector restored = make_injector(ini);
  util::BinReader in{out.buffer()};
  restored.load_state(in);

  // Probe flags restored: the already-recovered V2C probe stays popped.
  EXPECT_TRUE(restored.note_delivery(comm::ChannelKind::kV2C, 160.0).empty());
  // RNG stream resumes exactly where the original left off.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(original.roll_corruption(comm::ChannelKind::kV2C, 10.0),
              restored.roll_corruption(comm::ChannelKind::kV2C, 10.0));
  }

  // A different plan (different probe count) refuses the snapshot.
  FaultInjector other = make_injector(
      "[fault.0]\nkind = payload_corruption\nprobability = 0.5\n");
  util::BinReader in2{out.buffer()};
  EXPECT_THROW(other.load_state(in2), std::runtime_error);
}

}  // namespace
}  // namespace roadrunner::fault
