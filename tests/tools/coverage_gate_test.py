#!/usr/bin/env python3
"""Unit tests for tools/coverage_gate.py, run as the `coverage_gate_test`
ctest target. Exercises the llvm-cov summary parsing, the suffix matching,
the floor gate, the missing-file hard failure, and the --update ratchet —
all without needing clang or llvm-cov locally."""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent.parent
TOOL = ROOT / "tools" / "coverage_gate.py"

failures = []


def check(label, condition, detail=""):
    if condition:
        print(f"ok   {label}")
    else:
        failures.append(label)
        print(f"FAIL {label}  {detail}")


def run(*args):
    return subprocess.run([sys.executable, str(TOOL), *map(str, args)],
                          capture_output=True, text=True)


def summary_json(path, files):
    path.write_text(json.dumps({
        "type": "llvm.coverage.json.export",
        "version": "2.0.1",
        "data": [{
            "files": [
                {"filename": name,
                 "summary": {"lines": {"count": 100,
                                       "covered": int(pct),
                                       "percent": pct}}}
                for name, pct in files.items()
            ],
            "totals": {},
        }],
    }))


with tempfile.TemporaryDirectory() as td:
    tmp = Path(td)
    summary = tmp / "coverage.json"
    thresholds = tmp / "thresholds.json"

    summary_json(summary, {
        "/ci/build/../src/util/ini.cpp": 85.0,
        "/ci/build/../src/mobility/fcd.cpp": 72.5,
    })

    # --- floors met ------------------------------------------------------
    thresholds.write_text(json.dumps(
        {"src/util/ini.cpp": 70.0, "src/mobility/fcd.cpp": 70.0}))
    r = run("--summary", summary, "--thresholds", thresholds)
    check("floors met exits 0", r.returncode == 0,
          f"rc={r.returncode} out={r.stdout} err={r.stderr}")
    check("suffix matching sees absolute llvm-cov paths",
          "ini.cpp: 85.0%" in r.stdout, r.stdout)

    # --- a file below its floor fails ------------------------------------
    thresholds.write_text(json.dumps(
        {"src/util/ini.cpp": 70.0, "src/mobility/fcd.cpp": 80.0}))
    r = run("--summary", summary, "--thresholds", thresholds)
    check("file below floor exits 1", r.returncode == 1, f"rc={r.returncode}")
    check("below-floor file is named", "BELOW" in r.stdout and
          "fcd.cpp" in r.stdout, r.stdout)

    # --- a file missing from the report fails ----------------------------
    thresholds.write_text(json.dumps({"src/dist/protocol.cpp": 50.0}))
    r = run("--summary", summary, "--thresholds", thresholds)
    check("missing file exits 1", r.returncode == 1, f"rc={r.returncode}")
    check("missing file is reported as MISSING", "MISSING" in r.stdout,
          r.stdout)

    # --- malformed inputs are usage errors, not stack traces --------------
    bad = tmp / "bad.json"
    bad.write_text("not json")
    r = run("--summary", bad, "--thresholds", thresholds)
    check("bad summary exits 2", r.returncode == 2, f"rc={r.returncode}")
    check("bad summary emits no traceback", "Traceback" not in r.stderr,
          r.stderr)

    shape = tmp / "shape.json"
    shape.write_text(json.dumps({"unexpected": True}))
    r = run("--summary", shape, "--thresholds", thresholds)
    check("non-export summary exits 2", r.returncode == 2,
          f"rc={r.returncode}")

    # --- --update ratchets floors from the measured values ----------------
    thresholds.write_text(json.dumps(
        {"src/util/ini.cpp": 10.0, "src/dist/protocol.cpp": 50.0}))
    r = run("--summary", summary, "--thresholds", thresholds, "--update")
    check("--update exits 0", r.returncode == 0,
          f"rc={r.returncode} err={r.stderr}")
    updated = json.loads(thresholds.read_text())
    check("--update raises the measured floor (85 - margin)",
          updated["src/util/ini.cpp"] == 82.0, str(updated))
    check("--update keeps floors for files absent from the summary",
          updated["src/dist/protocol.cpp"] == 50.0, str(updated))

    # --- the checked-in thresholds file is well-formed --------------------
    shipped = json.loads((ROOT / "tools" / "coverage_thresholds.json")
                         .read_text())
    check("shipped thresholds cover the five fuzzed parsers",
          {"src/util/ini.cpp", "src/mobility/fcd.cpp",
           "src/mobility/trace_file.cpp", "src/checkpoint/snapshot.cpp",
           "src/dist/protocol.cpp"} <= set(shipped), str(shipped))
    check("shipped floors are sane percentages",
          all(isinstance(v, (int, float)) and 0 < v <= 100
              for v in shipped.values()), str(shipped))

if failures:
    print(f"\n{len(failures)} check(s) failed")
    sys.exit(1)
print("\nall coverage_gate checks passed")
