#!/usr/bin/env python3
"""Unit tests for tools/perf_compare.py error handling and the regression
gate, run as the `perf_compare_test` ctest target.

The contract under test (ISSUE satellite): a missing or unparseable
baseline must produce a clear actionable message and exit 0 — never a
stack trace — while a broken *current* file is a usage error (exit 2),
and real regressions still fail (exit 1).
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent.parent
TOOL = ROOT / "tools" / "perf_compare.py"

failures = []


def check(label, condition, detail=""):
    if condition:
        print(f"ok   {label}")
    else:
        failures.append(label)
        print(f"FAIL {label}  {detail}")


def run(baseline, current, *extra):
    return subprocess.run(
        [sys.executable, str(TOOL), "--baseline", str(baseline),
         "--current", str(current), *extra],
        capture_output=True, text=True)


def bench_json(path, label, value):
    path.write_text(json.dumps(
        {"bench": "micro_ml", "runs": [{"label": label, "ops_per_s": value}]}))


with tempfile.TemporaryDirectory() as td:
    tmp = Path(td)
    current = tmp / "BENCH_current.json"
    bench_json(current, "conv", 100.0)

    # --- missing baseline: warn + exit 0, no stack trace ------------------
    r = run(tmp / "no_such_baseline.json", current)
    check("missing baseline exits 0", r.returncode == 0, f"rc={r.returncode}")
    check("missing baseline prints an actionable skip message",
          "skipping comparison" in r.stdout and "artifact" in r.stdout,
          r.stdout + r.stderr)
    check("missing baseline emits no traceback",
          "Traceback" not in r.stderr, r.stderr)

    # --- unparseable baseline (invalid JSON): warn + exit 0 ---------------
    bad = tmp / "BENCH_bad.json"
    bad.write_text("{not json at all")
    r = run(bad, current)
    check("unparseable baseline exits 0", r.returncode == 0,
          f"rc={r.returncode} err={r.stderr}")
    check("unparseable baseline emits no traceback",
          "Traceback" not in r.stderr, r.stderr)
    check("unparseable baseline names the file",
          "BENCH_bad.json" in r.stdout, r.stdout)

    # --- valid JSON, wrong shape (a list): still no stack trace -----------
    shape = tmp / "BENCH_shape.json"
    shape.write_text("[1, 2, 3]")
    r = run(shape, current)
    check("non-object baseline exits 0", r.returncode == 0,
          f"rc={r.returncode} err={r.stderr}")
    check("non-object baseline emits no traceback",
          "Traceback" not in r.stderr, r.stderr)

    # --- broken current file is a usage error (exit 2) --------------------
    r = run(current, shape)
    check("non-object current exits 2", r.returncode == 2,
          f"rc={r.returncode}")
    check("broken current emits no traceback",
          "Traceback" not in r.stderr, r.stderr)

    r = run(current, tmp / "missing_current.json")
    check("missing current exits 2", r.returncode == 2, f"rc={r.returncode}")

    # --- the gate itself still works over real files ----------------------
    baseline = tmp / "BENCH_base.json"
    bench_json(baseline, "conv", 100.0)
    r = run(baseline, current)
    check("identical bench passes", r.returncode == 0,
          f"rc={r.returncode} out={r.stdout}")

    slow = tmp / "BENCH_slow.json"
    bench_json(slow, "conv", 50.0)
    r = run(baseline, slow)
    check("50% regression fails", r.returncode == 1,
          f"rc={r.returncode} out={r.stdout}")

    r = run(baseline, slow, "--tolerance", "0.6")
    check("regression within tolerance passes", r.returncode == 0,
          f"rc={r.returncode} out={r.stdout}")

    dropped = tmp / "BENCH_dropped.json"
    dropped.write_text(json.dumps({"bench": "micro_ml", "runs": []}))
    r = run(baseline, dropped)
    check("dropped baseline run fails", r.returncode == 1,
          f"rc={r.returncode} out={r.stdout}")

if failures:
    print(f"\n{len(failures)} check(s) failed")
    sys.exit(1)
print("\nall perf_compare checks passed")
