// Stride/padding variants of Conv2D: known-value forwards, shape law, and
// finite-difference gradient checks across a parameter grid.
#include <gtest/gtest.h>

#include "ml/layers.hpp"
#include "ml/loss.hpp"
#include "ml/net.hpp"
#include "test_util.hpp"

namespace roadrunner::ml {
namespace {

using roadrunner::testing::expect_gradients_match;
using roadrunner::testing::randomize;

TEST(Conv2DVariants, StrideTwoSamplesEveryOtherWindow) {
  Conv2D conv{1, 1, 2, /*stride=*/2};
  *conv.params()[0] = Tensor{{1, 1, 2, 2}, {1, 1, 1, 1}};  // window sum
  *conv.params()[1] = Tensor{{1}, {0}};
  Tensor x{{1, 1, 4, 4}, {0, 1, 2,  3,
                          4, 5, 6,  7,
                          8, 9, 10, 11,
                          12, 13, 14, 15}};
  Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 0 + 1 + 4 + 5);
  EXPECT_FLOAT_EQ(y[1], 2 + 3 + 6 + 7);
  EXPECT_FLOAT_EQ(y[2], 8 + 9 + 12 + 13);
  EXPECT_FLOAT_EQ(y[3], 10 + 11 + 14 + 15);
}

TEST(Conv2DVariants, SamePaddingPreservesSpatialDims) {
  // k=3, padding=1, stride=1: "same" convolution.
  Conv2D conv{2, 4, 3, 1, 1};
  util::Rng rng{1};
  conv.init_params(rng);
  Tensor x{{2, 2, 8, 8}};
  randomize(x, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 4, 8, 8}));
}

TEST(Conv2DVariants, PaddedCornerSeesZeros) {
  // Identity-ish kernel picking the centre of each 3x3 window with pad 1:
  // output equals input. A kernel picking the top-left of the window shifts
  // the image and pulls zeros in at the border.
  Conv2D centre{1, 1, 3, 1, 1};
  Tensor kc{{1, 1, 3, 3}};
  kc[4] = 1.0F;  // centre tap
  *centre.params()[0] = kc;
  *centre.params()[1] = Tensor{{1}, {0}};
  Tensor x{{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9}};
  EXPECT_EQ(centre.forward(x), x);

  Conv2D shift{1, 1, 3, 1, 1};
  Tensor ks{{1, 1, 3, 3}};
  ks[0] = 1.0F;  // top-left tap: output(i,j) = input(i-1, j-1)
  *shift.params()[0] = ks;
  *shift.params()[1] = Tensor{{1}, {0}};
  Tensor y = shift.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0F);  // border pulled a zero in
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1.0F);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 2, 2), 5.0F);
}

TEST(Conv2DVariants, OutputShapeLaw) {
  for (std::size_t k : {1U, 3U, 5U}) {
    for (std::size_t stride : {1U, 2U, 3U}) {
      for (std::size_t pad = 0; pad < k; ++pad) {
        Conv2D conv{1, 1, k, stride, pad};
        util::Rng rng{2};
        conv.init_params(rng);
        const std::size_t h = 11, w = 9;
        if (h + 2 * pad < k || w + 2 * pad < k) continue;
        Tensor x{{1, 1, h, w}};
        Tensor y = conv.forward(x);
        EXPECT_EQ(y.dim(2), (h + 2 * pad - k) / stride + 1);
        EXPECT_EQ(y.dim(3), (w + 2 * pad - k) / stride + 1);
      }
    }
  }
}

TEST(Conv2DVariants, ValidatesConstruction) {
  EXPECT_THROW((Conv2D{1, 1, 3, 0}), std::invalid_argument);
  EXPECT_THROW((Conv2D{1, 1, 3, 1, 3}), std::invalid_argument);  // pad >= k
  EXPECT_NO_THROW((Conv2D{1, 1, 3, 2, 2}));
}

struct ConvGridParam {
  std::size_t kernel, stride, pad;
};

class Conv2DGradientGrid
    : public ::testing::TestWithParam<ConvGridParam> {};

TEST_P(Conv2DGradientGrid, GradientsMatchFiniteDifferences) {
  const auto [kernel, stride, pad] = GetParam();
  util::Rng rng{kernel * 100 + stride * 10 + pad};
  Network net;
  net.append(std::make_unique<Conv2D>(2, 3, kernel, stride, pad));
  net.append(std::make_unique<Flatten>());
  net.init_params(rng);
  Tensor x{{2, 2, 7, 7}};
  randomize(x, rng);
  // Map flattened conv output to 3 classes via a linear head computed from
  // the actual output size.
  Tensor probe = net.forward(x);
  net.append(std::make_unique<Linear>(probe.dim(1), 3));
  net.init_params(rng);
  expect_gradients_match(net, x, {0, 2}, /*tolerance=*/3e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Conv2DGradientGrid,
    ::testing::Values(ConvGridParam{3, 1, 0}, ConvGridParam{3, 1, 1},
                      ConvGridParam{3, 2, 0}, ConvGridParam{3, 2, 1},
                      ConvGridParam{5, 2, 2}, ConvGridParam{2, 2, 0},
                      ConvGridParam{1, 1, 0}));

TEST(Conv2DVariants, FlopsAccountForStride) {
  Conv2D dense{1, 4, 3, 1, 1};
  Conv2D strided{1, 4, 3, 2, 1};
  util::Rng rng{3};
  dense.init_params(rng);
  strided.init_params(rng);
  Tensor x{{1, 1, 16, 16}};
  dense.forward(x);
  strided.forward(x);
  // Stride 2 quarters the output positions.
  EXPECT_GT(dense.flops_per_sample(), 3 * strided.flops_per_sample());
}

}  // namespace
}  // namespace roadrunner::ml
