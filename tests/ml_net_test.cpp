#include "ml/net.hpp"

#include <gtest/gtest.h>

#include "ml/models.hpp"
#include "test_util.hpp"

namespace roadrunner::ml {
namespace {

TEST(Network, AppendAndLayerCount) {
  Network net;
  EXPECT_EQ(net.layer_count(), 0U);
  net.append(std::make_unique<Linear>(2, 3));
  net.append(std::make_unique<ReLU>());
  EXPECT_EQ(net.layer_count(), 2U);
  EXPECT_THROW(net.append(nullptr), std::invalid_argument);
}

TEST(Network, WeightsRoundTrip) {
  util::Rng rng{1};
  Network net = make_mlp(8, 16, 4);
  net.init_params(rng);
  const Weights w = net.weights();
  ASSERT_EQ(w.size(), 6U);  // 3 Linear layers x (W, b)

  Network other = make_mlp(8, 16, 4);
  other.set_weights(w);
  EXPECT_EQ(other.weights(), w);
}

TEST(Network, SetWeightsValidates) {
  Network net = make_mlp(8, 16, 4);
  Weights wrong_count(3);
  EXPECT_THROW(net.set_weights(wrong_count), std::invalid_argument);
  Weights wrong_shape = net.weights();
  wrong_shape[0] = Tensor{{2, 2}};
  EXPECT_THROW(net.set_weights(wrong_shape), std::invalid_argument);
}

TEST(Network, CopyIsDeep) {
  util::Rng rng{2};
  Network net = make_logreg(4, 2);
  net.init_params(rng);
  Network copy = net;
  (*copy.params()[0])[0] += 1.0F;
  EXPECT_NE(net.weights(), copy.weights());
}

TEST(Network, ParameterCountMatchesWeights) {
  Network net = make_mlp(10, 32, 5);
  EXPECT_EQ(net.parameter_count(), weights_parameter_count(net.weights()));
  EXPECT_EQ(net.parameter_count(),
            10U * 32 + 32 + 32U * 32 + 32 + 32U * 5 + 5);
}

TEST(Network, PaperCnnMatchesTutorialArchitecture) {
  Network net = make_paper_cnn();
  // conv1 456 + conv2 2416 + fc1 48120 + fc2 10164 + fc3 850 = 62006,
  // the PyTorch CIFAR-10 tutorial CNN the paper describes.
  EXPECT_EQ(net.parameter_count(), 62006U);
  Tensor x{{1, 3, 32, 32}};
  Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 10}));
}

TEST(Network, PaperCnnRejectsTinyInput) {
  EXPECT_THROW(make_paper_cnn(3, 12, 10), std::invalid_argument);
}

TEST(Network, FlopsPositiveAfterPriming) {
  util::Rng rng{3};
  Network net = make_paper_cnn();
  prime_and_init(net, {3, 32, 32}, rng);
  EXPECT_GT(net.flops_per_sample(), 500000U);  // conv-dominated
}

TEST(Network, ZeroGradClearsAccumulation) {
  util::Rng rng{4};
  Network net = make_logreg(3, 2);
  net.init_params(rng);
  Tensor x{{2, 3}};
  roadrunner::testing::randomize(x, rng);
  Tensor logits = net.forward(x);
  const auto loss = softmax_cross_entropy(logits, {0, 1});
  net.backward(loss.grad);
  double norm_before = 0;
  for (Tensor* g : net.grads()) norm_before += g->norm();
  EXPECT_GT(norm_before, 0.0);
  net.zero_grad();
  for (Tensor* g : net.grads()) EXPECT_EQ(g->norm(), 0.0);
}

TEST(Network, SummaryListsLayers) {
  Network net = make_paper_cnn();
  const std::string s = net.summary();
  EXPECT_NE(s.find("Conv2D"), std::string::npos);
  EXPECT_NE(s.find("MaxPool2D"), std::string::npos);
  EXPECT_NE(s.find("Linear"), std::string::npos);
}

TEST(Network, MakeModelDispatch) {
  EXPECT_NO_THROW(make_model("paper_cnn", {3, 32, 32}, 10));
  EXPECT_NO_THROW(make_model("mlp", {16}, 4));
  EXPECT_NO_THROW(make_model("logreg", {16}, 4));
  EXPECT_THROW(make_model("transformer", {16}, 4), std::invalid_argument);
  EXPECT_THROW(make_model("paper_cnn", {16}, 4), std::invalid_argument);
}

TEST(Weights, ByteSizeFormula) {
  Weights w;
  w.emplace_back(std::vector<std::size_t>{2, 3});
  w.emplace_back(std::vector<std::size_t>{5});
  // 4 (count) + [4 + 8 + 24] + [4 + 4 + 20]
  EXPECT_EQ(weights_byte_size(w), 4U + (4 + 8 + 24) + (4 + 4 + 20));
  EXPECT_EQ(weights_parameter_count(w), 11U);
}

}  // namespace
}  // namespace roadrunner::ml
