// Hardware-unit cost model and metrics registry tests.
#include <gtest/gtest.h>

#include <sstream>

#include "hu/hardware_unit.hpp"
#include "metrics/registry.hpp"

namespace roadrunner {
namespace {

// ----------------------------------------------------------- HardwareUnit --

TEST(HardwareUnit, DurationFormula) {
  hu::DeviceClass dev;
  dev.flops_per_s = 1e9;
  dev.dispatch_overhead_s = 0.5;
  hu::HardwareUnit unit{dev};
  EXPECT_DOUBLE_EQ(unit.operation_duration(2'000'000'000ULL), 2.5);
  EXPECT_DOUBLE_EQ(unit.operation_duration(0), 0.5);
}

TEST(HardwareUnit, DeviceClassOrdering) {
  // Cloud must outclass RSU must outclass OBU (paper Fig. 1 hierarchy).
  EXPECT_GT(hu::cloud_device().flops_per_s, hu::rsu_device().flops_per_s);
  EXPECT_GT(hu::rsu_device().flops_per_s, hu::obu_device().flops_per_s);
  constexpr std::uint64_t kFlops = 1'000'000'000;
  hu::HardwareUnit obu{hu::obu_device()};
  hu::HardwareUnit cloud{hu::cloud_device()};
  EXPECT_GT(obu.operation_duration(kFlops), cloud.operation_duration(kFlops));
}

TEST(HardwareUnit, SlotReservationAndExpiry) {
  hu::DeviceClass dev;
  dev.parallel_slots = 2;
  hu::HardwareUnit unit{dev};
  EXPECT_TRUE(unit.available(0.0));
  EXPECT_TRUE(unit.reserve(0.0, 10.0));
  EXPECT_TRUE(unit.reserve(0.0, 5.0));
  EXPECT_FALSE(unit.available(0.0));
  EXPECT_FALSE(unit.reserve(1.0, 1.0));  // both slots busy
  EXPECT_EQ(unit.busy_slots(1.0), 2U);
  // At t=6 the 5 s reservation has expired.
  EXPECT_EQ(unit.busy_slots(6.0), 1U);
  EXPECT_TRUE(unit.reserve(6.0, 1.0));
  EXPECT_DOUBLE_EQ(unit.total_busy_time(), 16.0);
}

TEST(HardwareUnit, Validation) {
  hu::DeviceClass dev;
  dev.flops_per_s = 0.0;
  EXPECT_THROW(hu::HardwareUnit{dev}, std::invalid_argument);
  dev = hu::obu_device();
  dev.parallel_slots = 0;
  EXPECT_THROW(hu::HardwareUnit{dev}, std::invalid_argument);
  hu::HardwareUnit ok{hu::obu_device()};
  EXPECT_THROW(ok.reserve(0.0, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- metrics --

TEST(Metrics, SeriesAppendAndQuery) {
  metrics::Registry reg;
  reg.add_point("accuracy", 0.0, 0.1);
  reg.add_point("accuracy", 30.0, 0.4);
  ASSERT_TRUE(reg.has_series("accuracy"));
  const auto& s = reg.series("accuracy");
  ASSERT_EQ(s.size(), 2U);
  EXPECT_DOUBLE_EQ(s[1].time_s, 30.0);
  EXPECT_DOUBLE_EQ(reg.last_value("accuracy"), 0.4);
  EXPECT_DOUBLE_EQ(reg.last_value("missing", -1.0), -1.0);
  EXPECT_THROW((void)reg.series("missing"), std::out_of_range);
}

TEST(Metrics, Counters) {
  metrics::Registry reg;
  reg.increment("messages");
  reg.increment("messages", 4.0);
  EXPECT_DOUBLE_EQ(reg.counter("messages"), 5.0);
  EXPECT_DOUBLE_EQ(reg.counter("unknown"), 0.0);
  reg.set_counter("messages", 2.0);
  EXPECT_DOUBLE_EQ(reg.counter("messages"), 2.0);
}

TEST(Metrics, NamesEnumerated) {
  metrics::Registry reg;
  reg.add_point("a", 0, 1);
  reg.add_point("b", 0, 1);
  reg.increment("c");
  EXPECT_EQ(reg.series_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(reg.counter_names(), (std::vector<std::string>{"c"}));
}

TEST(Metrics, CsvExportLongFormat) {
  metrics::Registry reg;
  reg.add_point("accuracy", 12.5, 0.75);
  reg.increment("bytes", 100.0);
  std::ostringstream out;
  reg.export_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("kind,name,time_s,value"), std::string::npos);
  EXPECT_NE(csv.find("series,accuracy,12.5,0.75"), std::string::npos);
  EXPECT_NE(csv.find("counter,bytes,12.5,100"), std::string::npos);
}

TEST(Metrics, ClearResetsEverything) {
  metrics::Registry reg;
  reg.add_point("a", 0, 1);
  reg.increment("b");
  reg.clear();
  EXPECT_FALSE(reg.has_series("a"));
  EXPECT_DOUBLE_EQ(reg.counter("b"), 0.0);
}

}  // namespace
}  // namespace roadrunner
