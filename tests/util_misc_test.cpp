// Tests for CSV, CLI parsing, logging, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <sstream>
#include <thread>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace roadrunner::util {
namespace {

// ------------------------------------------------------------------- CSV --

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter w{out};
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesSeparatorsQuotesAndNewlines) {
  std::ostringstream out;
  CsvWriter w{out};
  w.write_row({"a,b", "say \"hi\"", "line1\nline2"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line1\nline2\"\n");
}

TEST(Csv, ParseSimpleLine) {
  const auto fields = parse_csv_line("a,b,,d");
  ASSERT_EQ(fields.size(), 4U);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "d");
}

TEST(Csv, ParseQuotedLine) {
  const auto fields = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 2U);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
}

TEST(Csv, ParseUnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"oops"), std::runtime_error);
}

TEST(Csv, WriteParseRoundTrip) {
  const std::vector<std::string> original{"plain", "with,comma", "q\"uote",
                                          "", "multi\nline"};
  std::ostringstream out;
  CsvWriter w{out};
  w.write_row(original);
  // Strip the trailing newline; multi-line fields keep internal newlines.
  std::string line = out.str();
  line.pop_back();
  EXPECT_EQ(parse_csv_line(line), original);
}

TEST(Csv, ReadCsvSkipsEmptyLines) {
  std::istringstream in{"a,b\n\nc,d\n\r\n"};
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(Csv, DoubleFieldRoundTrips) {
  const double value = 0.12345678901234567;
  EXPECT_EQ(std::stod(CsvWriter::field(value)), value);
}

TEST(Csv, ReadCsvQuotedFieldSpansLines) {
  // CsvWriter quotes embedded newlines; read_csv must reassemble the
  // record instead of treating each physical line as a row.
  std::ostringstream out;
  CsvWriter w{out};
  w.write_row({"a", "multi\nline \"x\",y", "z"});
  w.write_row({"1", "2", "3"});
  std::istringstream in{out.str()};
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[0][1], "multi\nline \"x\",y");
  EXPECT_EQ(rows[1][2], "3");
}

TEST(Csv, ReadCsvUnterminatedQuoteAtEofThrows) {
  std::istringstream in{"a,\"unterminated\nstill open"};
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

// ------------------------------------------------------------------- CLI --

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "--gamma"};
  CliArgs args{5, argv};
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  EXPECT_TRUE(args.has("gamma"));
  EXPECT_TRUE(args.get_bool("gamma", false));
  EXPECT_FALSE(args.has("delta"));
  EXPECT_EQ(args.get_int("delta", 9), 9);
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "one", "--x=1", "two"};
  CliArgs args{4, argv};
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "one");
  EXPECT_EQ(args.positional()[1], "two");
}

TEST(Cli, DoubleAndStringAccessors) {
  const char* argv[] = {"prog", "--rate=0.25", "--name=fleet"};
  CliArgs args{3, argv};
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0), 0.25);
  EXPECT_EQ(args.get("name", ""), "fleet");
}

TEST(Cli, BoolParsing) {
  const char* argv[] = {"prog", "--on=true", "--off=false", "--bad=zzz"};
  CliArgs args{4, argv};
  EXPECT_TRUE(args.get_bool("on", false));
  EXPECT_FALSE(args.get_bool("off", true));
  EXPECT_THROW((void)args.get_bool("bad", false), std::invalid_argument);
}

// ------------------------------------------------------------------- Log --

TEST(Log, RespectsLevelAndSink) {
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kWarn);
  RR_LOG_INFO("test") << "hidden";
  RR_LOG_WARN("test") << "visible " << 42;
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible 42"), std::string::npos);
  EXPECT_NE(sink.str().find("[test]"), std::string::npos);
}

TEST(Log, SetSinkIsSafeMidRun) {
  // Emission and reconfiguration hold the same mutex, so swapping the sink
  // while another thread logs must neither tear output nor touch a stale
  // stream. TSan/ASan builds verify the absence of a race.
  Log::set_level(LogLevel::kInfo);
  std::ostringstream a;
  std::ostringstream b;
  Log::set_sink(&a);
  std::atomic<bool> stop{false};
  std::thread writer{[&] {
    while (!stop.load()) {
      RR_LOG_INFO("race") << "tick";
    }
  }};
  for (int i = 0; i < 500; ++i) {
    Log::set_sink(i % 2 == 0 ? &b : &a);
  }
  stop.store(true);
  writer.join();
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
  // Every emitted line landed whole in one of the two sinks.
  for (const std::string& text : {a.str(), b.str()}) {
    std::istringstream lines{text};
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      EXPECT_NE(line.find("tick"), std::string::npos) << line;
    }
  }
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool{2};
  int count = 0;
  pool.parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool{3};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error{"boom"};
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, PendingAndBusyReflectQueueState) {
  ThreadPool pool{2};
  EXPECT_EQ(pool.size(), 2U);
  EXPECT_EQ(pool.busy(), 0U);
  EXPECT_EQ(pool.pending(), 0U);

  auto wait_until = [](auto pred) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds{30};
    while (!pred() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    return pred();
  };

  // Saturate both workers with tasks that block until released.
  std::atomic<bool> release{false};
  std::thread blocker{[&] {
    pool.parallel_for(2, [&](std::size_t) {
      while (!release.load()) std::this_thread::yield();
    });
  }};
  ASSERT_TRUE(wait_until([&] { return pool.busy() == 2; }));
  EXPECT_EQ(pool.pending(), 0U);

  // A second caller's shard tasks now have to queue behind them.
  std::atomic<int> quick_done{0};
  std::thread waiter{[&] {
    pool.parallel_for(2, [&](std::size_t) { quick_done.fetch_add(1); });
  }};
  ASSERT_TRUE(wait_until([&] { return pool.pending() == 2; }));

  release.store(true);
  blocker.join();
  waiter.join();
  EXPECT_EQ(quick_done.load(), 2);
  ASSERT_TRUE(
      wait_until([&] { return pool.busy() == 0 && pool.pending() == 0; }));
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool{2};
  std::atomic<long> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 10L * (99 * 100 / 2));
}

}  // namespace
}  // namespace roadrunner::util
