// Tests for CSV, CLI parsing, logging, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace roadrunner::util {
namespace {

// ------------------------------------------------------------------- CSV --

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter w{out};
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesSeparatorsQuotesAndNewlines) {
  std::ostringstream out;
  CsvWriter w{out};
  w.write_row({"a,b", "say \"hi\"", "line1\nline2"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line1\nline2\"\n");
}

TEST(Csv, ParseSimpleLine) {
  const auto fields = parse_csv_line("a,b,,d");
  ASSERT_EQ(fields.size(), 4U);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "d");
}

TEST(Csv, ParseQuotedLine) {
  const auto fields = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 2U);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
}

TEST(Csv, ParseUnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"oops"), std::runtime_error);
}

TEST(Csv, WriteParseRoundTrip) {
  const std::vector<std::string> original{"plain", "with,comma", "q\"uote",
                                          "", "multi\nline"};
  std::ostringstream out;
  CsvWriter w{out};
  w.write_row(original);
  // Strip the trailing newline; multi-line fields keep internal newlines.
  std::string line = out.str();
  line.pop_back();
  EXPECT_EQ(parse_csv_line(line), original);
}

TEST(Csv, ReadCsvSkipsEmptyLines) {
  std::istringstream in{"a,b\n\nc,d\n\r\n"};
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(Csv, DoubleFieldRoundTrips) {
  const double value = 0.12345678901234567;
  EXPECT_EQ(std::stod(CsvWriter::field(value)), value);
}

// ------------------------------------------------------------------- CLI --

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "--gamma"};
  CliArgs args{5, argv};
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  EXPECT_TRUE(args.has("gamma"));
  EXPECT_TRUE(args.get_bool("gamma", false));
  EXPECT_FALSE(args.has("delta"));
  EXPECT_EQ(args.get_int("delta", 9), 9);
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "one", "--x=1", "two"};
  CliArgs args{4, argv};
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "one");
  EXPECT_EQ(args.positional()[1], "two");
}

TEST(Cli, DoubleAndStringAccessors) {
  const char* argv[] = {"prog", "--rate=0.25", "--name=fleet"};
  CliArgs args{3, argv};
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0), 0.25);
  EXPECT_EQ(args.get("name", ""), "fleet");
}

TEST(Cli, BoolParsing) {
  const char* argv[] = {"prog", "--on=true", "--off=false", "--bad=zzz"};
  CliArgs args{4, argv};
  EXPECT_TRUE(args.get_bool("on", false));
  EXPECT_FALSE(args.get_bool("off", true));
  EXPECT_THROW((void)args.get_bool("bad", false), std::invalid_argument);
}

// ------------------------------------------------------------------- Log --

TEST(Log, RespectsLevelAndSink) {
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kWarn);
  RR_LOG_INFO("test") << "hidden";
  RR_LOG_WARN("test") << "visible " << 42;
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible 42"), std::string::npos);
  EXPECT_NE(sink.str().find("[test]"), std::string::npos);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool{2};
  int count = 0;
  pool.parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool{3};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error{"boom"};
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool{2};
  std::atomic<long> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 10L * (99 * 100 / 2));
}

}  // namespace
}  // namespace roadrunner::util
