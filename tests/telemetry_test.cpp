// Tests for the wall-clock telemetry subsystem: span recording and
// nesting, counter exactness under thread contention, the disabled fast
// path, and the Chrome trace_event JSON exporter (validated against the
// schema with a small self-contained JSON parser — no external deps).
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace roadrunner {
namespace {

// ------------------------------------------------------- mini JSON parser --
// Just enough JSON to validate the exporter's output: objects, arrays,
// strings with escapes, numbers, literals. Throws std::runtime_error on
// malformed input, which is exactly what the tests want to detect.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return object.count(key) > 0;
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    return object.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error{"trailing data"};
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error{"unexpected end"};
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error{std::string{"expected '"} + c + "'"};
    }
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", bool_value(true));
      case 'f': return literal("false", bool_value(false));
      case 'n': return literal("null", JsonValue{});
      default: return number();
    }
  }

  static JsonValue bool_value(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue literal(std::string_view word, JsonValue result) {
    if (text_.substr(pos_, word.size()) != word) {
      throw std::runtime_error{"bad literal"};
    }
    pos_ += word.size();
    return result;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.str] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw std::runtime_error{"bad \\u escape"};
            }
            const unsigned code = static_cast<unsigned>(
                std::stoul(std::string{text_.substr(pos_, 4)}, nullptr, 16));
            pos_ += 4;
            if (code > 0x7F) throw std::runtime_error{"non-ASCII \\u"};
            v.str += static_cast<char>(code);
            break;
          }
          default: throw std::runtime_error{"bad escape"};
        }
      } else {
        if (static_cast<unsigned char>(c) < 0x20) {
          throw std::runtime_error{"raw control char in string"};
        }
        v.str += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error{"bad number"};
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string{text_.substr(start, pos_ - start)});
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------- fixture --

/// Every test starts from a disabled, empty sink. The sink is
/// process-global, so this also undoes whatever a previous test enabled.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(false);
    telemetry::Telemetry::instance().clear();
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::Telemetry::instance().clear();
  }
};

/// Burns wall time so nested spans get strictly ordered timestamps even on
/// coarse clocks (sleep would work too but is slower and less reliable on
/// loaded CI machines for sub-millisecond targets).
void spin_for(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

// ------------------------------------------------------------------ spans --

TEST_F(TelemetryTest, DisabledRecordsNothing) {
  ASSERT_FALSE(telemetry::enabled());
  {
    telemetry::Span span{"test", "ignored"};
    EXPECT_FALSE(span.active());
    span.set_args("dropped");
    RR_TSPAN("test", "also_ignored");
    static telemetry::Counter counter{"test.disabled_counter"};
    counter.add(5.0);
    telemetry::Gauge gauge{"test.disabled_gauge"};
    gauge.set(1.0);
  }
  auto& sink = telemetry::Telemetry::instance();
  EXPECT_TRUE(sink.snapshot().empty());
  EXPECT_EQ(sink.counters().count("test.disabled_counter"), 0U);
  EXPECT_EQ(sink.gauges().count("test.disabled_gauge"), 0U);
}

TEST_F(TelemetryTest, SpanNestingReconstructsValidTree) {
  telemetry::set_enabled(true);
  {
    telemetry::Span outer{"test", "outer"};
    spin_for(std::chrono::microseconds{300});
    {
      telemetry::Span middle{"test", "middle"};
      spin_for(std::chrono::microseconds{300});
      { RR_TSPAN("test", "leaf_a"); spin_for(std::chrono::microseconds{200}); }
      { RR_TSPAN("test", "leaf_b"); spin_for(std::chrono::microseconds{200}); }
    }
    spin_for(std::chrono::microseconds{200});
  }
  const auto events = telemetry::Telemetry::instance().snapshot();
  ASSERT_EQ(events.size(), 4U);

  std::map<std::string, telemetry::SpanEvent> by_name;
  for (const auto& e : events) by_name[e.name] = e;
  ASSERT_EQ(by_name.size(), 4U);

  auto end_of = [](const telemetry::SpanEvent& e) {
    return e.start_ns + e.dur_ns;
  };
  const auto& outer = by_name.at("outer");
  const auto& middle = by_name.at("middle");
  const auto& leaf_a = by_name.at("leaf_a");
  const auto& leaf_b = by_name.at("leaf_b");

  // All on one thread, so they share a tid.
  for (const auto& e : events) EXPECT_EQ(e.tid, outer.tid);

  // Containment: outer ⊇ middle ⊇ {leaf_a, leaf_b}; leaves disjoint.
  EXPECT_LE(outer.start_ns, middle.start_ns);
  EXPECT_GE(end_of(outer), end_of(middle));
  EXPECT_LE(middle.start_ns, leaf_a.start_ns);
  EXPECT_GE(end_of(middle), end_of(leaf_a));
  EXPECT_LE(middle.start_ns, leaf_b.start_ns);
  EXPECT_GE(end_of(middle), end_of(leaf_b));
  EXPECT_LE(end_of(leaf_a), leaf_b.start_ns);

  // Pairwise: every pair is either nested or disjoint, never partially
  // overlapping — the property a trace viewer needs to draw a flame graph.
  for (const auto& a : events) {
    for (const auto& b : events) {
      const bool disjoint =
          end_of(a) <= b.start_ns || end_of(b) <= a.start_ns;
      const bool a_in_b =
          b.start_ns <= a.start_ns && end_of(a) <= end_of(b);
      const bool b_in_a =
          a.start_ns <= b.start_ns && end_of(b) <= end_of(a);
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << a.name << " and " << b.name << " partially overlap";
    }
  }
}

TEST_F(TelemetryTest, SpansFromDifferentThreadsGetDistinctTids) {
  telemetry::set_enabled(true);
  auto worker = [] {
    RR_TSPAN("test", "thread_span");
    spin_for(std::chrono::microseconds{50});
  };
  std::thread t1{worker};
  std::thread t2{worker};
  t1.join();
  t2.join();
  const auto events = telemetry::Telemetry::instance().snapshot();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_NE(events[0].tid, 0U);  // tid 0 is the counter track
  EXPECT_NE(events[1].tid, 0U);
}

TEST_F(TelemetryTest, BufferFlushLosesNoSpans) {
  // More spans than the per-thread flush threshold (4096): the snapshot
  // must see every one, whether it sits in the buffer or the store.
  telemetry::set_enabled(true);
  constexpr std::size_t kSpans = 5000;
  for (std::size_t i = 0; i < kSpans; ++i) {
    RR_TSPAN("test", "tiny");
  }
  EXPECT_EQ(telemetry::Telemetry::instance().snapshot().size(), kSpans);
}

TEST_F(TelemetryTest, StartGatedSpanRecordsAcrossDisable) {
  telemetry::set_enabled(true);
  {
    telemetry::Span span{"test", "gated"};
    telemetry::set_enabled(false);
  }  // started while enabled -> records even though disabled now
  {
    telemetry::Span span{"test", "never"};
  }  // started while disabled -> never records
  const auto events = telemetry::Telemetry::instance().snapshot();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].name, "gated");
}

// --------------------------------------------------------------- counters --

TEST_F(TelemetryTest, CountersExactUnderThreadPoolContention) {
  telemetry::set_enabled(true);
  constexpr std::size_t kIterations = 10000;
  static telemetry::Counter counter{"test.contended"};
  util::ThreadPool::global().parallel_for(kIterations, [&](std::size_t i) {
    counter.add();
    if (i % 2 == 0) {
      telemetry::Telemetry::instance().counter_add("test.by_name", 2.0);
    }
  });
  const auto counters = telemetry::Telemetry::instance().counters();
  EXPECT_EQ(counters.at("test.contended"),
            static_cast<double>(kIterations));
  EXPECT_EQ(counters.at("test.by_name"),
            static_cast<double>(kIterations / 2) * 2.0);
}

TEST_F(TelemetryTest, ClearPreservesCachedCounterHandles) {
  telemetry::set_enabled(true);
  static telemetry::Counter counter{"test.cleared"};
  counter.add(3.0);
  telemetry::Telemetry::instance().clear();
  counter.add(4.0);  // the cached cell must still be alive and zeroed
  EXPECT_EQ(telemetry::Telemetry::instance().counters().at("test.cleared"),
            4.0);
}

TEST_F(TelemetryTest, GaugeLastWriterWins) {
  telemetry::set_enabled(true);
  telemetry::Gauge gauge{"test.gauge"};
  gauge.set(1.0);
  gauge.set(7.5);
  EXPECT_EQ(telemetry::Telemetry::instance().gauges().at("test.gauge"), 7.5);
}

// -------------------------------------------------------- chrome exporter --

TEST_F(TelemetryTest, ChromeTraceMatchesSchema) {
  telemetry::set_enabled(true);
  {
    telemetry::Span span{"sim", "sim.run"};
    span.set_args("hostile \"quotes\"\nnewline\ttab\x01"
                  "ctrl");
    spin_for(std::chrono::microseconds{100});
    RR_TSPAN("ml", "ml.train_sgd");
  }
  telemetry::Telemetry::instance().counter_add("sim.events_executed", 42.0);
  telemetry::Telemetry::instance().gauge_set("campaign.pool_busy", 3.0);

  std::ostringstream out;
  telemetry::Telemetry::instance().export_chrome_trace(out);

  const JsonValue root = JsonParser{out.str()}.parse();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  // 2 spans + 1 counter + 1 gauge. clear() zeroes but never erases counter
  // registrations (cached Counter handles hold raw cell pointers), so when
  // the whole binary runs in one process, counters registered by earlier
  // tests surface here as extra zero-valued "C" events — tolerate those.
  ASSERT_GE(events.array.size(), 4U);

  std::size_t complete = 0;
  std::size_t live_counter_events = 0;
  bool saw_args_round_trip = false;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    // Chrome trace_event schema: every event carries these.
    for (const char* key : {"name", "cat", "ph", "ts", "pid", "tid"}) {
      EXPECT_TRUE(e.has(key)) << "missing key " << key;
    }
    EXPECT_EQ(e.at("ts").kind, JsonValue::Kind::kNumber);
    EXPECT_GE(e.at("ts").number, 0.0);
    const std::string& ph = e.at("ph").str;
    if (ph == "X") {
      ++complete;
      ASSERT_TRUE(e.has("dur"));
      EXPECT_GE(e.at("dur").number, 0.0);
      if (e.at("name").str == "sim.run") {
        ASSERT_TRUE(e.has("args"));
        EXPECT_EQ(e.at("args").at("detail").str,
                  "hostile \"quotes\"\nnewline\ttab\x01"
                  "ctrl");
        saw_args_round_trip = true;
      }
    } else {
      EXPECT_EQ(ph, "C");
      ASSERT_TRUE(e.has("args"));
      ASSERT_TRUE(e.at("args").has("value"));
      const double value = e.at("args").at("value").number;
      const std::string& name = e.at("name").str;
      if (name == "sim.events_executed") {
        EXPECT_EQ(value, 42.0);
        ++live_counter_events;
      } else if (name == "campaign.pool_busy") {
        EXPECT_EQ(value, 3.0);
        ++live_counter_events;
      } else {
        // Residue from a prior test in this process: must be zeroed.
        EXPECT_EQ(value, 0.0) << "unexpected live counter " << name;
      }
    }
  }
  EXPECT_EQ(complete, 2U);
  EXPECT_EQ(live_counter_events, 2U);
  EXPECT_TRUE(saw_args_round_trip);
}

TEST_F(TelemetryTest, SummaryListsCategoriesAndCounters) {
  telemetry::set_enabled(true);
  {
    RR_TSPAN("sim", "sim.mobility_tick");
    spin_for(std::chrono::microseconds{100});
  }
  { RR_TSPAN("ml", "ml.evaluate"); }
  telemetry::Telemetry::instance().counter_add("sim.events_executed", 7.0);

  std::ostringstream out;
  telemetry::Telemetry::instance().write_summary(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("telemetry summary"), std::string::npos);
  EXPECT_NE(text.find("sim"), std::string::npos);
  EXPECT_NE(text.find("ml.evaluate"), std::string::npos);
  EXPECT_NE(text.find("sim.events_executed"), std::string::npos);
  EXPECT_NE(text.find("2 spans"), std::string::npos);
}

TEST_F(TelemetryTest, TraceSessionEnablesAndWritesFile) {
  const std::string path = ::testing::TempDir() + "/rr_trace_session.json";
  {
    telemetry::TraceSession session{path, /*profile=*/false};
    EXPECT_TRUE(telemetry::enabled());
    RR_TSPAN("test", "session_span");
  }  // destructor writes the trace
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const JsonValue root = JsonParser{content.str()}.parse();
  ASSERT_TRUE(root.has("traceEvents"));
  bool found = false;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("name").str == "session_span") found = true;
  }
  EXPECT_TRUE(found);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace roadrunner
