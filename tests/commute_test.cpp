// Tests for the commuter mobility model: diurnal structure, determinism,
// geometric sanity, and the hierarchical-RSU strategy that exploits it.
#include <gtest/gtest.h>

#include "mobility/commute_model.hpp"
#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "strategy/rsu_assisted.hpp"

namespace roadrunner {
namespace {

using mobility::CommuteModelConfig;
using mobility::FleetModel;
using mobility::NodeId;

CommuteModelConfig fast_day() {
  CommuteModelConfig cfg;
  cfg.day_length_s = 8000.0;  // compressed day for fast tests
  cfg.days = 2;
  cfg.seed = 5;
  return cfg;
}

TEST(CommuteModel, DeterministicGivenSeed) {
  const auto a = mobility::make_commute_fleet(6, fast_day());
  const auto b = mobility::make_commute_fleet(6, fast_day());
  for (NodeId v = 0; v < 6; ++v) {
    for (double t : {0.0, 3000.0, 9000.0, 15000.0}) {
      EXPECT_EQ(a.position_of(v, t), b.position_of(v, t));
      EXPECT_EQ(a.is_on(v, t), b.is_on(v, t));
    }
  }
}

TEST(CommuteModel, DiurnalAvailability) {
  const auto cfg = fast_day();
  const auto fleet = mobility::make_commute_fleet(60, cfg);
  // Morning rush: availability near the peak beats the dead of night.
  const double morning = cfg.day_length_s * cfg.morning_peak;
  const double night = cfg.day_length_s * 0.05;
  const double rush = mobility::fleet_on_fraction(fleet, morning);
  const double quiet = mobility::fleet_on_fraction(fleet, night);
  EXPECT_GT(rush, quiet + 0.2);
  EXPECT_LT(quiet, 0.1);
}

TEST(CommuteModel, VehiclesReturnHomeEachEvening) {
  auto cfg = fast_day();
  cfg.days = 1;
  cfg.errand_probability = 0.0;
  util::Rng rng{7};
  const auto track = mobility::make_commuter(cfg, rng);
  // Position at day start equals position after the evening commute.
  const auto start = track.trace.position_at(0.0);
  const auto end = track.trace.position_at(cfg.day_length_s);
  EXPECT_EQ(start, end);
  // The vehicle actually went somewhere in between.
  EXPECT_GT(track.trace.path_length(), 0.0);
}

TEST(CommuteModel, OnExactlyWhileDriving) {
  auto cfg = fast_day();
  cfg.days = 1;
  util::Rng rng{8};
  const auto track = mobility::make_commuter(cfg, rng);
  const auto& samples = track.trace.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double d =
        mobility::distance(samples[i].position, samples[i - 1].position);
    if (d < 1e-9) continue;
    const double mid = 0.5 * (samples[i].time_s + samples[i - 1].time_s);
    if (mid >= cfg.day_length_s) continue;
    EXPECT_TRUE(track.ignition.is_on(mid)) << "moving while off at " << mid;
  }
}

TEST(CommuteModel, ValidatesConfig) {
  CommuteModelConfig cfg;
  cfg.days = 0;
  util::Rng rng{1};
  EXPECT_THROW(mobility::make_commuter(cfg, rng), std::invalid_argument);
  cfg = CommuteModelConfig{};
  cfg.block_size_m = 0.0;
  EXPECT_THROW(mobility::make_commuter(cfg, rng), std::invalid_argument);
}

TEST(CommuteModel, PluggableAsExternalFleet) {
  auto cfg = fast_day();
  auto fleet = std::make_shared<FleetModel>(
      mobility::make_commute_fleet(12, cfg));
  scenario::ScenarioConfig scfg;
  scfg.seed = 3;
  scfg.vehicles = 12;
  scfg.dataset = "blobs";
  scfg.train_pool_size = 1500;
  scfg.test_size = 300;
  scfg.partition = "iid";
  scfg.samples_per_vehicle = 30;
  scfg.model = "logreg";
  scfg.external_fleet = fleet;
  scfg.horizon_s = cfg.day_length_s * 2;
  scenario::Scenario scenario{scfg};
  strategy::RoundConfig round;
  round.rounds = 4;
  round.participants = 3;
  round.round_duration_s = 60.0;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  EXPECT_GT(result.report.events_executed, 0U);
}

// --------------------------------------------- hierarchical RSU variant --

TEST(RsuHierarchical, AggregationShrinksBackhaulTransfers) {
  // Stationary, always-on mini-world with RSUs in range of every vehicle:
  // compare per-model relays against one-aggregate-per-RSU relays.
  auto build = [&](bool aggregate) {
    scenario::ScenarioConfig cfg;
    cfg.seed = 9;
    cfg.vehicles = 8;
    cfg.rsus = 1;
    cfg.dataset = "blobs";
    cfg.train_pool_size = 1200;
    cfg.test_size = 200;
    cfg.partition = "iid";
    cfg.samples_per_vehicle = 30;
    cfg.model = "logreg";
    cfg.city.city_size_m = 300.0;  // tiny city: everyone near the one RSU
    cfg.city.block_size_m = 100.0;
    cfg.city.duration_s = 3000.0;
    cfg.city.initial_on_probability = 1.0;
    cfg.city.dwell_on_probability = 1.0;
    scenario::Scenario scenario{cfg};
    strategy::RsuAssistedConfig rsu_cfg;
    rsu_cfg.round.rounds = 4;
    rsu_cfg.round.participants = 6;
    rsu_cfg.round.round_duration_s = 40.0;
    rsu_cfg.aggregate_at_rsu = aggregate;
    return scenario.run(
        std::make_shared<strategy::RsuAssistedStrategy>(rsu_cfg));
  };

  const auto per_model = build(false);
  const auto aggregated = build(true);
  const auto wired_per_model =
      per_model.channel(comm::ChannelKind::kWired).transfers_delivered;
  const auto wired_aggregated =
      aggregated.channel(comm::ChannelKind::kWired).transfers_delivered;
  ASSERT_GT(wired_per_model, 0U);
  ASSERT_GT(wired_aggregated, 0U);
  // One aggregate per RSU per round instead of one per vehicle.
  EXPECT_LT(wired_aggregated, wired_per_model);
  // Both learn: global accuracy above chance for 4 classes.
  EXPECT_GT(per_model.final_accuracy, 0.3);
  EXPECT_GT(aggregated.final_accuracy, 0.3);
}

}  // namespace
}  // namespace roadrunner
