// Tests for the campaign subsystem: spec expansion, job hashing, the
// resumable result store, parallel-execution determinism (the engine's
// core contract: per-job metrics are bit-identical under any worker
// count), resume-after-kill, and statistical aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/csv.hpp"

#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "campaign/spec.hpp"
#include "campaign/store.hpp"

namespace roadrunner {
namespace {

namespace fs = std::filesystem;

/// A campaign small enough that the full determinism matrix stays fast:
/// 2 sweep points x 2 seeds on a 10-vehicle logreg problem.
campaign::CampaignSpec tiny_spec() {
  campaign::CampaignSpec spec;
  spec.name = "tiny";
  spec.base = util::IniFile::parse(R"(
[scenario]
vehicles = 10
horizon_s = 1200
[city]
duration_s = 1200
[data]
dataset = blobs
train_pool = 600
test_size = 120
partition = iid
samples_per_vehicle = 20
[train]
model = logreg
epochs = 1
[strategy]
name = federated
rounds = 2
participants = 3
round_duration_s = 30
)");
  spec.grid = {{"strategy", "participants", {"2", "3"}}};
  spec.seeds_per_point = 2;
  spec.base_seed = 77;
  return spec;
}

std::string temp_dir(const std::string& tag) {
  const auto dir =
      fs::path{::testing::TempDir()} / ("rr_campaign_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

// ------------------------------------------------------------ expansion --

TEST(CampaignSpec, GridExpansionIsCartesianFirstAxisSlowest) {
  campaign::CampaignSpec spec;
  spec.base = util::IniFile::parse("[strategy]\nname = federated\n");
  spec.grid = {{"scenario", "vehicles", {"10", "20"}},
               {"strategy", "rounds", {"1", "2", "3"}}};
  const auto jobs = campaign::expand(spec);
  ASSERT_EQ(jobs.size(), 6U);
  EXPECT_EQ(campaign::point_count(spec), 6U);
  EXPECT_EQ(jobs[0].experiment.get("scenario", "vehicles", ""), "10");
  EXPECT_EQ(jobs[0].experiment.get("strategy", "rounds", ""), "1");
  EXPECT_EQ(jobs[1].experiment.get("strategy", "rounds", ""), "2");
  EXPECT_EQ(jobs[3].experiment.get("scenario", "vehicles", ""), "20");
  EXPECT_EQ(jobs[3].experiment.get("strategy", "rounds", ""), "1");
  EXPECT_EQ(jobs[5].point_index, 5U);
  EXPECT_EQ(jobs[0].point_label, "vehicles=10, rounds=1");
}

TEST(CampaignSpec, ZipAxesAdvanceTogetherAndCrossWithGrid) {
  campaign::CampaignSpec spec;
  spec.base = util::IniFile::parse("[scenario]\nvehicles = 10\n");
  spec.zipped = {{"strategy", "name", {"federated", "opportunistic"}},
                 {"strategy", "round_duration_s", {"30", "200"}}};
  spec.grid = {{"scenario", "vehicles", {"10", "20", "30"}}};
  const auto jobs = campaign::expand(spec);
  ASSERT_EQ(jobs.size(), 6U);
  // Zip rows are outermost: first 3 jobs are federated across fleet sizes.
  EXPECT_EQ(jobs[0].experiment.get("strategy", "name", ""), "federated");
  EXPECT_EQ(jobs[0].experiment.get("strategy", "round_duration_s", ""), "30");
  EXPECT_EQ(jobs[2].experiment.get("scenario", "vehicles", ""), "30");
  EXPECT_EQ(jobs[3].experiment.get("strategy", "name", ""), "opportunistic");
  EXPECT_EQ(jobs[3].experiment.get("strategy", "round_duration_s", ""),
            "200");
}

TEST(CampaignSpec, MismatchedZipLengthsThrow) {
  campaign::CampaignSpec spec;
  spec.zipped = {{"a", "x", {"1", "2"}}, {"a", "y", {"1"}}};
  EXPECT_THROW(campaign::expand(spec), std::invalid_argument);
}

TEST(CampaignSpec, EmptyAxisValuesAndZeroSeedsThrow) {
  campaign::CampaignSpec spec;
  spec.grid = {{"a", "x", {}}};
  EXPECT_THROW(campaign::expand(spec), std::invalid_argument);
  spec.grid = {{"a", "x", {"1"}}};
  spec.seeds_per_point = 0;
  EXPECT_THROW(campaign::expand(spec), std::invalid_argument);
}

TEST(CampaignSpec, SeedsDependOnlyOnJobIdentity) {
  const auto jobs_a = campaign::expand(tiny_spec());
  const auto jobs_b = campaign::expand(tiny_spec());
  ASSERT_EQ(jobs_a.size(), jobs_b.size());
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < jobs_a.size(); ++i) {
    EXPECT_EQ(jobs_a[i].seed, jobs_b[i].seed);
    EXPECT_EQ(jobs_a[i].hash, jobs_b[i].hash);
    seeds.insert(jobs_a[i].seed);
  }
  EXPECT_EQ(seeds.size(), jobs_a.size()) << "all job seeds distinct";
}

TEST(CampaignSpec, PairedSeedsShareReplicateSeedAcrossPoints) {
  auto spec = tiny_spec();
  spec.pair_seeds = true;
  const auto jobs = campaign::expand(spec);
  ASSERT_EQ(jobs.size(), 4U);
  EXPECT_EQ(jobs[0].seed, spec.base_seed);      // point 0, replicate 0
  EXPECT_EQ(jobs[2].seed, spec.base_seed);      // point 1, replicate 0
  EXPECT_EQ(jobs[1].seed, spec.base_seed + 1);  // point 0, replicate 1
  // Hashes still differ: the sweep point changes the experiment.
  EXPECT_NE(jobs[0].hash, jobs[2].hash);
}

TEST(CampaignSpec, HashReflectsEveryKeyAndSeed) {
  const auto jobs = campaign::expand(tiny_spec());
  std::set<std::string> hashes;
  for (const auto& job : jobs) hashes.insert(job.hash);
  EXPECT_EQ(hashes.size(), jobs.size());

  auto changed = tiny_spec();
  changed.base.set("train", "epochs", "2");
  const auto jobs_changed = campaign::expand(changed);
  EXPECT_NE(jobs[0].hash, jobs_changed[0].hash);
}

TEST(CampaignSpec, FromIniParsesSweepAndBase) {
  const auto ini = util::IniFile::parse(R"(
[campaign]
name = my_sweep
seeds = 2
base_seed = 9
pair_seeds = true
[sweep]
scenario.vehicles = 10, 20
[sweep.zip]
strategy.name = federated, opportunistic
strategy.round_duration_s = 30, 200
[data]
dataset = blobs
[strategy]
rounds = 3
)");
  const auto spec = campaign::campaign_from_ini(ini);
  EXPECT_EQ(spec.name, "my_sweep");
  EXPECT_EQ(spec.seeds_per_point, 2U);
  EXPECT_EQ(spec.base_seed, 9U);
  EXPECT_TRUE(spec.pair_seeds);
  ASSERT_EQ(spec.grid.size(), 1U);
  EXPECT_EQ(spec.grid[0].section, "scenario");
  EXPECT_EQ(spec.grid[0].key, "vehicles");
  EXPECT_EQ(spec.grid[0].values, (std::vector<std::string>{"10", "20"}));
  ASSERT_EQ(spec.zipped.size(), 2U);
  EXPECT_EQ(spec.base.get("data", "dataset", ""), "blobs");
  EXPECT_EQ(spec.base.get("strategy", "rounds", ""), "3");
  EXPECT_FALSE(spec.base.has("campaign", "name"));
  EXPECT_EQ(campaign::point_count(spec), 4U);
}

TEST(CampaignSpec, FromIniRejectsMalformedSweepKey) {
  const auto ini = util::IniFile::parse("[sweep]\nvehicles = 1, 2\n");
  EXPECT_THROW(campaign::campaign_from_ini(ini), std::runtime_error);
}

// ---------------------------------------------------------------- store --

TEST(ResultStore, SaveLoadRoundTripIncludingNastyNames) {
  campaign::ResultStore store{temp_dir("roundtrip")};
  campaign::JobRecord record;
  record.hash = "00deadbeef00cafe";
  record.point_index = 3;
  record.seed_index = 1;
  record.seed = 18446744073709551615ULL;  // uint64 max survives
  record.point_label = "vehicles=50, name=opportunistic";
  record.strategy_name = "opportunistic";
  record.wall_seconds = 1.25;
  record.metrics = {
      {"final_accuracy", 0.375},
      {"a,b", 1.0},            // comma must be escaped, not truncated
      {"quo\"ted", 2.5},       // embedded quote
      {"loss, val, test", -3.5},
  };
  store.save(record);

  ASSERT_TRUE(store.contains(record.hash));
  const auto loaded = store.load(record.hash);
  EXPECT_EQ(loaded.hash, record.hash);
  EXPECT_EQ(loaded.point_index, record.point_index);
  EXPECT_EQ(loaded.seed_index, record.seed_index);
  EXPECT_EQ(loaded.seed, record.seed);
  EXPECT_EQ(loaded.point_label, record.point_label);
  EXPECT_EQ(loaded.strategy_name, record.strategy_name);
  EXPECT_DOUBLE_EQ(loaded.wall_seconds, record.wall_seconds);
  ASSERT_EQ(loaded.metrics, record.metrics);
  EXPECT_DOUBLE_EQ(loaded.metric("a,b"), 1.0);
  EXPECT_DOUBLE_EQ(loaded.metric("absent", -1.0), -1.0);
}

TEST(ResultStore, MissingAndCorruptRecordsThrow) {
  campaign::ResultStore store{temp_dir("corrupt")};
  EXPECT_FALSE(store.contains("0123456789abcdef"));
  EXPECT_THROW(store.load("0123456789abcdef"), std::runtime_error);

  // A record whose embedded hash disagrees with its filename is corrupt.
  campaign::JobRecord record;
  record.hash = "aaaaaaaaaaaaaaaa";
  store.save(record);
  const auto good = fs::path{store.dir()} / "aaaaaaaaaaaaaaaa.csv";
  const auto bad = fs::path{store.dir()} / "bbbbbbbbbbbbbbbb.csv";
  fs::copy_file(good, bad);
  EXPECT_THROW(store.load("bbbbbbbbbbbbbbbb"), std::runtime_error);
}

TEST(ResultStore, LoadAllSortsByPointThenSeed) {
  campaign::ResultStore store{temp_dir("loadall")};
  for (const auto& [hash, point, seed_index] :
       {std::tuple{"cccccccccccccccc", 2UL, 0UL},
        std::tuple{"aaaaaaaaaaaaaaaa", 0UL, 1UL},
        std::tuple{"bbbbbbbbbbbbbbbb", 0UL, 0UL}}) {
    campaign::JobRecord record;
    record.hash = hash;
    record.point_index = point;
    record.seed_index = seed_index;
    store.save(record);
  }
  const auto all = store.load_all();
  ASSERT_EQ(all.size(), 3U);
  EXPECT_EQ(all[0].hash, "bbbbbbbbbbbbbbbb");
  EXPECT_EQ(all[1].hash, "aaaaaaaaaaaaaaaa");
  EXPECT_EQ(all[2].hash, "cccccccccccccccc");
}

// --------------------------------------------------------------- engine --

TEST(CampaignEngine, MetricsAreIdenticalAcrossWorkerCounts) {
  const auto spec = tiny_spec();
  campaign::EngineOptions serial;
  serial.workers = 1;
  const auto base = campaign::run_campaign(spec, serial);
  ASSERT_EQ(base.records.size(), 4U);
  EXPECT_EQ(base.executed, 4U);
  EXPECT_EQ(base.resumed, 0U);

  for (std::size_t workers : {2U, 4U}) {
    campaign::EngineOptions parallel;
    parallel.workers = workers;
    const auto run = campaign::run_campaign(spec, parallel);
    ASSERT_EQ(run.records.size(), base.records.size());
    for (std::size_t i = 0; i < run.records.size(); ++i) {
      EXPECT_EQ(run.records[i].hash, base.records[i].hash);
      // Bit-identical metric names AND values, independent of scheduling.
      ASSERT_EQ(run.records[i].metrics, base.records[i].metrics)
          << "job " << i << " with " << workers << " workers";
    }
  }
}

TEST(CampaignEngine, ResumeSkipsCompletedJobsAndFinishesTheRest) {
  const auto spec = tiny_spec();
  const auto jobs = campaign::expand(spec);

  // Simulate a killed campaign: the store already holds ONE finished job,
  // marked with a sentinel metric no real run produces.
  const std::string dir = temp_dir("resume");
  {
    campaign::ResultStore store{dir};
    campaign::JobRecord sentinel;
    sentinel.hash = jobs[1].hash;
    sentinel.point_index = jobs[1].point_index;
    sentinel.seed_index = jobs[1].seed_index;
    sentinel.seed = jobs[1].seed;
    sentinel.metrics = {{"sentinel", 42.0}};
    store.save(sentinel);
  }

  campaign::EngineOptions options;
  options.workers = 2;
  options.store_dir = dir;
  std::size_t progress_calls = 0;
  campaign::Progress last{};
  options.on_progress = [&](const campaign::Progress& p) {
    ++progress_calls;
    last = p;
  };
  const auto result = campaign::run_campaign(spec, options);

  EXPECT_EQ(result.resumed, 1U);
  EXPECT_EQ(result.executed, jobs.size() - 1);
  // The finished job was NOT re-run: its sentinel record survived.
  EXPECT_DOUBLE_EQ(result.records[1].metric("sentinel"), 42.0);
  EXPECT_EQ(progress_calls, jobs.size() - 1);
  EXPECT_EQ(last.total, jobs.size());
  EXPECT_EQ(last.resumed, 1U);
  EXPECT_EQ(last.completed, jobs.size() - 1);

  // Second invocation: everything resumes, nothing executes, records match.
  const auto again = campaign::run_campaign(spec, options);
  EXPECT_EQ(again.resumed, jobs.size());
  EXPECT_EQ(again.executed, 0U);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(again.records[i].metrics, result.records[i].metrics);
  }
}

TEST(CampaignEngine, RecordsCarryTheExpectedMetricFamilies) {
  auto spec = tiny_spec();
  spec.grid.clear();
  spec.seeds_per_point = 1;
  const auto result = campaign::run_campaign(spec, {});
  ASSERT_EQ(result.records.size(), 1U);
  const auto& record = result.records[0];
  EXPECT_EQ(record.strategy_name, "federated");
  EXPECT_GT(record.metric("rounds_completed"), 0.0);
  EXPECT_GT(record.metric("sim_end_time_s"), 0.0);
  EXPECT_GT(record.metric("accuracy:final", -1.0), -1.0);
  EXPECT_GT(record.metric("accuracy:mean", -1.0), -1.0);
  EXPECT_GT(record.metric("accuracy:timeavg", -1.0), -1.0);
  EXPECT_GT(record.metric("v2c_bytes_delivered"), 0.0);
  EXPECT_GE(record.wall_seconds, 0.0);
}

// ---------------------------------------------------------- aggregation --

TEST(Aggregate, StatsMatchHandComputedValues) {
  const auto stats = campaign::compute_stats({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(stats.n, 4U);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_NEAR(stats.stddev, 1.2909944487, 1e-9);
  // t(df=3, 95%) = 3.182; CI half-width = t * s / sqrt(n).
  EXPECT_NEAR(stats.ci95_half, 3.182 * 1.2909944487 / 2.0, 1e-6);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);

  const auto single = campaign::compute_stats({5.0});
  EXPECT_EQ(single.n, 1U);
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
  EXPECT_DOUBLE_EQ(single.ci95_half, 0.0);

  EXPECT_EQ(campaign::compute_stats({}).n, 0U);
}

TEST(Aggregate, SummarizeGroupsByPointOverSeeds) {
  std::vector<campaign::JobRecord> records;
  for (std::size_t point = 0; point < 2; ++point) {
    for (std::size_t s = 0; s < 3; ++s) {
      campaign::JobRecord record;
      record.point_index = point;
      record.seed_index = s;
      record.point_label = "p" + std::to_string(point);
      record.strategy_name = "federated";
      record.metrics = {{"final_accuracy",
                         0.1 * static_cast<double>(point + 1) +
                             0.01 * static_cast<double>(s)}};
      records.push_back(std::move(record));
    }
  }
  const auto summaries = campaign::summarize(records);
  ASSERT_EQ(summaries.size(), 2U);
  EXPECT_EQ(summaries[0].label, "p0");
  EXPECT_EQ(summaries[0].metrics.at("final_accuracy").n, 3U);
  EXPECT_NEAR(summaries[0].metrics.at("final_accuracy").mean, 0.11, 1e-12);
  EXPECT_NEAR(summaries[1].metrics.at("final_accuracy").mean, 0.21, 1e-12);
}

TEST(Aggregate, CsvEscapesLabelsAndMetricNames) {
  std::vector<campaign::JobRecord> records(1);
  records[0].point_label = "a=1, b=2";
  records[0].strategy_name = "federated";
  records[0].metrics = {{"odd,name", 1.5}};
  std::ostringstream out;
  campaign::write_aggregate_csv(out, campaign::summarize(records));
  std::istringstream in{out.str()};
  const auto rows = util::read_csv(in);
  ASSERT_EQ(rows.size(), 2U);
  ASSERT_EQ(rows[1].size(), 10U);
  EXPECT_EQ(rows[1][1], "a=1, b=2");
  EXPECT_EQ(rows[1][3], "odd,name");
}

}  // namespace
}  // namespace roadrunner
