#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace roadrunner::ml {
namespace {

using roadrunner::testing::tiny_dataset;

TEST(Dataset, ConstructionAndAccessors) {
  auto ds = tiny_dataset(10, {2, 3}, 4);
  EXPECT_EQ(ds->size(), 10U);
  EXPECT_EQ(ds->num_classes(), 4U);
  EXPECT_EQ(ds->sample_size(), 6U);
  EXPECT_EQ(ds->sample_shape(), (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(ds->sample(3), ds->features().data() + 3 * 6);
}

TEST(Dataset, ValidatesLabels) {
  Tensor x{{2, 3}};
  EXPECT_THROW((Dataset{x, {0, 5}, 4}), std::invalid_argument);
  EXPECT_THROW((Dataset{x, {0, -1}, 4}), std::invalid_argument);
  EXPECT_THROW((Dataset{x, {0}, 4}), std::invalid_argument);  // N mismatch
}

TEST(Dataset, ClassHistogramSumsToSize) {
  auto ds = tiny_dataset(50, {4}, 3);
  const auto hist = ds->class_histogram();
  std::size_t total = 0;
  for (std::size_t c : hist) total += c;
  EXPECT_EQ(total, 50U);
}

TEST(DatasetView, AllCoversEverything) {
  auto ds = tiny_dataset(12, {4}, 3);
  const auto view = DatasetView::all(ds);
  EXPECT_EQ(view.size(), 12U);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(view.label(i), ds->label(i));
    EXPECT_EQ(view.sample(i), ds->sample(i));
  }
}

TEST(DatasetView, SubsetIndices) {
  auto ds = tiny_dataset(10, {4}, 3);
  DatasetView view{ds, {7, 2, 2}};
  EXPECT_EQ(view.size(), 3U);
  EXPECT_EQ(view.label(0), ds->label(7));
  EXPECT_EQ(view.label(1), ds->label(2));
  EXPECT_EQ(view.label(2), ds->label(2));  // duplicates allowed
}

TEST(DatasetView, ValidatesIndices) {
  auto ds = tiny_dataset(5, {4}, 3);
  EXPECT_THROW((DatasetView{ds, {5}}), std::out_of_range);
  EXPECT_THROW((DatasetView{nullptr, {}}), std::invalid_argument);
}

TEST(DatasetView, GatherBatchCopiesCorrectSamples) {
  auto ds = tiny_dataset(8, {2}, 2);
  DatasetView view{ds, {3, 1, 6, 0}};
  Tensor batch;
  std::vector<std::int32_t> labels;
  view.gather_batch(1, 2, batch, labels);
  ASSERT_EQ(batch.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_EQ(batch[0], ds->sample(1)[0]);
  EXPECT_EQ(batch[1], ds->sample(1)[1]);
  EXPECT_EQ(batch[2], ds->sample(6)[0]);
  EXPECT_EQ(labels[0], ds->label(1));
  EXPECT_EQ(labels[1], ds->label(6));
  EXPECT_THROW(view.gather_batch(3, 2, batch, labels), std::out_of_range);
}

TEST(DatasetView, MergedWithConcatenates) {
  auto ds = tiny_dataset(10, {4}, 3);
  DatasetView a{ds, {1, 2}};
  DatasetView b{ds, {3}};
  const auto merged = a.merged_with(b);
  ASSERT_EQ(merged.size(), 3U);
  EXPECT_EQ(merged.indices(), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(DatasetView, MergedWithRejectsDifferentBases) {
  auto ds1 = tiny_dataset(5, {4}, 3, 1);
  auto ds2 = tiny_dataset(5, {4}, 3, 2);
  DatasetView a{ds1, {0}};
  DatasetView b{ds2, {0}};
  EXPECT_THROW(a.merged_with(b), std::invalid_argument);
}

TEST(DatasetView, HistogramOfSubset) {
  Tensor x{{4, 1}};
  Dataset ds{x, {0, 0, 1, 2}, 3};
  auto shared = std::make_shared<Dataset>(std::move(ds));
  DatasetView view{shared, {0, 1, 2}};
  const auto hist = view.class_histogram();
  EXPECT_EQ(hist, (std::vector<std::size_t>{2, 1, 0}));
}

}  // namespace
}  // namespace roadrunner::ml
