#!/usr/bin/env python3
"""Golden-fixture tests for tools/rr_lint.py, run as the `rr_lint_test`
ctest target. Three fixture classes keep the rule table honest:

  pass/        — idiomatic code: zero findings, exit 0
  fail/        — one seeded violation per rule: exactly that rule fires,
                 non-zero exit
  suppressed/  — the same violations with `// rr-lint: allow(...)`
                 trailers: zero findings, exit 0

Plus CLI-contract checks (--list-rules, --explain) so the explain mode and
the rule table cannot drift apart.
"""

import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent.parent
LINT = ROOT / "tools" / "rr_lint.py"
FIXTURES = HERE / "fixtures"

EXPECTED_FAIL = {
    "raw_random.cpp": "raw-random",
    "wall_clock.cpp": "wall-clock",
    "core/unordered_iter.cpp": "unordered-iter",
    "adversary/unordered_iter.cpp": "unordered-iter",
    "adversary/raw_random.cpp": "raw-random",
    "workload/unordered_iter.cpp": "unordered-iter",
    "workload/raw_random.cpp": "raw-random",
    "traffic/unordered_iter.cpp": "unordered-iter",
    "raw_thread.cpp": "raw-thread",
    "dist/raw_socket.cpp": "raw-thread",
    "metric_name.cpp": "metric-name",
    "metric_newline.cpp": "metric-name",
    "fp_accum.cpp": "fp-unordered-accum",
    "parallel_mutation.cpp": "parallel-mutation",
    "checkpoint/tag_unread.cpp": "ckpt-tag-symmetry",
    "dist/msgtype_missing.cpp": "msgtype-exhaustive",
    "dist/len_narrow.cpp": "len-narrow",
    "unknown_suppression.cpp": "unknown-suppression",
    "stale_suppression.cpp": "stale-suppression",
}

failures = []


def check(label, condition, detail=""):
    if condition:
        print(f"ok   {label}")
    else:
        failures.append(label)
        print(f"FAIL {label}  {detail}")


def run(*args):
    return subprocess.run(
        [sys.executable, str(LINT), *map(str, args)],
        capture_output=True, text=True)


# --- pass fixtures: zero findings -----------------------------------------
for fixture in sorted((FIXTURES / "pass").rglob("*.cpp")):
    r = run(fixture)
    check(f"pass/{fixture.name} lints clean",
          r.returncode == 0 and not r.stdout.strip(), r.stdout)

# --- fail fixtures: exactly the seeded rule fires, exit is non-zero -------
for rel, rule in sorted(EXPECTED_FAIL.items()):
    fixture = FIXTURES / "fail" / rel
    r = run(fixture)
    fired = re.findall(r"\[([a-z-]+)\]", r.stdout)
    check(f"fail/{rel} exits non-zero", r.returncode == 1, f"rc={r.returncode}")
    check(f"fail/{rel} fires only [{rule}]",
          fired == [rule], f"fired={fired} out={r.stdout}")

# --- suppressed fixtures: trailers silence every rule ---------------------
for fixture in sorted((FIXTURES / "suppressed").rglob("*.cpp")):
    r = run(fixture)
    check(f"suppressed/{fixture.name} lints clean",
          r.returncode == 0 and not r.stdout.strip(), r.stdout)

# --- whole-fixture-tree sweep: findings == the seeded set, nothing else ---
all_fixtures = sorted(FIXTURES.rglob("*.cpp"))
r = run(*all_fixtures)
fired = sorted(re.findall(r"\[([a-z-]+)\]", r.stdout))
check("fixture-tree sweep fires each rule's seed exactly once",
      fired == sorted(EXPECTED_FAIL.values()), f"fired={fired}")

# --- CLI contract ---------------------------------------------------------
r = run("--list-rules")
listed = set(re.findall(r"^([a-z-]+)\s", r.stdout, re.M))
expected_rules = set(EXPECTED_FAIL.values())
check("--list-rules covers every tested rule",
      r.returncode == 0 and expected_rules <= listed,
      f"listed={listed}")

for rule in sorted(expected_rules):
    r = run("--explain", rule)
    check(f"--explain {rule} prints a fix recipe",
          r.returncode == 0 and "Fix:" in r.stdout and rule in r.stdout)

r = run("--explain", "no-such-rule")
check("--explain rejects unknown rules", r.returncode == 2)

r = run(FIXTURES / "does_not_exist.cpp")
check("missing file is a usage error, not a pass", r.returncode == 2)

# --------------------------------------------------------------------------
if failures:
    print(f"\n{len(failures)} check(s) failed")
    sys.exit(1)
print("\nall rr-lint fixture checks passed")
