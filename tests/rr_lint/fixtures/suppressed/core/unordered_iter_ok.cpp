// Golden fixture: suppressed unordered iteration in an order-sensitive
// path segment (`core/`). Must lint clean.
#include <unordered_map>

inline double commutative_sum(const std::unordered_map<int, double>& table) {
  std::unordered_map<int, double> local = table;
  double sum = 0.0;
  // FP addition is order-sensitive, which is exactly why real code should
  // sort — this fixture only tests the trailers, so both the iteration and
  // the accumulation carry one.
  for (const auto& entry : local) {  // rr-lint: allow(unordered-iter)
    sum += entry.second;  // rr-lint: allow(fp-unordered-accum)
  }
  return sum;
}
