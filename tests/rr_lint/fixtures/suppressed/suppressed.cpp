// Golden fixture: one would-be violation per rule, each silenced by an
// allow(<rule>) trailer. Must lint clean — this is the regression test
// for the suppression syntax itself. (The trailer is spelled out only on
// real suppression lines below: naming a rule in prose would trip the
// unknown/stale suppression meta rules.)
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>

#include "metrics/registry.hpp"

inline int suppressed_draw() {
  std::mt19937 engine{7};  // rr-lint: allow(raw-random) fixture only
  return static_cast<int>(engine());
}

inline double suppressed_clock() {
  const auto t = std::chrono::steady_clock::now();  // rr-lint: allow(wall-clock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

inline void suppressed_thread() {
  std::thread t{[] {}};  // rr-lint: allow(raw-thread) fixture only
  t.join();
}

inline int suppressed_socket() {
  return socket(2, 1, 0);  // rr-lint: allow(raw-thread) fixture only
}

inline void suppressed_metric(roadrunner::metrics::Registry& reg) {
  // Two rules on one line, comma-separated: both must actually fire here,
  // or the stale-suppression meta rule flags the unused half.
  reg.increment("shard_" + std::to_string(std::rand()));  // rr-lint: allow(metric-name,raw-random)
}
