// Golden fixture: a parallel mutation the analyzer cannot see through
// (internally synchronized sink), documented with a suppression trailer.
// Must lint clean.
#include <cstddef>
#include <vector>

struct ThreadPool {
  template <typename F>
  void parallel_for(std::size_t n, F&& body);
};

struct ConcurrentSink {
  void resize(std::size_t n);  // internally synchronized
  double drain();
};

inline double pooled(ThreadPool& pool, ConcurrentSink& sink,
                     const std::vector<double>& xs) {
  pool.parallel_for(xs.size(), [&](std::size_t i) {
    sink.resize(static_cast<std::size_t>(i));  // rr-lint: allow(parallel-mutation) internally synchronized
  });
  return sink.drain();
}
