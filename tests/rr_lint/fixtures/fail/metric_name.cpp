// Golden fixture: must produce exactly one `metric-name` finding
// (computed-name variant).
#include <string>

#include "metrics/registry.hpp"

inline void open_ended_schema(roadrunner::metrics::Registry& reg, int shard) {
  reg.increment("shard_" + std::to_string(shard));  // computed name: flagged
}
