// Golden fixture: must produce exactly one `unordered-iter` finding. Lives
// under a `traffic/` path segment — the queue-shaped fleet and the
// signal/platoon timeline the generator emits are part of the
// bit-identical-across-worker-counts contract, so the order-sensitive
// scope applies.
#include <cstddef>
#include <unordered_map>
#include <vector>

inline std::vector<std::size_t> collect_queued_vehicles(
    const std::unordered_map<std::size_t, double>& queued) {
  std::vector<std::size_t> out;
  for (const auto& [vehicle, stop_s] : queued) {  // bucket order: flagged
    out.push_back(vehicle);
  }
  return out;
}
