// Golden fixture: must produce exactly one `raw-thread` finding.
#include <thread>

inline void fire_and_forget() {
  std::thread worker{[] {}};  // ad-hoc thread outside util/thread_pool: flagged
  worker.join();
}
