// Golden fixture: a u32 length field produced by narrowing a 64-bit size
// with no preceding range check — silently truncates past 4 GiB and lies to
// the peer about the payload. Must fire exactly [len-narrow].
#include <cstdint>
#include <string>

inline std::uint32_t frame_len(const std::string& payload) {
  return static_cast<std::uint32_t>(payload.size());
}
