// Golden fixture: a MsgType switch that covers a strict subset of the
// enumerators with no default: — a newer peer's frame falls through
// silently. Must fire exactly [msgtype-exhaustive].
enum class MsgType : unsigned char { kHello = 1, kResult = 2, kShutdown = 3 };

inline int dispatch(MsgType t) {
  switch (t) {
    case MsgType::kHello:
      return 1;
    case MsgType::kResult:
      return 2;
  }
  return 0;
}
