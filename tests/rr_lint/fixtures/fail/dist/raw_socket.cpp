// Golden fixture: must produce exactly one `raw-thread` finding — the
// rule also guards the POSIX socket surface outside util/socket.
inline int open_raw_connection() {
  const int fd = socket(2, 1, 0);  // syscall outside util/socket: flagged
  return fd;
}
