// Golden fixture: a checkpoint section tag written on the save path with no
// matching section()/has() read on restore — dead payload or a missing
// restore path. Must fire exactly [ckpt-tag-symmetry].
#include <cstdint>
#include <utility>
#include <vector>

constexpr std::uint32_t kSectionMeta = 1;
constexpr std::uint32_t kSectionOrphan = 2;

struct Writer {};

struct Frame {
  bool has(std::uint32_t tag) const;
  const Writer& section(std::uint32_t tag) const;
};

inline void save(std::vector<std::pair<std::uint32_t, Writer>>& sections) {
  auto add = [&](std::uint32_t tag, Writer w) {
    sections.emplace_back(tag, std::move(w));
  };
  add(kSectionMeta, Writer{});
  add(kSectionOrphan, Writer{});
}

inline void restore(const Frame& frame) {
  (void)frame.section(kSectionMeta);
}
