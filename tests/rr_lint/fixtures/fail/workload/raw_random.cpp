// Golden fixture: must produce exactly one `raw-random` finding. Telemetry
// samples must come from the scenario's forked "workload" util::Rng stream;
// a raw engine here would synthesize different streams across builds and
// break the same-seed CSV byte-compare.
#include <random>

inline double telemetry_sample() {
  std::mt19937_64 engine{42};  // raw engine outside util/rng: flagged
  std::normal_distribution<double> dist{0.0, 1.0};
  return dist(engine);
}
