// Golden fixture: must produce exactly one `unordered-iter` finding. Lives
// under a `workload/` path segment — the stream generator's output order is
// part of the bit-identical-across-worker-counts contract, so the
// order-sensitive scope applies.
#include <cstddef>
#include <unordered_map>
#include <vector>

inline std::vector<std::size_t> collect_front_members(
    const std::unordered_map<std::size_t, double>& members) {
  std::vector<std::size_t> out;
  for (const auto& [vehicle, radius] : members) {  // bucket order: flagged
    out.push_back(vehicle);
  }
  return out;
}
