// Golden fixture: must produce exactly one `wall-clock` finding.
#include <chrono>

inline double host_now_s() {
  const auto now = std::chrono::steady_clock::now();  // flagged
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
