// Golden fixture: floating-point accumulation inside unordered iteration.
// The reduction order depends on hash-bucket layout, so same-seed runs can
// differ in the last ulp. Must fire exactly [fp-unordered-accum].
#include <unordered_map>

inline double total_reward(const std::unordered_map<int, double>& rewards) {
  std::unordered_map<int, double> local = rewards;
  double sum = 0.0;
  for (const auto& entry : local) {
    sum += entry.second;
  }
  return sum;
}
