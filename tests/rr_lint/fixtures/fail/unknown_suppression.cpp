// Golden fixture: an allow() trailer naming a rule id that does not exist
// (the classic underscore-for-dash typo). It silences nothing and reads as
// if it did. Must fire exactly [unknown-suppression].
#include <string>

inline std::string shard_label(int shard) {
  return "shard_" + std::to_string(shard);  // rr-lint: allow(unordered_iter)
}
