// Golden fixture: must produce exactly one `raw-random` finding.
#include <cstdlib>
#include <random>

inline int nondeterministic_draw() {
  std::mt19937 engine{42};  // raw engine outside util/rng: flagged
  return static_cast<int>(engine());
}
