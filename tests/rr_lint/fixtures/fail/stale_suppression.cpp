// Golden fixture: an allow() trailer for a real rule on a line that no
// longer violates it — left behind after a fix, it misdocuments the line
// and would mask a regression. Must fire exactly [stale-suppression].
inline int add_one(int x) {
  return x + 1;  // rr-lint: allow(raw-random)
}
