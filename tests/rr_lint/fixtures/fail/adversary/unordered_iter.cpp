// Golden fixture: must produce exactly one `unordered-iter` finding. Lives
// under an `adversary/` path segment — the subsystem checkpoints its attack
// state, so the order-sensitive scope applies.
#include <cstdint>
#include <unordered_set>
#include <vector>

inline std::vector<std::uint32_t> snapshot_compromised(
    const std::unordered_set<std::uint32_t>& compromised) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t id : compromised) {  // bucket-order iteration: flagged
    out.push_back(id);
  }
  return out;
}
