// Golden fixture: must produce exactly one `raw-random` finding. Attack
// agents draw all randomness from the controller's forked util::Rng; a raw
// engine here would desync byzantine garbage across checkpoint restores.
#include <random>

inline double byzantine_coordinate() {
  std::normal_distribution<double> dist{0.0, 25.0};
  std::default_random_engine engine{7};  // raw engine outside util/rng: flagged
  return dist(engine);
}
