// Golden fixture: must produce exactly one `metric-name` finding
// (newline-literal variant; the Registry would throw at runtime, the lint
// catches it before the build).
#include "metrics/registry.hpp"

inline void broken_name(roadrunner::metrics::Registry& reg) {
  reg.increment("accuracy\nper_round");  // newline in a metric name: flagged
}
