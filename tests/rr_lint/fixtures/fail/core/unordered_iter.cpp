// Golden fixture: must produce exactly one `unordered-iter` finding. Lives
// under a `core/` path segment so the order-sensitive scope applies.
#include <string>
#include <unordered_map>
#include <vector>

inline std::vector<std::string> emit_names(
    const std::unordered_map<std::string, double>& table) {
  std::unordered_map<std::string, double> local = table;
  std::vector<std::string> out;
  for (const auto& entry : local) {  // bucket-order iteration: flagged
    out.push_back(entry.first);
  }
  return out;
}
