// Golden fixture: a parallel_for lambda mutating by-reference captured
// state with no MutexLock, no atomic, and no index sharding — a data race
// TSan would only catch on the right interleaving. Must fire exactly
// [parallel-mutation].
#include <cstddef>
#include <vector>

struct ThreadPool {
  template <typename F>
  void parallel_for(std::size_t n, F&& body);
};

inline double racy_total(ThreadPool& pool, const std::vector<double>& xs) {
  double total = 0.0;
  pool.parallel_for(xs.size(), [&](std::size_t i) {
    total += xs[i];
  });
  return total;
}
