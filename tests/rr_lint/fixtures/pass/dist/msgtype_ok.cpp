// Golden fixture: the two sanctioned MsgType switch shapes — a default:
// that rejects unknown frames, and full enumerator coverage. The enum must
// stay identical to the fail/dist fixture: the whole-fixture-tree sweep
// discovers one MsgType definition for all dist files. Must lint clean.
enum class MsgType : unsigned char { kHello = 1, kResult = 2, kShutdown = 3 };

inline int dispatch_with_default(MsgType t) {
  switch (t) {
    case MsgType::kHello:
      return 1;
    case MsgType::kResult:
      return 2;
    default:
      return 0;
  }
}

inline int dispatch_exhaustive(MsgType t) {
  switch (t) {
    case MsgType::kHello:
      return 1;
    case MsgType::kResult:
      return 2;
    case MsgType::kShutdown:
      return 3;
  }
  return 0;
}
