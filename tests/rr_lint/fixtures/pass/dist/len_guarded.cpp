// Golden fixture: the canonical guarded narrowing (send_frame's shape) —
// the size is compared against the protocol limit and rejected before the
// cast. Must lint clean.
#include <cstdint>
#include <stdexcept>
#include <string>

constexpr std::size_t kMaxFramePayload = 64u * 1024u * 1024u;

inline std::uint32_t frame_len(const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error("frame payload exceeds kMaxFramePayload");
  }
  return static_cast<std::uint32_t>(payload.size());
}
