// Golden fixture: the three sanctioned shapes for writing shared state from
// a ThreadPool lambda — element writes sharded by the iteration index, a
// MutexLock around the mutation, and the named-lambda variant trainer.cpp
// uses. Must lint clean.
#include <cstddef>
#include <vector>

namespace util {
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};
}  // namespace util

struct ThreadPool {
  template <typename F>
  void parallel_for(std::size_t n, F&& body);
  template <typename F>
  void submit(F&& task);
};

inline void shard_by_index(ThreadPool& pool, std::vector<double>& out,
                           const std::vector<double>& in) {
  pool.parallel_for(in.size(), [&](std::size_t i) {
    out[i] = in[i] * 2.0;
  });
}

inline void guarded_total(ThreadPool& pool, util::Mutex& mutex, double& total,
                          const std::vector<double>& xs) {
  pool.parallel_for(xs.size(), [&](std::size_t i) {
    const double contribution = xs[i] * 0.5;
    util::MutexLock lock{mutex};
    total += contribution;
  });
}

inline void named_lambda(ThreadPool& pool, std::vector<int>& hits) {
  auto body = [&](std::size_t i) { hits[i] = static_cast<int>(i); };
  pool.parallel_for(hits.size(), body);
}
