// Golden fixture: the two idiomatic fixes for unordered FP accumulation —
// iterate a sorted container, or accumulate in an exact integer domain.
// Must lint clean.
#include <cstdint>
#include <map>
#include <unordered_map>

inline double total_sorted(const std::map<int, double>& rewards) {
  double sum = 0.0;
  for (const auto& entry : rewards) {
    sum += entry.second;
  }
  return sum;
}

inline std::uint64_t count_positive(const std::unordered_map<int, double>& t) {
  std::unordered_map<int, double> local = t;
  std::uint64_t n = 0;
  for (const auto& entry : local) {
    n += entry.second > 0.0 ? 1u : 0u;
  }
  return n;
}
