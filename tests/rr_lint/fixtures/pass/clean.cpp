// Golden fixture: idiomatic roadrunner code that every rr-lint rule must
// accept. If this file ever produces a finding, a rule has grown a false
// positive (tests/rr_lint/rr_lint_test.py).
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/registry.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace roadrunner::fixture {

struct Config {
  std::string accuracy_series = "accuracy";
};

// Mentioning a clock inside a comment or a string is fine: the lint strips
// comments and blanks string literals before matching. steady_clock, rand().
inline const char* kBanner = "system_clock is only text here; std::thread too";

inline void record_metrics(metrics::Registry& reg, const Config& config,
                           double now) {
  reg.add_point(config.accuracy_series, now, 0.5);  // identifier chain: ok
  reg.add_point("loss", now, 0.25);                 // literal: ok
  reg.increment("rounds_completed");
  reg.set_counter("final_accuracy", 0.9);
}

inline double draw(util::Rng& parent) {
  util::Rng rng = parent.fork("fixture");  // named fork: the sanctioned path
  return rng.uniform();
}

inline double timed_work() {
  const util::Stopwatch watch;  // sanctioned wall-clock facade
  util::ThreadPool::global().parallel_for(4, [](std::size_t) {});
  return watch.elapsed_s();
}

// Unordered maps may exist anywhere; only *iteration* in order-sensitive
// dirs is flagged — and lookups are always fine.
inline int lookup(const std::unordered_map<int, int>& m, int key) {
  auto it = m.find(key);
  return it == m.end() ? 0 : it->second;
}

// `runtime(...)`, `sim_time(...)` and member `.time()` calls must not trip
// the wall-clock rule's `time(` pattern.
inline double runtime(double sim_time) { return sim_time; }

}  // namespace roadrunner::fixture
