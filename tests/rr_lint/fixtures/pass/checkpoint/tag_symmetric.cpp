// Golden fixture: symmetric section tags — the unconditional tag has a
// section() read, and the conditionally written tag is restored behind a
// has() presence guard (the shape that keeps kMinRestoreVersion snapshots
// loadable). Must lint clean.
#include <cstdint>
#include <utility>
#include <vector>

constexpr std::uint32_t kSectionMeta = 1;
constexpr std::uint32_t kSectionExtra = 2;

struct Writer {};

struct Frame {
  bool has(std::uint32_t tag) const;
  const Writer& section(std::uint32_t tag) const;
};

inline void save(std::vector<std::pair<std::uint32_t, Writer>>& sections,
                 bool extra_enabled) {
  auto add = [&](std::uint32_t tag, Writer w) {
    sections.emplace_back(tag, std::move(w));
  };
  add(kSectionMeta, Writer{});
  if (extra_enabled) {
    add(kSectionExtra, Writer{});
  }
}

inline void restore(const Frame& frame) {
  (void)frame.section(kSectionMeta);
  if (frame.has(kSectionExtra)) {
    (void)frame.section(kSectionExtra);
  }
}
