#include "ml/trainer.hpp"

#include <gtest/gtest.h>

#include "data/gaussian_blobs.hpp"
#include "ml/models.hpp"
#include "test_util.hpp"

namespace roadrunner::ml {
namespace {

DatasetView blob_view(std::size_t n, std::uint64_t seed = 5) {
  data::GaussianBlobConfig cfg;
  cfg.seed = seed;
  return DatasetView::all(
      std::make_shared<Dataset>(data::make_gaussian_blobs(n, cfg)));
}

TEST(Trainer, LossDecreasesOnLearnableProblem) {
  auto view = blob_view(400);
  util::Rng rng{1};
  Network net = make_mlp(16, 32, 4);
  prime_and_init(net, {16}, rng);

  const auto before = evaluate(net, view);
  TrainConfig cfg;
  cfg.epochs = 5;
  cfg.learning_rate = 0.05F;
  util::Rng train_rng{2};
  const auto report = train_sgd(net, view, cfg, train_rng);
  const auto after = evaluate(net, view);

  EXPECT_LT(after.loss, before.loss);
  EXPECT_GT(after.accuracy, 0.8);
  EXPECT_GT(report.final_accuracy, 0.7);
  EXPECT_EQ(report.samples_seen, 400U * 5);
  EXPECT_EQ(report.steps, (400U / cfg.batch_size) * 5);
  EXPECT_GT(report.flops, 0U);
}

TEST(Trainer, DeterministicGivenSeed) {
  auto view = blob_view(128);
  TrainConfig cfg;
  cfg.epochs = 2;

  auto run = [&](std::uint64_t seed) {
    util::Rng init{7};
    Network net = make_mlp(16, 16, 4);
    prime_and_init(net, {16}, init);
    util::Rng rng{seed};
    train_sgd(net, view, cfg, rng);
    return net.weights();
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

TEST(Trainer, ShuffleOffIsOrderDeterministic) {
  auto view = blob_view(64);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.shuffle = false;
  util::Rng init{7};
  Network net = make_mlp(16, 16, 4);
  prime_and_init(net, {16}, init);
  Network net2 = net;
  util::Rng r1{1}, r2{999};  // rng unused when shuffle is off
  train_sgd(net, view, cfg, r1);
  train_sgd(net2, view, cfg, r2);
  EXPECT_EQ(net.weights(), net2.weights());
}

TEST(Trainer, ValidatesArguments) {
  auto view = blob_view(16);
  util::Rng rng{1};
  Network net = make_mlp(16, 8, 4);
  prime_and_init(net, {16}, rng);
  TrainConfig cfg;
  cfg.epochs = 0;
  EXPECT_THROW(train_sgd(net, view, cfg, rng), std::invalid_argument);
  cfg.epochs = 1;
  cfg.batch_size = 0;
  EXPECT_THROW(train_sgd(net, view, cfg, rng), std::invalid_argument);
  DatasetView empty{view.base_ptr(), {}};
  cfg.batch_size = 8;
  EXPECT_THROW(train_sgd(net, empty, cfg, rng), std::invalid_argument);
}

TEST(Trainer, PartialFinalBatchHandled) {
  auto view = blob_view(50);  // 50 % 16 != 0
  util::Rng rng{1};
  Network net = make_mlp(16, 8, 4);
  prime_and_init(net, {16}, rng);
  TrainConfig cfg;
  cfg.epochs = 1;
  const auto report = train_sgd(net, view, cfg, rng);
  EXPECT_EQ(report.samples_seen, 50U);
  EXPECT_EQ(report.steps, 4U);  // 16+16+16+2
}

TEST(Evaluate, ParallelAndSerialAgree) {
  auto view = blob_view(333);
  util::Rng rng{9};
  Network net = make_mlp(16, 16, 4);
  prime_and_init(net, {16}, rng);
  const auto serial = evaluate(net, view, 64, /*parallel=*/false);
  const auto parallel = evaluate(net, view, 64, /*parallel=*/true);
  EXPECT_EQ(serial.accuracy, parallel.accuracy);
  EXPECT_DOUBLE_EQ(serial.loss, parallel.loss);
  EXPECT_EQ(serial.samples, 333U);
}

TEST(Evaluate, EmptyViewReturnsZeroes) {
  auto view = blob_view(8);
  DatasetView empty{view.base_ptr(), {}};
  util::Rng rng{9};
  Network net = make_mlp(16, 8, 4);
  prime_and_init(net, {16}, rng);
  const auto r = evaluate(net, empty);
  EXPECT_EQ(r.samples, 0U);
  EXPECT_EQ(r.accuracy, 0.0);
}

TEST(Evaluate, SubsetViewEvaluatesOnlySubset) {
  auto view = blob_view(100);
  DatasetView subset{view.base_ptr(), {0, 1, 2, 3, 4}};
  util::Rng rng{9};
  Network net = make_mlp(16, 8, 4);
  prime_and_init(net, {16}, rng);
  EXPECT_EQ(evaluate(net, subset).samples, 5U);
}

}  // namespace
}  // namespace roadrunner::ml
