// Quickstart: the smallest complete Roadrunner experiment.
//
// Simulates a 20-vehicle fleet in a synthetic city, distributes a fast
// Gaussian-blob classification problem non-IID over the vehicles, and runs
// 15 rounds of Federated Learning, printing the global model's accuracy
// over simulated time and the cellular traffic the run cost.
//
//   ./examples/quickstart [--vehicles=20] [--rounds=15] [--seed=1]
#include <cstdio>

#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

int main(int argc, char** argv) {
  util::CliArgs args{argc, argv};

  // 1. Describe the experiment.
  scenario::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.vehicles = static_cast<std::size_t>(args.get_int("vehicles", 20));
  cfg.dataset = "blobs";          // 4-class Gaussian problem, trains in ms
  cfg.train_pool_size = 4000;
  cfg.test_size = 1000;
  cfg.partition = "class_skew";   // non-IID: 2 of 4 classes per vehicle
  cfg.samples_per_vehicle = 40;
  cfg.classes_per_vehicle = 2;
  cfg.model = "mlp";
  cfg.city.duration_s = 4000.0;   // generate ~67 min of urban mobility

  scenario::Scenario scenario{cfg};

  // 2. Pick a learning strategy.
  strategy::RoundConfig round;
  round.rounds = static_cast<int>(args.get_int("rounds", 15));
  round.participants = 5;
  round.round_duration_s = 30.0;
  auto fl = std::make_shared<strategy::FederatedStrategy>(round);

  // 3. Run and inspect the metrics.
  const scenario::RunResult result = scenario.run(fl);

  std::printf("round-end accuracy over simulated time:\n");
  std::printf("%10s  %8s\n", "time[s]", "accuracy");
  for (const auto& p : result.metrics.series("accuracy")) {
    std::printf("%10.1f  %8.4f\n", p.time_s, p.value);
  }

  const auto& v2c = result.channel(comm::ChannelKind::kV2C);
  std::printf("\nfinal accuracy: %.4f\n", result.final_accuracy);
  std::printf("V2C traffic:    %.2f MB delivered in %llu transfers "
              "(%llu failed)\n",
              static_cast<double>(v2c.bytes_delivered) / 1e6,
              static_cast<unsigned long long>(v2c.transfers_delivered),
              static_cast<unsigned long long>(v2c.transfers_failed));
  std::printf("simulated %.0f s in %.2f s wall (%.0fx speed-up)\n",
              result.report.sim_end_time_s, result.report.wall_seconds,
              result.report.sim_end_time_s /
                  std::max(1e-9, result.report.wall_seconds));
  return 0;
}
