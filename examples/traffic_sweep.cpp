// traffic_sweep — how traffic infrastructure reshapes every learning
// strategy on the streaming telemetry workload. Expands
// examples/traffic.ini (strategy zip rows x a `traffic.regime` grid axis:
// free_flow / signalized / platooned), runs the campaign, and prints:
//
//   1. the headline table: final held-out log-likelihood per
//      (strategy, regime) — does queueing at red lights (and convoy
//      clustering on top of it) help or hurt each coordination pattern;
//   2. the staleness table: p90 stale-model age per (strategy, regime) —
//      signals hold vehicles together at intersections, platoons glue
//      them into convoys, and both shift when models meet; and
//   3. the traffic scorecard: stops, stop time, queue peaks, and platoon
//      maneuvers actually experienced per regime (identical across
//      strategies by construction — the fleet is strategy-independent).
//
//   ./examples/traffic_sweep [spec.ini] [--workers=N] [--seeds=N]
//        [--store=DIR]
//
// With --store the campaign is resumable: kill it and rerun to pick up
// where it left off.
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

namespace {

const campaign::SweepAxis* find_axis(const std::vector<campaign::SweepAxis>& axes,
                                     const std::string& section,
                                     const std::string& key) {
  for (const auto& axis : axes) {
    if (axis.section == section && axis.key == key) return &axis;
  }
  return nullptr;
}

double mean_of(const campaign::PointSummary& s, const std::string& metric) {
  const auto it = s.metrics.find(metric);
  return it == s.metrics.end() ? 0.0 : it->second.mean;
}

int run(int argc, char** argv) {
  util::CliArgs args{argc, argv};
  const std::string spec_path = args.positional().empty()
                                    ? std::string{"examples/traffic.ini"}
                                    : args.positional().front();
  if (!std::filesystem::exists(spec_path)) {
    std::fprintf(stderr, "spec not found: %s (run from the repo root)\n",
                 spec_path.c_str());
    return 1;
  }
  campaign::CampaignSpec spec =
      campaign::campaign_from_ini(util::IniFile::load(spec_path));
  if (args.has("seeds")) {
    spec.seeds_per_point = static_cast<std::size_t>(
        args.get_int("seeds", static_cast<std::int64_t>(spec.seeds_per_point)));
  }

  const campaign::SweepAxis* regimes =
      find_axis(spec.grid, "traffic", "regime");
  const campaign::SweepAxis* names = find_axis(spec.zipped, "strategy", "name");
  const campaign::SweepAxis* rsu_agg =
      find_axis(spec.zipped, "strategy", "aggregate_at_rsu");
  if (regimes == nullptr || names == nullptr) {
    std::fprintf(stderr,
                 "spec needs a [sweep] traffic.regime axis and a [sweep.zip] "
                 "strategy.name axis\n");
    return 1;
  }
  const std::size_t n_regime = regimes->values.size();
  const std::size_t n_strat = names->values.size();

  campaign::EngineOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  options.store_dir = args.get("store", "");
  options.on_progress = [](const campaign::Progress& p) {
    std::printf("\r[%zu/%zu] %.2f jobs/s   ", p.resumed + p.completed, p.total,
                p.jobs_per_s);
    std::fflush(stdout);
  };

  std::printf("traffic ablation  %s\n", spec_path.c_str());
  std::printf("jobs              %zu strategies x %zu regimes x %zu seeds "
              "= %zu\n",
              n_strat, n_regime, spec.seeds_per_point,
              n_strat * n_regime * spec.seeds_per_point);

  const campaign::CampaignResult result =
      campaign::run_campaign(spec, options);
  std::printf("\rdone: %zu executed, %zu resumed in %.1f s%20s\n",
              result.executed, result.resumed, result.wall_seconds, "");

  // point_index = zip_row * n_regime + regime_index (zip rows outermost).
  std::map<std::size_t, campaign::PointSummary> by_point;
  for (auto& s : campaign::summarize(result.records)) {
    by_point[s.point_index] = std::move(s);
  }

  std::vector<std::string> labels;
  std::size_t width = 8;  // "strategy"
  for (std::size_t z = 0; z < n_strat; ++z) {
    std::string label = names->values[z];
    if (rsu_agg != nullptr && rsu_agg->values[z] == "true") {
      label += "+rsu_agg";
    }
    width = std::max(width, label.size());
    labels.push_back(std::move(label));
  }
  const int w = static_cast<int>(width);

  const auto table = [&](const char* title, const std::string& metric) {
    std::printf("\n%s:\n%-*s", title, w, "strategy");
    for (const auto& regime : regimes->values) {
      std::printf(" %11s", regime.c_str());
    }
    std::printf("\n");
    for (std::size_t z = 0; z < n_strat; ++z) {
      std::printf("%-*s", w, labels[z].c_str());
      for (std::size_t g = 0; g < n_regime; ++g) {
        const auto it = by_point.find(z * n_regime + g);
        if (it == by_point.end()) {
          std::printf(" %11s", "-");
        } else {
          std::printf(" %11.3f", mean_of(it->second, metric));
        }
      }
      std::printf("\n");
    }
  };

  table("final held-out log-likelihood vs traffic regime", "final_accuracy");
  table("p90 stale-model age (s) vs traffic regime", "stale_model_age_p90_s");

  // ----- what the fleet actually experienced per regime --------------------
  // The traffic shape is strategy-independent (the fleet is generated before
  // any learning), so read the counters off the first zip row.
  std::printf("\ntraffic scorecard per regime (fleet-level, means over "
              "seeds):\n");
  std::printf("%-11s %7s %11s %9s %7s %9s\n", "regime", "stops",
              "stop_time_s", "mean_stop", "queue", "maneuvers");
  for (std::size_t g = 0; g < n_regime; ++g) {
    const auto it = by_point.find(g);
    if (it == by_point.end()) continue;
    const campaign::PointSummary& s = it->second;
    std::printf("%-11s %7.1f %11.1f %9.2f %7.1f %9.1f\n",
                regimes->values[g].c_str(), mean_of(s, "traffic_total_stops"),
                mean_of(s, "traffic_total_stop_time_s"),
                mean_of(s, "traffic_mean_stop_s"),
                mean_of(s, "traffic_max_queue_len"),
                mean_of(s, "platoon_maneuvers"));
  }
  std::printf(
      "\nreading: the eval score is held-out mean log-likelihood (higher is\n"
      "better). free_flow is the unshaped baseline — its traffic counters\n"
      "are zeros by construction. signalized adds queueing delay but also\n"
      "parks vehicles side by side at red lights; platooned further glues\n"
      "convoys together. Watch the staleness table: regimes that cluster\n"
      "vehicles move models faster than their stop time costs them.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
