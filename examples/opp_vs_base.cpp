// OPP vs BASE — the paper's §5.2 experiment as a runnable example, at a
// reduced default scale (use bench/fig4_opp_vs_base for the full-scale
// figure reproduction).
//
// Both strategies spend the same V2C communication budget (R vehicles
// contacted per round over the same number of rounds); OPP additionally
// lets reporters gather contributions from encountered vehicles via free
// V2X, at the price of longer rounds.
//
//   ./examples/opp_vs_base [--vehicles=40] [--rounds=12] [--reporters=5]
//                          [--base-round=30] [--opp-round=200] [--seed=3]
#include <cstdio>

#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "strategy/opportunistic.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

int main(int argc, char** argv) {
  util::CliArgs args{argc, argv};

  scenario::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  cfg.vehicles = static_cast<std::size_t>(args.get_int("vehicles", 40));
  cfg.dataset = "blobs";  // keep the example snappy; the bench uses images
  cfg.train_pool_size = 6000;
  cfg.test_size = 1500;
  cfg.partition = "class_skew";
  cfg.samples_per_vehicle = 40;
  cfg.classes_per_vehicle = 2;
  cfg.model = "mlp";
  cfg.city.duration_s = 20000.0;
  cfg.city.dwell_mean_s = 400.0;

  scenario::Scenario scenario{cfg};

  const int rounds = static_cast<int>(args.get_int("rounds", 12));
  const auto reporters =
      static_cast<std::size_t>(args.get_int("reporters", 5));

  strategy::RoundConfig base_round;
  base_round.rounds = rounds;
  base_round.participants = reporters;
  base_round.round_duration_s = args.get_double("base-round", 30.0);
  const auto base = scenario.run(
      std::make_shared<strategy::FederatedStrategy>(base_round));

  strategy::OpportunisticConfig opp_cfg;
  opp_cfg.round.rounds = rounds;
  opp_cfg.round.participants = reporters;
  opp_cfg.round.round_duration_s = args.get_double("opp-round", 200.0);
  const auto opp = scenario.run(
      std::make_shared<strategy::OpportunisticStrategy>(opp_cfg));

  std::printf("%-22s %10s %10s\n", "", "BASE", "OPP");
  std::printf("%-22s %10.4f %10.4f\n", "final accuracy",
              base.final_accuracy, opp.final_accuracy);
  std::printf("%-22s %10.0f %10.0f\n", "finished at sim [s]",
              base.report.sim_end_time_s, opp.report.sim_end_time_s);
  std::printf("%-22s %10.2f %10.2f\n", "V2C delivered [MB]",
              static_cast<double>(
                  base.channel(comm::ChannelKind::kV2C).bytes_delivered) /
                  1e6,
              static_cast<double>(
                  opp.channel(comm::ChannelKind::kV2C).bytes_delivered) /
                  1e6);
  std::printf("%-22s %10.2f %10.2f\n", "V2X delivered [MB]",
              static_cast<double>(
                  base.channel(comm::ChannelKind::kV2X).bytes_delivered) /
                  1e6,
              static_cast<double>(
                  opp.channel(comm::ChannelKind::kV2X).bytes_delivered) /
                  1e6);
  std::printf("%-22s %10s %10.0f\n", "total V2X exchanges", "-",
              opp.metrics.counter("opp_v2x_exchanges"));

  std::printf("\nOPP V2X exchanges per round (the Fig. 4 bars):\n  ");
  for (const auto& p : opp.metrics.series("v2x_exchanges_per_round")) {
    std::printf("%d ", static_cast<int>(p.value));
  }
  std::printf("\n");
  return 0;
}
