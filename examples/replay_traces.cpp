// Replaying recorded GPS traces — the workflow the paper designed the
// framework around: "fleet operators and vehicle manufacturers typically
// have access to unbiased real-world vehicle trajectories" (§2), so
// "vehicle spatial dynamics enter the Core Simulator statically, e.g. as a
// file of GPS traces" (§4).
//
// Without arguments, the example manufactures a stand-in for a recorded
// fleet (a commuter day exported to the two CSV files), then REPLAYS it
// from disk exactly as an operator would replay their own recordings, and
// runs FL on top — demonstrating that the simulator consumes files, not
// generators. Point --traces/--ignition at your own CSVs (optionally
// --lat-lon with --ref-lat/--ref-lon for geographic coordinates) to use
// real data.
//
//   traces CSV:   vehicle_id,time_s,x_m,y_m
//   ignition CSV: vehicle_id,start_s,end_s
#include <cstdio>
#include <filesystem>

#include "mobility/commute_model.hpp"
#include "mobility/trace_file.hpp"
#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

int main(int argc, char** argv) {
  util::CliArgs args{argc, argv};

  std::string traces = args.get("traces", "");
  std::string ignition = args.get("ignition", "");
  const bool synthetic = traces.empty();

  if (synthetic) {
    // Manufacture "recorded" data: one compressed commuter day.
    mobility::CommuteModelConfig day;
    day.day_length_s = 12000.0;
    day.seed = 14;
    const auto recorded = mobility::make_commute_fleet(25, day);
    traces = std::filesystem::temp_directory_path() / "rr_demo_traces.csv";
    ignition =
        std::filesystem::temp_directory_path() / "rr_demo_ignition.csv";
    mobility::save_fleet_csv(recorded, traces, ignition);
    std::printf("wrote demo recordings: %s (+ ignition)\n", traces.c_str());
  }

  // From here on, everything comes from the files.
  auto fleet = std::make_shared<mobility::FleetModel>(
      args.has("lat-lon")
          ? mobility::load_fleet_csv_geo(
                traces, ignition,
                mobility::GeoPoint{
                    args.get_double("ref-lat",
                                    mobility::kGothenburgCenter.latitude_deg),
                    args.get_double(
                        "ref-lon",
                        mobility::kGothenburgCenter.longitude_deg)})
          : mobility::load_fleet_csv(traces, ignition));
  std::printf("replaying %zu vehicles, %.0f s of mobility\n",
              fleet->vehicle_count(), fleet->duration());

  scenario::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 14));
  cfg.vehicles = fleet->vehicle_count();
  cfg.external_fleet = fleet;
  cfg.dataset = "blobs";
  cfg.train_pool_size = 4000;
  cfg.test_size = 800;
  cfg.partition = "class_skew";
  cfg.samples_per_vehicle = 40;
  cfg.classes_per_vehicle = 2;
  cfg.model = "mlp";
  scenario::Scenario scenario{cfg};

  strategy::RoundConfig round;
  round.rounds = static_cast<int>(args.get_int("rounds", 10));
  round.participants = 5;
  round.round_duration_s = 60.0;
  const auto result =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));

  std::printf("\n%10s %10s %12s\n", "time[s]", "accuracy", "contributors");
  const auto& acc = result.metrics.series("accuracy");
  const auto& prov = result.metrics.series("unique_data_contributors");
  for (std::size_t i = 0; i < acc.size(); ++i) {
    std::printf("%10.0f %10.4f %12.0f\n", acc[i].time_s, acc[i].value,
                i == 0 || i - 1 >= prov.size() ? 0.0 : prov[i - 1].value);
  }
  std::printf("\nfinal accuracy %.4f after %.0f simulated seconds\n",
              result.final_accuracy, result.report.sim_end_time_s);

  if (synthetic) {
    std::filesystem::remove(traces);
    std::filesystem::remove(ignition);
  }
  return 0;
}
