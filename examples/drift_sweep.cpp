// drift_sweep — time-to-readapt vs drift severity for every learning
// strategy on the streaming telemetry workload. Expands examples/drift.ini
// (strategy zip rows x a `drift.severity` grid axis), runs the campaign,
// and prints:
//
//   1. the headline table: mean time-to-readapt per (strategy, severity),
//      one row per strategy, one column per severity — which strategy
//      *tracks a moving distribution* fastest (DESIGN.md §13.4); and
//   2. a drift scorecard at the harshest severity: final held-out
//      log-likelihood, staleness-weighted regret, and how many of the
//      scripted shifts each strategy never recovered from.
//
//   ./examples/drift_sweep [spec.ini] [--workers=N] [--seeds=N]
//        [--store=DIR]
//
// With --store the campaign is resumable: kill it and rerun to pick up
// where it left off.
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

namespace {

const campaign::SweepAxis* find_axis(const std::vector<campaign::SweepAxis>& axes,
                                     const std::string& section,
                                     const std::string& key) {
  for (const auto& axis : axes) {
    if (axis.section == section && axis.key == key) return &axis;
  }
  return nullptr;
}

double mean_of(const campaign::PointSummary& s, const std::string& metric) {
  const auto it = s.metrics.find(metric);
  return it == s.metrics.end() ? 0.0 : it->second.mean;
}

int run(int argc, char** argv) {
  util::CliArgs args{argc, argv};
  const std::string spec_path = args.positional().empty()
                                    ? std::string{"examples/drift.ini"}
                                    : args.positional().front();
  if (!std::filesystem::exists(spec_path)) {
    std::fprintf(stderr, "spec not found: %s (run from the repo root)\n",
                 spec_path.c_str());
    return 1;
  }
  campaign::CampaignSpec spec =
      campaign::campaign_from_ini(util::IniFile::load(spec_path));
  if (args.has("seeds")) {
    spec.seeds_per_point = static_cast<std::size_t>(
        args.get_int("seeds", static_cast<std::int64_t>(spec.seeds_per_point)));
  }

  const campaign::SweepAxis* severity =
      find_axis(spec.grid, "drift", "severity");
  const campaign::SweepAxis* names = find_axis(spec.zipped, "strategy", "name");
  const campaign::SweepAxis* rsu_agg =
      find_axis(spec.zipped, "strategy", "aggregate_at_rsu");
  if (severity == nullptr || names == nullptr) {
    std::fprintf(stderr,
                 "spec needs a [sweep] drift.severity axis and a [sweep.zip] "
                 "strategy.name axis\n");
    return 1;
  }
  const std::size_t n_sev = severity->values.size();
  const std::size_t n_strat = names->values.size();

  campaign::EngineOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  options.store_dir = args.get("store", "");
  options.on_progress = [](const campaign::Progress& p) {
    std::printf("\r[%zu/%zu] %.2f jobs/s   ", p.resumed + p.completed, p.total,
                p.jobs_per_s);
    std::fflush(stdout);
  };

  std::printf("drift sweep       %s\n", spec_path.c_str());
  std::printf("jobs              %zu strategies x %zu severities x %zu seeds "
              "= %zu\n",
              n_strat, n_sev, spec.seeds_per_point,
              n_strat * n_sev * spec.seeds_per_point);

  const campaign::CampaignResult result =
      campaign::run_campaign(spec, options);
  std::printf("\rdone: %zu executed, %zu resumed in %.1f s%20s\n",
              result.executed, result.resumed, result.wall_seconds, "");

  // point_index = zip_row * n_sev + severity_index (zip rows outermost).
  std::map<std::size_t, campaign::PointSummary> by_point;
  for (auto& s : campaign::summarize(result.records)) {
    by_point[s.point_index] = std::move(s);
  }

  std::vector<std::string> labels;
  std::size_t width = 8;  // "strategy"
  for (std::size_t z = 0; z < n_strat; ++z) {
    std::string label = names->values[z];
    if (rsu_agg != nullptr && rsu_agg->values[z] == "true") {
      label += "+rsu_agg";
    }
    width = std::max(width, label.size());
    labels.push_back(std::move(label));
  }
  const int w = static_cast<int>(width);

  // ----- time-to-readapt vs severity ---------------------------------------
  std::printf("\nmean time-to-readapt (s) vs drift severity:\n");
  std::printf("%-*s", w, "strategy");
  for (const auto& sev : severity->values) {
    std::printf(" %9s", ("s=" + sev).c_str());
  }
  std::printf("\n");
  for (std::size_t z = 0; z < n_strat; ++z) {
    std::printf("%-*s", w, labels[z].c_str());
    for (std::size_t g = 0; g < n_sev; ++g) {
      const auto it = by_point.find(z * n_sev + g);
      if (it == by_point.end()) {
        std::printf(" %9s", "-");
      } else {
        std::printf(" %9.1f",
                    mean_of(it->second, "drift_mean_time_to_readapt_s"));
      }
    }
    std::printf("\n");
  }

  // ----- drift scorecard at the harshest severity --------------------------
  std::printf("\ndrift scorecard at severity %s (means over seeds):\n",
              severity->values.back().c_str());
  std::printf("%-*s %10s %10s %9s %7s\n", w, "strategy", "loglik", "regret",
              "readapt_s", "unrec");
  for (std::size_t z = 0; z < n_strat; ++z) {
    const auto it = by_point.find(z * n_sev + (n_sev - 1));
    if (it == by_point.end()) continue;
    const campaign::PointSummary& s = it->second;
    std::printf("%-*s %10.3f %10.3f %9.1f %7.1f\n", w, labels[z].c_str(),
                mean_of(s, "final_accuracy"), mean_of(s, "drift_regret"),
                mean_of(s, "drift_mean_time_to_readapt_s"),
                mean_of(s, "drift_shifts_unrecovered"));
  }
  std::printf(
      "\nreading: the eval score is held-out mean log-likelihood, so values\n"
      "are negative and higher is better. Readapt times should grow with\n"
      "severity; a strategy whose unrec column fills up at high severity\n"
      "never catches the moving distribution within the horizon.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
