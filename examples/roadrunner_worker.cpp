// roadrunner_worker — campaign fleet member: connects to a coordinator
// started with `roadrunner_campaign --serve`, pulls jobs one at a time,
// runs them, and streams the records back. Start as many as you like, on
// as many machines as you like, whenever you like — the coordinator's pull
// scheduling absorbs elastic join/leave, and the aggregate CSV it writes
// is byte-identical to a single-process run (DESIGN.md §11).
//
//   ./examples/roadrunner_worker --connect=HOST:PORT [--name=ID]
//        [--shard-store=DIR] [--checkpoint-dir=DIR] [--max-jobs=N]
//        [--hold-before-job=SECONDS] [--trace-out=trace.json] [--profile]
//
// --shard-store gives the worker its own crash-durable store: a worker
// that is killed and restarted against the same directory replays its
// finished jobs from disk instead of recomputing them, and an orphaned
// shard can later be folded into the canonical store (the coordinator's
// dedup makes either path safe). --max-jobs makes the worker leave the
// fleet after N jobs — handy for spot capacity and for tests.
#include <cstdio>
#include <stdexcept>
#include <tuple>

#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

namespace {

int run(int argc, char** argv) {
  util::CliArgs args{argc, argv};
  telemetry::TraceSession telemetry_session{args.get("trace-out", ""),
                                            args.get_bool("profile", false)};
  if (!args.has("connect")) {
    std::fprintf(stderr,
                 "usage: %s --connect=HOST:PORT [--name=ID] "
                 "[--shard-store=DIR]\n"
                 "       [--checkpoint-dir=DIR] [--max-jobs=N] "
                 "[--hold-before-job=SECONDS]\n"
                 "       [--trace-out=trace.json] [--profile]\n",
                 argv[0]);
    return 2;
  }

  dist::WorkerOptions options;
  std::tie(options.host, options.port) =
      dist::parse_endpoint(args.get("connect", ""));
  options.name = args.get("name", "worker");
  options.shard_store_dir = args.get("shard-store", "");
  options.checkpoint_dir = args.get("checkpoint-dir", "");
  options.heartbeat_s = args.get_double("heartbeat", 1.0);
  options.max_jobs = static_cast<std::size_t>(args.get_int("max-jobs", 0));
  // Fault-injection aid for kill-worker tests: hold each assignment this
  // long before running it (see WorkerOptions::hold_before_job_s).
  options.hold_before_job_s = args.get_double("hold-before-job", 0.0);

  std::printf("worker %s connecting to %s:%u\n", options.name.c_str(),
              options.host.c_str(), static_cast<unsigned>(options.port));
  std::fflush(stdout);
  const dist::WorkerReport report = dist::run_worker(options);
  std::printf("worker %s: %zu jobs run, %zu accepted, %zu duplicate (%s)\n",
              options.name.c_str(), report.jobs_run, report.results_accepted,
              report.results_duplicate, report.shutdown_reason.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
