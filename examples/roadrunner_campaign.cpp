// roadrunner_campaign — the multi-run orchestrator: expands an INI campaign
// spec (base experiment × sweep axes × replicate seeds) into jobs, runs
// them in parallel with live progress (jobs/s, ETA), lands every finished
// job in a resumable on-disk store, and writes/prints the per-point
// aggregate (mean / stddev / 95% CI over seeds).
//
//   ./examples/roadrunner_campaign spec.ini [--workers=N] [--store=DIR]
//        [--out=aggregate.csv] [--plot=metric] [--seeds=N] [--fresh]
//        [--trace-out=trace.json] [--profile] [--dry-run] [--list-metrics]
//        [--checkpoint-every=SIMSECONDS] [--checkpoint-dir=DIR]
//        [--serve=[HOST:]PORT] [--log-assign] [--connect=[HOST:]PORT]
//
// --serve turns this process into a distributed-campaign coordinator: it
// expands the spec, listens on the endpoint, hands jobs to workers
// (roadrunner_worker, or this binary with --connect), and writes the same
// store and aggregate CSV a local run would — byte-identical, whatever the
// fleet looks like (DESIGN.md §11). --connect joins such a coordinator as a
// worker instead of running a campaign; the spec argument is ignored.
//
// --trace-out writes a Chrome trace_event JSON of the whole campaign
// (open in https://ui.perfetto.dev); --profile prints a per-category
// wall-clock summary to stderr. Either flag enables telemetry recording.
// --dry-run prints the expanded job list (hash, point, seed) without
// executing anything — the expansion is deterministic, so the printed
// hashes are exactly the store/checkpoint keys a real run will use.
// --list-metrics runs ONE job per distinct strategy in the spec and prints
// the sorted union of metric names those jobs emit — the valid values for
// --plot and for downstream analysis scripts, discovered rather than
// guessed (strategies emit different metric families). Conditional families
// appear when the spec enables them: adversary_*/defense_* need an active
// [adversary.N] timeline at the probed point, fault accounting a [fault.N]
// one — which the last-sweep-point probe below picks up for axes that rise
// from 0.
//
// Kill it mid-campaign and rerun: completed jobs are skipped, and with
// --checkpoint-every=N each in-flight job autosaves a snapshot every N
// simulated seconds, so the job that died mid-run resumes from its last
// snapshot instead of t=0 (snapshots land in --checkpoint-dir, default
// <store>/checkpoints, and are deleted once the job's record is stored).
// --fresh ignores (but does not delete) nothing — it simply uses a
// throwaway in-memory run with no store. With no arguments it runs
// examples/campaign.ini if present, else a small built-in demo campaign.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "telemetry/telemetry.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

namespace {

constexpr const char* kDefaultCampaign = R"ini(
# Built-in demo: fleet-size sweep, FL vs OPP, 3 seeds per point.
[campaign]
name = demo_density
seeds = 3
base_seed = 100

[sweep]
scenario.vehicles = 20, 35, 50

[sweep.zip]
strategy.name = federated, opportunistic
strategy.round_duration_s = 30, 200

[scenario]
horizon_s = 4000
[city]
duration_s = 4000
[data]
dataset = blobs
train_pool = 2400
test_size = 480
partition = class_skew
samples_per_vehicle = 40
[train]
model = logreg
epochs = 1
[strategy]
rounds = 6
participants = 4
)ini";

std::string format_eta(double seconds) {
  char buf[32];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1fh", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  }
  return buf;
}

int usage_error(const char* program, const std::string& reason) {
  std::fprintf(stderr, "error: %s\n", reason.c_str());
  std::fprintf(stderr,
               "usage: %s [spec.ini] [--workers=N] [--store=DIR] "
               "[--out=FILE] [--seeds=N] [--fresh]\n"
               "       [--serve=[HOST:]PORT] [--connect=[HOST:]PORT] "
               "[--name=WORKER] [--shard-store=DIR]\n"
               "       [--checkpoint-every=SIMSECONDS] "
               "[--checkpoint-dir=DIR] [--dry-run] [--list-metrics]\n",
               program);
  return 2;
}

int run(int argc, char** argv) {
  util::CliArgs args{argc, argv};
  // Exports on scope exit, so the trace covers the entire campaign.
  telemetry::TraceSession telemetry_session{args.get("trace-out", ""),
                                            args.get_bool("profile", false)};

  // Worker mode: join a coordinator instead of running a campaign. No spec
  // is read — the coordinator ships each job as fully resolved INI text.
  if (args.has("connect")) {
    dist::WorkerOptions wopts;
    std::tie(wopts.host, wopts.port) =
        dist::parse_endpoint(args.get("connect", ""));
    wopts.name = args.get("name", "worker");
    wopts.shard_store_dir = args.get("shard-store", "");
    wopts.checkpoint_dir = args.get("checkpoint-dir", "");
    wopts.max_jobs = static_cast<std::size_t>(args.get_int("max-jobs", 0));
    std::printf("worker %s connecting to %s:%u\n", wopts.name.c_str(),
                wopts.host.c_str(), static_cast<unsigned>(wopts.port));
    const dist::WorkerReport report = dist::run_worker(wopts);
    std::printf("worker %s: %zu jobs run, %zu accepted, %zu duplicate (%s)\n",
                wopts.name.c_str(), report.jobs_run, report.results_accepted,
                report.results_duplicate, report.shutdown_reason.c_str());
    return 0;
  }

  // Validated up front (not just on the paths that use it) so a typo like
  // --workers=O fails fast even with --dry-run. 0 and negatives used to be
  // silently coerced to "auto-size"; now they are a usage error.
  std::size_t worker_count = 0;
  try {
    worker_count = util::parse_worker_count(args, "workers");
  } catch (const std::invalid_argument& e) {
    return usage_error(argv[0], e.what());
  }

  util::IniFile ini;
  std::string spec_path;
  if (!args.positional().empty()) {
    spec_path = args.positional().front();
    ini = util::IniFile::load(spec_path);
  } else if (std::filesystem::exists("examples/campaign.ini")) {
    spec_path = "examples/campaign.ini";
    ini = util::IniFile::load(spec_path);
  } else {
    spec_path = "<built-in demo>";
    ini = util::IniFile::parse(kDefaultCampaign);
  }

  campaign::CampaignSpec spec = campaign::campaign_from_ini(ini);
  if (args.has("seeds")) {
    spec.seeds_per_point = static_cast<std::size_t>(
        args.get_int("seeds", static_cast<std::int64_t>(spec.seeds_per_point)));
  }

  if (args.get_bool("dry-run", false)) {
    const std::vector<campaign::Job> jobs = campaign::expand(spec);
    std::printf("campaign  %s (%s)\n", spec.name.c_str(), spec_path.c_str());
    std::printf("%zu jobs:\n", jobs.size());
    std::printf("%-16s %6s %6s %20s  %s\n", "hash", "point", "seed#", "seed",
                "point label");
    for (const auto& job : jobs) {
      std::printf("%-16s %6zu %6zu %20llu  %s\n", job.hash.c_str(),
                  job.point_index, job.seed_index,
                  static_cast<unsigned long long>(job.seed),
                  job.point_label.c_str());
    }
    return 0;
  }

  if (args.get_bool("list-metrics", false)) {
    // One probe job per distinct strategy: metric families differ between
    // strategies (gossip_merges vs rounds_completed vs central_uploads), so
    // the union over one representative of each covers the whole campaign.
    // Per strategy we probe its LAST sweep point: event-driven counters
    // only exist once their event fires, and later points typically enable
    // more machinery (e.g. a fault.severity or adversary.fraction axis
    // rising from 0 — adversary_*/defense_* columns only exist once an
    // attack timeline is active).
    const std::vector<campaign::Job> jobs = campaign::expand(spec);
    std::map<std::string, const campaign::Job*> probe;
    for (const auto& job : jobs) {
      if (job.seed_index != 0) continue;
      probe[job.experiment.get("strategy", "name", "federated")] = &job;
    }
    std::set<std::string> metric_names;
    for (const auto& [strategy, job] : probe) {
      std::fprintf(stderr, "probing %s (job %s)...\n", strategy.c_str(),
                   job->hash.c_str());
      const campaign::JobRecord record = campaign::run_job(*job);
      for (const auto& [name, value] : record.metrics) {
        metric_names.insert(name);
      }
    }
    std::printf("%zu metrics emitted by this spec's jobs (%zu strategies "
                "probed):\n",
                metric_names.size(), probe.size());
    for (const auto& name : metric_names) std::printf("%s\n", name.c_str());
    return 0;
  }

  campaign::EngineOptions options;
  options.workers = worker_count;
  if (!args.get_bool("fresh", false)) {
    options.store_dir =
        args.get("store", ini.get("campaign", "store", spec.name + "_results"));
  }
  options.checkpoint_every_s = args.get_double("checkpoint-every", 0.0);
  options.checkpoint_dir = args.get("checkpoint-dir", "");

  const std::size_t points = campaign::point_count(spec);
  std::printf("campaign  %s (%s)\n", spec.name.c_str(), spec_path.c_str());
  std::printf("jobs      %zu points x %zu seeds = %zu\n", points,
              spec.seeds_per_point, points * spec.seeds_per_point);
  if (!options.store_dir.empty()) {
    std::printf("store     %s (resumable; delete to restart)\n",
                options.store_dir.c_str());
  }

  options.on_progress = [](const campaign::Progress& p) {
    std::printf("\r[%zu/%zu] %s%.2f jobs/s, eta %s   ",
                p.resumed + p.completed, p.total,
                p.resumed > 0 ? (std::to_string(p.resumed) + " resumed, ").c_str()
                              : "",
                p.jobs_per_s, format_eta(p.eta_s).c_str());
    std::fflush(stdout);
  };

  std::vector<campaign::JobRecord> records;
  if (args.has("serve")) {
    // Coordinator mode: same store, same aggregate outputs, but the jobs
    // run wherever a worker connects from.
    dist::CoordinatorOptions copts;
    std::tie(copts.host, copts.port) = dist::parse_endpoint(
        args.get("serve", ""), "127.0.0.1", /*allow_port_zero=*/true);
    copts.store_dir = options.store_dir;
    copts.checkpoint_every_s = options.checkpoint_every_s;
    copts.lease_s = args.get_double("lease", copts.lease_s);
    copts.on_progress = options.on_progress;
    if (args.get_bool("log-assign", false)) {
      // One line per hand-off, flushed immediately: fleet scripts (and the
      // kill-worker CI lane) tail the log to learn which worker holds a
      // job right now.
      copts.on_assign = [](const campaign::Job& job,
                           const std::string& worker) {
        std::printf("assign %s -> %s\n", job.hash.c_str(), worker.c_str());
        std::fflush(stdout);
      };
    }
    dist::Coordinator coordinator{spec, copts};
    std::printf("serving   %s:%u — join with --connect=%s:%u\n",
                copts.host.c_str(), static_cast<unsigned>(coordinator.port()),
                copts.host.c_str(), static_cast<unsigned>(coordinator.port()));
    std::fflush(stdout);  // fleet launch scripts wait for this line
    dist::CoordinatorResult result = coordinator.serve();
    std::printf("\rdone: %zu executed, %zu resumed in %.1f s%20s\n",
                result.executed, result.resumed, result.wall_seconds, "");
    std::printf("fleet     %zu workers seen, %zu jobs requeued, "
                "%zu duplicate results dropped\n",
                result.workers_seen, result.requeued, result.duplicates);
    records = std::move(result.records);
  } else {
    campaign::CampaignResult result = campaign::run_campaign(spec, options);
    std::printf(
        "\rdone: %zu executed, %zu resumed in %.1f s (%.2f jobs/s)%20s\n",
        result.executed, result.resumed, result.wall_seconds,
        result.executed > 0 && result.wall_seconds > 0.0
            ? static_cast<double>(result.executed) / result.wall_seconds
            : 0.0,
        "");
    records = std::move(result.records);
  }

  const auto summaries = campaign::summarize(records);

  // Aggregate CSV.
  const std::string out_path = args.get("out", spec.name + "_aggregate.csv");
  {
    std::ofstream out{out_path};
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    campaign::write_aggregate_csv(out, summaries);
  }
  std::printf("aggregate %s (%zu points)\n\n", out_path.c_str(),
              summaries.size());

  // Per-point table for the headline metric.
  const std::string metric = args.get("plot", "final_accuracy");
  // Column width follows the longest label: truncating would collapse
  // distinct sweep points into identical-looking rows.
  std::size_t width = 5;  // "point"
  for (const auto& s : summaries) width = std::max(width, s.label.size());
  const int w = static_cast<int>(width);
  std::printf("%-*s %10s %10s %16s\n", w, "point", metric.c_str(), "stddev",
              "95% CI");
  util::PlotSeries series;
  series.label = metric + " (mean over seeds)";
  for (const auto& s : summaries) {
    const auto it = s.metrics.find(metric);
    if (it == s.metrics.end()) continue;
    std::printf("%-*s %10.4f %10.4f %8.4f±%.4f\n", w, s.label.c_str(),
                it->second.mean, it->second.stddev, it->second.mean,
                it->second.ci95_half);
    series.points.emplace_back(static_cast<double>(s.point_index),
                               it->second.mean);
  }
  if (!series.points.empty()) {
    std::printf("\n%s vs sweep point:\n%s\n", metric.c_str(),
                util::ascii_chart({series}).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
