// adversarial_sweep — accuracy-vs-attack-fraction for every robust
// aggregation defense. Expands examples/adversarial.ini ((strategy,
// aggregation) zip rows x an `adversary.fraction` grid axis), runs the
// campaign, and prints:
//
//   1. the headline table: mean final accuracy per (defense, fraction),
//      one row per defense, one column per attack fraction — the
//      adversarial-robustness scorecard. The fraction-0 column is the
//      clean baseline, so the cost of each defense under no attack and
//      its payoff under full attack read off the same row; and
//   2. an attack/defense accounting table at the harshest fraction:
//      compromised vehicles, poisoned/byzantine updates, sybil clones,
//      label-flipped trainings, defense rejections/clips, the attack
//      success rate, and jamming transfer failures — the per-cause
//      evidence that every scripted attack kind actually fired and which
//      defenses caught it.
//
//   ./examples/adversarial_sweep [spec.ini] [--workers=N] [--seeds=N]
//        [--store=DIR]
//
// With --store the campaign is resumable: kill it and rerun to pick up
// where it left off. Results are byte-identical for any --workers value
// (§10.4), so scaling out never changes the table.
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

namespace {

const campaign::SweepAxis* find_axis(const std::vector<campaign::SweepAxis>& axes,
                                     const std::string& section,
                                     const std::string& key) {
  for (const auto& axis : axes) {
    if (axis.section == section && axis.key == key) return &axis;
  }
  return nullptr;
}

double mean_of(const campaign::PointSummary& s, const std::string& metric) {
  const auto it = s.metrics.find(metric);
  return it == s.metrics.end() ? 0.0 : it->second.mean;
}

int run(int argc, char** argv) {
  util::CliArgs args{argc, argv};
  const std::string spec_path = args.positional().empty()
                                    ? std::string{"examples/adversarial.ini"}
                                    : args.positional().front();
  if (!std::filesystem::exists(spec_path)) {
    std::fprintf(stderr, "spec not found: %s (run from the repo root)\n",
                 spec_path.c_str());
    return 1;
  }
  campaign::CampaignSpec spec =
      campaign::campaign_from_ini(util::IniFile::load(spec_path));
  if (args.has("seeds")) {
    spec.seeds_per_point = static_cast<std::size_t>(
        args.get_int("seeds", static_cast<std::int64_t>(spec.seeds_per_point)));
  }

  const campaign::SweepAxis* fraction =
      find_axis(spec.grid, "adversary", "fraction");
  const campaign::SweepAxis* names = find_axis(spec.zipped, "strategy", "name");
  const campaign::SweepAxis* aggs =
      find_axis(spec.zipped, "strategy", "aggregation");
  if (fraction == nullptr || names == nullptr || aggs == nullptr) {
    std::fprintf(stderr,
                 "spec needs a [sweep] adversary.fraction axis and [sweep.zip] "
                 "strategy.name + strategy.aggregation axes\n");
    return 1;
  }
  const std::size_t n_frac = fraction->values.size();
  const std::size_t n_def = names->values.size();

  campaign::EngineOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  options.store_dir = args.get("store", "");
  options.on_progress = [](const campaign::Progress& p) {
    std::printf("\r[%zu/%zu] %.2f jobs/s   ", p.resumed + p.completed, p.total,
                p.jobs_per_s);
    std::fflush(stdout);
  };

  std::printf("adversarial sweep %s\n", spec_path.c_str());
  std::printf("jobs              %zu defenses x %zu fractions x %zu seeds "
              "= %zu\n",
              n_def, n_frac, spec.seeds_per_point,
              n_def * n_frac * spec.seeds_per_point);

  const campaign::CampaignResult result =
      campaign::run_campaign(spec, options);
  std::printf("\rdone: %zu executed, %zu resumed in %.1f s%20s\n",
              result.executed, result.resumed, result.wall_seconds, "");

  // point_index = zip_row * n_frac + fraction_index (zip rows outermost).
  std::map<std::size_t, campaign::PointSummary> by_point;
  for (auto& s : campaign::summarize(result.records)) {
    by_point[s.point_index] = std::move(s);
  }

  std::vector<std::string> labels;
  std::size_t width = 7;  // "defense"
  for (std::size_t z = 0; z < n_def; ++z) {
    std::string label = names->values[z] + "/" + aggs->values[z];
    width = std::max(width, label.size());
    labels.push_back(std::move(label));
  }
  const int w = static_cast<int>(width);

  // ----- accuracy vs attack fraction ---------------------------------------
  std::printf("\nmean final accuracy vs attack fraction:\n");
  std::printf("%-*s", w, "defense");
  for (const auto& f : fraction->values) {
    std::printf(" %9s", ("a=" + f).c_str());
  }
  std::printf("\n");
  for (std::size_t z = 0; z < n_def; ++z) {
    std::printf("%-*s", w, labels[z].c_str());
    for (std::size_t g = 0; g < n_frac; ++g) {
      const auto it = by_point.find(z * n_frac + g);
      if (it == by_point.end()) {
        std::printf(" %9s", "-");
      } else {
        std::printf(" %9.4f", mean_of(it->second, "final_accuracy"));
      }
    }
    std::printf("\n");
  }

  // ----- attack/defense accounting at the harshest fraction ----------------
  std::printf("\nattack accounting at fraction %s (means over seeds):\n",
              fraction->values.back().c_str());
  std::printf("%-*s %5s %7s %7s %6s %6s %7s %7s %8s %7s\n", w, "defense",
              "comp", "poison", "byznt", "sybil", "flips", "reject", "clip",
              "success", "jam_tf");
  for (std::size_t z = 0; z < n_def; ++z) {
    const auto it = by_point.find(z * n_frac + (n_frac - 1));
    if (it == by_point.end()) continue;
    const campaign::PointSummary& s = it->second;
    const double jam_failures = mean_of(s, "transfers_V2C_failed_jamming") +
                                mean_of(s, "transfers_V2X_failed_jamming") +
                                mean_of(s, "transfers_wired_failed_jamming");
    std::printf("%-*s %5.1f %7.1f %7.1f %6.1f %6.1f %7.1f %7.1f %8.2f %7.1f\n",
                w, labels[z].c_str(),
                mean_of(s, "adversary_compromised_vehicles"),
                mean_of(s, "adversary_poisoned_updates"),
                mean_of(s, "adversary_byzantine_updates"),
                mean_of(s, "adversary_sybil_clones"),
                mean_of(s, "adversary_label_flip_trainings"),
                mean_of(s, "defense_updates_rejected"),
                mean_of(s, "defense_updates_clipped"),
                mean_of(s, "adversary_attack_success_rate"), jam_failures);
  }
  std::printf(
      "\nreading: fraction 0 is the attack-free baseline — a defense row that\n"
      "matches mean there costs nothing when clean. Under attack the mean row\n"
      "should crater while robust rows hold; `reject`/`clip` show which\n"
      "defense did the catching, and `success` is the fraction of\n"
      "adversary-origin updates that still made it into an aggregate.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
