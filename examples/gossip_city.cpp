// Gossip Learning across a city — fully decentralized learning with no
// cloud coordination (paper §1/§3: "devices communicate their models
// directly with each other without central coordination").
//
// A fleet roams the synthetic city; whenever two vehicles come within V2X
// range they exchange and merge models. The example prints the probe
// fleet's mean model accuracy over simulated time and shows the defining
// property of GL: zero V2C (cellular) traffic.
//
//   ./examples/gossip_city [--vehicles=40] [--hours=2] [--seed=5]
#include <cstdio>

#include "scenario/scenario.hpp"
#include "strategy/gossip.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

int main(int argc, char** argv) {
  util::CliArgs args{argc, argv};
  const double duration = args.get_double("hours", 2.0) * 3600.0;

  scenario::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  cfg.vehicles = static_cast<std::size_t>(args.get_int("vehicles", 40));
  cfg.dataset = "blobs";
  cfg.blob_config.num_classes = 10;
  cfg.blob_config.dimensions = 24;
  cfg.blob_config.center_radius = 2.5;
  cfg.train_pool_size = 6000;
  cfg.test_size = 1200;
  cfg.partition = "dirichlet";  // smoothly non-IID fleet
  cfg.dirichlet_alpha = 0.5;
  cfg.model = "mlp";
  cfg.city.duration_s = duration + 600.0;
  cfg.horizon_s = duration + 600.0;

  scenario::Scenario scenario{cfg};

  strategy::GossipConfig gossip;
  gossip.duration_s = duration;
  gossip.retrain_interval_s = 120.0;
  gossip.eval_interval_s = duration / 12.0;
  gossip.probe_vehicles = 6;
  auto strat = std::make_shared<strategy::GossipStrategy>(gossip);
  const auto result = scenario.run(strat);

  std::printf("mean probe accuracy over simulated time:\n");
  std::printf("%10s %10s\n", "time[s]", "accuracy");
  for (const auto& p : result.metrics.series("accuracy")) {
    std::printf("%10.0f %10.4f\n", p.time_s, p.value);
  }

  std::printf("\ntotal model merges: %.0f\n",
              result.metrics.counter("gossip_merges"));
  std::printf("V2C bytes: %.0f (gossip needs no cloud)\n",
              static_cast<double>(
                  result.channel(comm::ChannelKind::kV2C).bytes_attempted));
  std::printf("V2X delivered: %.2f MB across %llu transfers\n",
              static_cast<double>(
                  result.channel(comm::ChannelKind::kV2X).bytes_delivered) /
                  1e6,
              static_cast<unsigned long long>(
                  result.channel(comm::ChannelKind::kV2X)
                      .transfers_delivered));
  return 0;
}
