// Implementing a custom learning strategy — the extension point Req. 5
// demands ("the framework should allow the flexible implementation and
// parametrization of learning strategies").
//
// The example defines AdaptiveFl, a small twist on FL written entirely
// against the public strategy API: the server monitors round-over-round
// accuracy improvement and triples the participant count while progress
// stalls (a crude budget-adaptive policy), then compares it against
// vanilla FL over the same rounds.
//
//   ./examples/custom_strategy [--rounds=14] [--seed=8]
#include <cstdio>
#include <map>

#include "scenario/scenario.hpp"
#include "strategy/federated.hpp"
#include "strategy/round_base.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

namespace {

/// FL whose server widens the per-round selection when accuracy stalls.
/// Everything else — rounds, transport, failure handling, FedAvg,
/// metrics — is inherited from the framework's round machinery.
class AdaptiveFl final : public strategy::RoundBasedStrategy {
 public:
  AdaptiveFl(strategy::RoundConfig config, std::size_t boosted_participants)
      : RoundBasedStrategy{config},
        base_participants_{config.participants},
        boosted_participants_{boosted_participants} {}

  [[nodiscard]] std::string name() const override { return "adaptive-fl"; }

  void on_training_complete(strategy::StrategyContext& ctx,
                            strategy::AgentId id,
                            const strategy::TrainingOutcome& o) override {
    (void)ctx;
    trained_round_[id] = o.round_tag;
  }

 protected:
  // Vehicle-side protocol: identical to stock FL.
  void on_vehicle_message(strategy::StrategyContext& ctx,
                          const strategy::Message& msg) override {
    if (msg.tag == kTagGlobal) {
      ctx.set_model(msg.to, msg.model, 0.0);
      trained_round_.erase(msg.to);
      ctx.start_training(msg.to, msg.round);
    } else if (msg.tag == kTagRequest) {
      const auto it = trained_round_.find(msg.to);
      if (it == trained_round_.end() || it->second != msg.round) return;
      strategy::Message reply;
      reply.from = msg.to;
      reply.to = ctx.cloud_id();
      reply.channel = comm::ChannelKind::kV2C;
      reply.tag = kTagReply;
      reply.round = msg.round;
      reply.model = ctx.agent(msg.to).model;
      reply.data_amount = ctx.agent(msg.to).model_data_amount;
      ctx.send(std::move(reply));
    }
  }

  // The adaptive part: one override.
  [[nodiscard]] std::size_t participants_this_round(
      strategy::StrategyContext& ctx, int /*round*/) const override {
    if (boosting_) ctx.metrics().increment("adaptive_boost_rounds");
    return boosting_ ? boosted_participants_ : base_participants_;
  }

  void on_global_updated(strategy::StrategyContext& ctx, int round,
                         std::size_t /*contributions*/) override {
    const double acc =
        ctx.metrics().last_value(round_config().accuracy_series);
    if (round > 1 && acc - last_accuracy_ < kStallThreshold) {
      ++stalled_rounds_;
    } else {
      stalled_rounds_ = 0;
    }
    boosting_ = stalled_rounds_ >= 2;
    last_accuracy_ = acc;
  }

 private:
  static constexpr double kStallThreshold = 0.005;
  std::size_t base_participants_;
  std::size_t boosted_participants_;
  std::map<strategy::AgentId, int> trained_round_;
  double last_accuracy_ = 0.0;
  int stalled_rounds_ = 0;
  bool boosting_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args{argc, argv};
  const int rounds = static_cast<int>(args.get_int("rounds", 14));

  scenario::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 8));
  cfg.vehicles = 40;
  cfg.dataset = "blobs";
  cfg.blob_config.num_classes = 10;
  cfg.blob_config.dimensions = 24;
  cfg.blob_config.center_radius = 2.2;
  cfg.train_pool_size = 6000;
  cfg.test_size = 1200;
  cfg.partition = "class_skew";
  cfg.samples_per_vehicle = 50;
  cfg.classes_per_vehicle = 2;
  cfg.model = "mlp";
  cfg.city.duration_s = 20000.0;
  scenario::Scenario scenario{cfg};

  strategy::RoundConfig round;
  round.rounds = rounds;
  round.participants = 4;
  round.round_duration_s = 30.0;

  const auto vanilla =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));
  const auto adaptive =
      scenario.run(std::make_shared<AdaptiveFl>(round, 12));

  std::printf("%-22s %12s %12s\n", "", "vanilla FL", "adaptive FL");
  std::printf("%-22s %12.4f %12.4f\n", "final accuracy",
              vanilla.final_accuracy, adaptive.final_accuracy);
  std::printf("%-22s %12.2f %12.2f\n", "V2C delivered [MB]",
              static_cast<double>(
                  vanilla.channel(comm::ChannelKind::kV2C).bytes_delivered) /
                  1e6,
              static_cast<double>(
                  adaptive.channel(comm::ChannelKind::kV2C).bytes_delivered) /
                  1e6);
  std::printf("%-22s %12s %12.0f\n", "boosted rounds", "-",
              adaptive.metrics.counter("adaptive_boost_rounds"));
  std::printf(
      "\nThe point: a policy change this small needed one subclass with two "
      "real\noverrides — the framework supplied rounds, selection, "
      "transport, failure\nhandling, aggregation, and metrics (Req. 5).\n");
  return 0;
}
