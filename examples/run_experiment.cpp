// roadrunner_run — the analyst-facing entry point: runs an experiment
// described entirely by an INI file and writes the metrics as CSV, so
// iterating on a learning strategy is an edit-rerun loop on text files
// (paper Req. 5 / §5.2's "quick experiment repetition").
//
//   ./examples/run_experiment path/to/experiment.ini [--out=metrics.csv]
//
// With no arguments it runs the annotated sample file
// examples/experiment.ini if present next to the working directory, else a
// built-in default experiment.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "metrics/analysis.hpp"
#include "scenario/experiment.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

namespace {

constexpr const char* kDefaultExperiment = R"ini(
# Built-in default: small FL experiment on the blob problem.
[scenario]
vehicles = 30
seed = 7
[city]
duration_s = 6000
[data]
dataset = blobs
train_pool = 3000
test_size = 600
partition = class_skew
samples_per_vehicle = 40
classes_per_vehicle = 2
[train]
model = mlp
epochs = 2
lr = 0.02
[strategy]
name = federated
rounds = 10
participants = 5
round_duration_s = 30
)ini";

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args{argc, argv};

  util::IniFile ini;
  if (!args.positional().empty()) {
    ini = util::IniFile::load(args.positional().front());
    std::printf("experiment: %s\n", args.positional().front().c_str());
  } else if (std::filesystem::exists("examples/experiment.ini")) {
    ini = util::IniFile::load("examples/experiment.ini");
    std::printf("experiment: examples/experiment.ini\n");
  } else {
    ini = util::IniFile::parse(kDefaultExperiment);
    std::printf("experiment: built-in default (pass an .ini path to "
                "override)\n");
  }

  const scenario::RunResult result = scenario::run_experiment(ini);

  std::printf("\nstrategy  %s\n", result.strategy_name.c_str());
  std::printf("sim time  %.0f s in %.2f s wall (%.0fx)\n",
              result.report.sim_end_time_s, result.report.wall_seconds,
              result.report.sim_end_time_s /
                  std::max(1e-9, result.report.wall_seconds));
  if (result.metrics.has_series("accuracy")) {
    const auto summary =
        metrics::summarize(result.metrics.series("accuracy"));
    std::printf("accuracy  final %.4f | peak %.4f | time-avg %.4f\n",
                summary.final_value, summary.peak, summary.time_avg);
  }
  for (auto kind : {comm::ChannelKind::kV2C, comm::ChannelKind::kV2X,
                    comm::ChannelKind::kWired}) {
    const auto& s = result.channel(kind);
    if (s.transfers_attempted == 0) continue;
    std::printf("%-5s     %.2f MB delivered, %llu/%llu transfers ok\n",
                comm::to_string(kind).c_str(),
                static_cast<double>(s.bytes_delivered) / 1e6,
                static_cast<unsigned long long>(s.transfers_delivered),
                static_cast<unsigned long long>(s.transfers_attempted));
  }

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream file{out};
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    result.metrics.export_csv(file);
    std::printf("metrics written to %s\n", out.c_str());
  }
  return 0;
}
