// roadrunner_run — the analyst-facing entry point: runs an experiment
// described entirely by an INI file and writes the metrics as CSV, so
// iterating on a learning strategy is an edit-rerun loop on text files
// (paper Req. 5 / §5.2's "quick experiment repetition").
//
//   ./examples/run_experiment path/to/experiment.ini [--out=metrics.csv]
//        [--checkpoint-every=SIMSECONDS] [--checkpoint-out=snap.rrck]
//   ./examples/run_experiment --resume-from=snap.rrck [...]
//   ./examples/run_experiment --resume-from=snap.rrck
//        --fork=network.v2c_loss=0.3,strategy.rounds=20
//
// --checkpoint-every autosaves a snapshot of the running simulation every N
// *simulated* seconds to --checkpoint-out (default: checkpoint.rrck).
// --resume-from validates a snapshot and continues the run exactly where it
// stopped — the experiment INI is embedded in the snapshot, so no .ini path
// is needed. --fork additionally overrides experiment keys before resuming
// ("what-if" replay from a saved instant); overrides must not change the
// fleet, dataset, or model architecture.
//
// With no arguments it runs the annotated sample file
// examples/experiment.ini if present next to the working directory, else a
// built-in default experiment.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>

#include "checkpoint/checkpoint.hpp"
#include "metrics/analysis.hpp"
#include "scenario/experiment.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

namespace {

constexpr const char* kDefaultExperiment = R"ini(
# Built-in default: small FL experiment on the blob problem.
[scenario]
vehicles = 30
seed = 7
[city]
duration_s = 6000
[data]
dataset = blobs
train_pool = 3000
test_size = 600
partition = class_skew
samples_per_vehicle = 40
classes_per_vehicle = 2
[train]
model = mlp
epochs = 2
lr = 0.02
[strategy]
name = federated
rounds = 10
participants = 5
round_duration_s = 30
)ini";

/// "a.b=x,c.d=y" -> {{"a.b","x"},{"c.d","y"}}.
std::map<std::string, std::string> parse_overrides(const std::string& spec) {
  std::map<std::string, std::string> overrides;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error{"--fork: expected section.key=value, got '" +
                               item + "'"};
    }
    overrides[item.substr(0, eq)] = item.substr(eq + 1);
    start = end + 1;
  }
  return overrides;
}

}  // namespace

int main(int argc, char** argv) try {
  util::CliArgs args{argc, argv};

  const std::string resume_from = args.get("resume-from", "");
  scenario::RunResult result;

  if (!resume_from.empty()) {
    const checkpoint::SnapshotInfo info = checkpoint::peek(resume_from);
    std::printf("snapshot: %s (t=%.0f s, %llu events executed, %llu pending, "
                "strategy %s)\n",
                resume_from.c_str(), info.sim_time_s,
                static_cast<unsigned long long>(info.events_executed),
                static_cast<unsigned long long>(info.pending_events),
                info.strategy_name.c_str());
    checkpoint::RestoredRun run =
        args.has("fork")
            ? checkpoint::fork(resume_from,
                               parse_overrides(args.get("fork", "")))
            : checkpoint::restore(resume_from);
    result = run.finish();
  } else {
    util::IniFile ini;
    if (!args.positional().empty()) {
      ini = util::IniFile::load(args.positional().front());
      std::printf("experiment: %s\n", args.positional().front().c_str());
    } else if (std::filesystem::exists("examples/experiment.ini")) {
      ini = util::IniFile::load("examples/experiment.ini");
      std::printf("experiment: examples/experiment.ini\n");
    } else {
      ini = util::IniFile::parse(kDefaultExperiment);
      std::printf("experiment: built-in default (pass an .ini path to "
                  "override)\n");
    }

    const double every = args.get_double("checkpoint-every", 0.0);
    if (every > 0.0 || ini.get_double("scenario", "checkpoint_every_s", 0.0) >
                           0.0) {
      const std::string ckpt = args.get("checkpoint-out", "checkpoint.rrck");
      std::printf("checkpoint: %s%s\n", ckpt.c_str(),
                  std::filesystem::exists(ckpt) ? " (resuming)" : "");
      result = checkpoint::run_resumable(ini, ckpt, every);
    } else {
      result = scenario::run_experiment(ini);
    }
  }

  std::printf("\nstrategy  %s\n", result.strategy_name.c_str());
  std::printf("sim time  %.0f s in %.2f s wall (%.0fx)\n",
              result.report.sim_end_time_s, result.report.wall_seconds,
              result.report.sim_end_time_s /
                  std::max(1e-9, result.report.wall_seconds));
  if (result.metrics.has_series("accuracy")) {
    const auto summary =
        metrics::summarize(result.metrics.series("accuracy"));
    std::printf("accuracy  final %.4f | peak %.4f | time-avg %.4f\n",
                summary.final_value, summary.peak, summary.time_avg);
  }
  for (auto kind : {comm::ChannelKind::kV2C, comm::ChannelKind::kV2X,
                    comm::ChannelKind::kWired}) {
    const auto& s = result.channel(kind);
    if (s.transfers_attempted == 0) continue;
    std::printf("%-5s     %.2f MB delivered, %llu/%llu transfers ok\n",
                comm::to_string(kind).c_str(),
                static_cast<double>(s.bytes_delivered) / 1e6,
                static_cast<unsigned long long>(s.transfers_delivered),
                static_cast<unsigned long long>(s.transfers_attempted));
  }

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream file{out};
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    result.metrics.export_csv(file);
    std::printf("metrics written to %s\n", out.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
