// Predictive maintenance — the learning problem the paper itself uses to
// introduce its terminology (§3: "a real-world problem an analyst wants to
// solve, e.g. the predictive maintenance of a certain component of the
// vehicle").
//
// Vehicles log multi-sensor feature vectors (vibration spectra, temperature
// trends — synthesized here as labelled Gaussian feature clusters for four
// component-health states: healthy, worn, misaligned, failing). The fleet
// operator wants a fault classifier without hauling raw telemetry into the
// data centre. The example evaluates the two candidate strategies an
// analyst would shortlist — centralized training vs FL — and additionally
// demonstrates the unsupervised path (k-means over the fleet's merged
// features for anomaly grouping, §3's clustering use case).
//
//   ./examples/predictive_maintenance [--rounds=12] [--seed=12]
#include <cstdio>

#include "ml/kmeans.hpp"
#include "scenario/scenario.hpp"
#include "strategy/centralized.hpp"
#include "strategy/federated.hpp"
#include "util/cli.hpp"

using namespace roadrunner;

int main(int argc, char** argv) {
  util::CliArgs args{argc, argv};

  scenario::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 12));
  cfg.vehicles = 30;
  cfg.dataset = "blobs";
  cfg.blob_config.num_classes = 4;    // healthy / worn / misaligned / failing
  cfg.blob_config.dimensions = 48;    // fused sensor feature vector
  cfg.blob_config.center_radius = 2.4;
  cfg.blob_config.spread = 1.0;
  cfg.train_pool_size = 4500;
  cfg.test_size = 900;
  // Health states are unevenly distributed over the fleet: most vehicles
  // mostly see "healthy" plus one degradation mode.
  cfg.partition = "dirichlet";
  cfg.dirichlet_alpha = 0.4;
  cfg.model = "mlp";
  cfg.city.duration_s = 10000.0;
  scenario::Scenario scenario{cfg};

  std::printf("fleet of %zu vehicles, 4 component-health classes, "
              "%zu-dim sensor features\n\n",
              cfg.vehicles, cfg.blob_config.dimensions);

  // --- candidate 1: ship raw telemetry, train centrally -------------------
  strategy::CentralizedConfig central_cfg;
  central_cfg.duration_s = 2500.0;
  central_cfg.train_interval_s = 200.0;
  const auto central = scenario.run(
      std::make_shared<strategy::CentralizedStrategy>(central_cfg));

  // --- candidate 2: keep telemetry on board, federate the model -----------
  strategy::RoundConfig round;
  round.rounds = static_cast<int>(args.get_int("rounds", 12));
  round.participants = 6;
  round.round_duration_s = 60.0;
  const auto fl =
      scenario.run(std::make_shared<strategy::FederatedStrategy>(round));

  std::printf("%-26s %14s %14s\n", "", "centralized", "federated");
  std::printf("%-26s %14.4f %14.4f\n", "fault-classifier accuracy",
              central.final_accuracy, fl.final_accuracy);
  std::printf("%-26s %14.2f %14.2f\n", "V2C delivered [MB]",
              static_cast<double>(
                  central.channel(comm::ChannelKind::kV2C).bytes_delivered) /
                  1e6,
              static_cast<double>(
                  fl.channel(comm::ChannelKind::kV2C).bytes_delivered) /
                  1e6);
  std::printf("%-26s %14s %14s\n", "raw telemetry exposed?", "yes", "no");

  // --- the unsupervised path (§3: clustering when no ground truth) --------
  // Merge every vehicle's features (as the centralized server would hold
  // them) and cluster; purity against the hidden health labels shows how
  // well unsupervised grouping recovers the degradation modes.
  ml::DatasetView merged = scenario.vehicle_data()[0];
  for (std::size_t v = 1; v < scenario.vehicle_data().size(); ++v) {
    merged = merged.merged_with(scenario.vehicle_data()[v]);
  }
  util::Rng rng{cfg.seed};
  ml::KMeansModel km = ml::kmeans_init(merged, 4, rng);
  const auto fit = ml::kmeans_fit(km, merged);
  std::printf("\nunsupervised check: k-means over the fleet's features "
              "converged in %zu\niterations; cluster purity vs hidden health "
              "labels = %.3f\n",
              fit.iterations, ml::kmeans_purity(km, merged));
  return 0;
}
